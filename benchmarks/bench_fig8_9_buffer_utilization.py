"""Figures 8 and 9 — transmission vs retransmission buffer utilization.

Paper claims (Section 3.2): transmission-buffer utilization climbs steeply
toward saturation; retransmission buffers stay mostly idle and their
utilization does not track the transmission buffers' — the justification
for reusing them for deadlock recovery.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import INJECTION_RATES, format_series
from repro.experiments.figure8_9 import run_figure8_9


def test_figure8_9_buffer_utilization(benchmark):
    results = run_once(
        benchmark,
        run_figure8_9,
        injection_rates=INJECTION_RATES,
        cycles=600,
        measure_from=150,
    )
    rates = [p.injection_rate for p in results["AD"]]
    print()
    print(
        format_series(
            "Figure 8 — Transmission buffer utilization",
            "inj. rate",
            rates,
            {k: [p.tx_utilization for p in v] for k, v in results.items()},
            fmt="{:.3f}",
        )
    )
    print(
        format_series(
            "Figure 9 — Retransmission buffer utilization",
            "inj. rate",
            rates,
            {k: [p.retx_utilization for p in v] for k, v in results.items()},
            fmt="{:.3f}",
        )
    )
    for label, series in results.items():
        tx = [p.tx_utilization for p in series]
        retx = [p.retx_utilization for p in series]
        # Figure 8 shape: strong monotone growth into saturation.
        assert tx[-1] > 5 * tx[0], f"{label}: TX utilization must climb steeply"
        assert tx[-1] > 0.3
        # Figure 9 shape: retransmission buffers stay mostly idle ...
        assert max(retx) < 0.4, f"{label}: retx buffers must stay underutilized"
        # ... and do NOT track the transmission buffers: past saturation,
        # blocking reduces transmissions, so utilization falls or flattens
        # while TX keeps climbing.
        peak = max(range(len(retx)), key=retx.__getitem__)
        assert retx[-1] <= retx[peak], f"{label}: retx util must not keep climbing"
        assert peak < len(retx) - 1 or retx[-1] < tx[-1]
