"""Figure 6 — HBH latency vs error rate under NR / BC / TN traffic.

Paper claim: "average latency remains almost constant even up to 10% error
rate" for all three destination distributions, because a retransmission
costs ~2 cycles and stays on a single hop.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import ERROR_RATES, format_series
from repro.experiments.figure6_7 import run_figure6_7


def test_figure6_hbh_latency(benchmark, bench_scale):
    results = run_once(
        benchmark,
        run_figure6_7,
        error_rates=ERROR_RATES,
        num_messages=bench_scale["num_messages"],
        warmup=bench_scale["warmup"],
    )
    rates = [p.error_rate for p in results["NR"]]
    print()
    print(
        format_series(
            "Figure 6 — HBH latency (cycles) vs. error rate",
            "error rate",
            rates,
            {label: [p.avg_latency for p in pts] for label, pts in results.items()},
        )
    )
    for label, series in results.items():
        latencies = [p.avg_latency for p in series]
        # Flatness through 1% error rate: even the worst case (every error
        # uncorrectable) adds only a small fraction to the zero-error
        # latency.
        assert max(latencies[:-1]) < 1.35 * min(latencies), (
            f"{label}: HBH latency must stay nearly constant, got {latencies}"
        )
        # At the extreme 10% point, patterns running close to saturation
        # (bit-complement at 0.25 flits/node/cycle) see congestion
        # amplification on top of the per-error penalty; the scheme must
        # still stay within a small multiple and lose nothing.
        assert latencies[-1] < 2.5 * min(latencies), label
        # Retransmission activity genuinely scales with the error rate
        # (the flat latency is not because nothing happened).
        assert series[-1].retransmission_rounds > 10 * max(
            1, series[0].retransmission_rounds
        )
