"""Figure 5 — Latency of HBH vs E2E vs FEC error handling vs error rate.

Paper series to reproduce (8x8 mesh, 0.25 flits/node/cycle, NR traffic):
HBH stays flat over 1e-5..1e-1 while E2E's latency becomes prohibitive;
FEC's latency stays low but it silently loses/corrupts packets.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import ERROR_RATES, format_series
from repro.experiments.figure5 import run_figure5


def test_figure5_latency_schemes(benchmark, bench_scale):
    results = run_once(
        benchmark,
        run_figure5,
        error_rates=ERROR_RATES,
        num_messages=bench_scale["num_messages"],
        warmup=bench_scale["warmup"],
    )
    rates = [p.error_rate for p in results["hbh"]]
    print()
    print(
        format_series(
            "Figure 5 — Latency (cycles) vs. error rate",
            "error rate",
            rates,
            {k.upper(): [p.avg_latency for p in v] for k, v in results.items()},
        )
    )
    print(
        format_series(
            "          (packets lost + delivered corrupt)",
            "error rate",
            rates,
            {
                k.upper(): [
                    float(p.packets_lost + p.packets_delivered_corrupt) for p in v
                ]
                for k, v in results.items()
            },
            fmt="{:.0f}",
        )
    )

    hbh = [p.avg_latency for p in results["hbh"]]
    e2e = [p.avg_latency for p in results["e2e"]]
    # The figure's claims, as assertions: HBH flat, E2E prohibitive.
    assert max(hbh) < 1.5 * min(hbh), "HBH latency must stay nearly flat"
    assert e2e[-1] > 3.0 * hbh[-1], "E2E must deteriorate at 10% error rate"
    assert e2e[-1] > 2.0 * e2e[0], "E2E latency must grow with error rate"
    # HBH is also the only loss-free scheme at the top error rate.
    assert results["hbh"][-1].packets_lost == 0
    assert results["hbh"][-1].packets_delivered_corrupt == 0
