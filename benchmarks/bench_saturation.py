"""Saturation characterization + the HBH-cost-at-saturation ablation.

Two questions the paper's evaluation implies but does not plot directly:

1. Where do the DT (XY) and AD (west-first) networks saturate?  (The
   Figures 8/9 injection-rate axis spans this knee.)
2. Does carrying the full HBH protection machinery (sequence tracking,
   replay windows, retransmission buffers) cost throughput when errors are
   *absent*?  The paper's "keep the critical path intact" argument implies
   it must not.
"""

from benchmarks.conftest import run_once
from repro.config import FaultConfig
from repro.experiments.saturation import run_saturation
from repro.types import LinkProtection, RoutingAlgorithm


def test_saturation_curves(benchmark):
    curves = run_once(benchmark, run_saturation)
    print()
    for name, curve in curves.items():
        sat = curve.saturation_rate()
        print(
            f"{name:>12}: saturation ~{sat if sat else '>0.5'} flits/node/cycle, "
            f"peak throughput {curve.peak_throughput():.3f}"
        )
        latencies = [p.avg_latency for p in curve.points]
        # Latency must grow substantially with load...
        assert latencies[-1] > 1.5 * latencies[0]
        # ...and accepted throughput must fall short of offered load at the
        # top of the sweep (the network is past its knee).
        top = curve.points[-1]
        assert curve.peak_throughput() < 0.85 * top.injection_rate
        # Below saturation the network accepts what is offered.
        low = curve.points[1]
        assert low.throughput > 0.7 * low.injection_rate


def _hbh_overhead():
    base = run_saturation(
        rates=(0.1, 0.25, 0.4),
        algorithms=(RoutingAlgorithm.XY,),
        noc_overrides={"link_protection": LinkProtection.NONE},
    )["xy"]
    protected = run_saturation(
        rates=(0.1, 0.25, 0.4),
        algorithms=(RoutingAlgorithm.XY,),
        noc_overrides={"link_protection": LinkProtection.HBH},
    )["xy"]
    return base, protected


def test_hbh_machinery_is_free_without_errors(benchmark):
    base, protected = run_once(benchmark, _hbh_overhead)
    print()
    for b, p in zip(base.points, protected.points):
        print(
            f"rate {b.injection_rate:4.2f}: unprotected {b.avg_latency:7.2f} "
            f"vs HBH {p.avg_latency:7.2f} cycles"
        )
        # "All the mechanisms ... kept the critical path of the NoC router
        # intact": with zero errors, the protected network's latency must
        # match the unprotected one's.
        assert abs(p.avg_latency - b.avg_latency) < 0.75
