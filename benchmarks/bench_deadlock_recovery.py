"""Figures 10 and 11 — deadlock detection and recovery walkthroughs.

Regenerates the paper's two scenarios as live runs: the cyclic deadlock
(Figure 10) and the worst case with partially transferred follower packets
(Figure 11), each with recovery off (proving the deadlock is real) and on
(proving the probe + retransmission-buffer scheme breaks it).
"""

from benchmarks.conftest import run_once
from repro.experiments.deadlock_demo import run_deadlock_demo, run_worst_case_demo


def _run_both():
    return {
        "fig10_without": run_deadlock_demo(recovery=False, max_cycles=600),
        "fig10_with": run_deadlock_demo(recovery=True),
        "fig11_without": run_worst_case_demo(recovery=False, max_cycles=600),
        "fig11_with": run_worst_case_demo(recovery=True),
    }


def test_deadlock_recovery_scenarios(benchmark):
    outcomes = run_once(benchmark, _run_both)
    print()
    for name, o in outcomes.items():
        status = (
            f"delivered {o.delivered}/{o.expected}"
            + (f" in {o.cycles_to_resolution} cycles" if o.cycles_to_resolution else "")
            + f" | probes={o.probes_sent} detections={o.deadlocks_detected}"
            + f" absorbed={o.recovery_forwards}"
        )
        print(f"{name:>15}: {status}")

    # Without recovery both configurations are true deadlocks.
    assert outcomes["fig10_without"].delivered == 0
    assert outcomes["fig11_without"].delivered == 0
    # With recovery everything is delivered.
    assert outcomes["fig10_with"].deadlock_broken
    assert outcomes["fig11_with"].deadlock_broken
    # The mechanism is the paper's: probes confirm the cycle, flits are
    # absorbed into retransmission buffers, Eq. 1 is satisfied.
    for key in ("fig10_with", "fig11_with"):
        o = outcomes[key]
        assert o.probes_sent >= 1
        assert o.deadlocks_detected >= 1
        assert o.recovery_forwards >= 1
        assert o.satisfies_eq1
