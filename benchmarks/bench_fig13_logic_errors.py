"""Figure 13 — impact of the soft-error correcting schemes.

Paper claims: (a) corrected-error counts order SA-Logic > LINK-HBH >
RT-Logic (the SA arbitrates per flit per attempt, links carry each flit
once per hop, the RT only touches headers); (b) energy per packet stays
essentially flat, with LINK-HBH the costliest because retransmissions move
flits over links again.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import FIG13_ERROR_RATES, format_series
from repro.experiments.figure13 import run_figure13


def test_figure13_soft_error_schemes(benchmark, bench_scale):
    results = run_once(
        benchmark,
        run_figure13,
        error_rates=FIG13_ERROR_RATES,
        num_messages=bench_scale["num_messages"],
        warmup=bench_scale["warmup"],
    )
    rates = [p.error_rate for p in results["LINK-HBH"]]
    print()
    print(
        format_series(
            "Figure 13(a) — corrected errors (per 1,000 messages)",
            "error rate",
            rates,
            {k: [p.corrected_per_kmsg for p in v] for k, v in results.items()},
            fmt="{:.1f}",
        )
    )
    print(
        format_series(
            "Figure 13(b) — energy per packet (nJ)",
            "error rate",
            rates,
            {k: [p.energy_per_packet_nj for p in v] for k, v in results.items()},
            fmt="{:.4f}",
        )
    )
    top = {label: series[-1] for label, series in results.items()}
    # (a) the ordering claim at the highest error rate.
    assert top["SA-Logic"].errors_corrected > top["LINK-HBH"].errors_corrected
    assert top["LINK-HBH"].errors_corrected > top["RT-Logic"].errors_corrected
    # Corrected counts must actually grow with the injected rate.
    for label, series in results.items():
        assert series[-1].errors_corrected > series[0].errors_corrected, label
        # Everything is corrected: no packets lost in any scenario.
        assert all(p.packets_lost == 0 for p in series), label
    # (b) link errors induce an energy overhead (retransmissions re-drive
    # links), yet every series stays essentially flat.  The cross-scheme
    # gap at these rates is <1%, inside run-to-run noise at bench scale, so
    # the seed-stable within-series growth is what is asserted; the
    # cross-scheme ordering is reported in EXPERIMENTS.md from the default
    # experiment scale.
    link_series = [p.energy_per_packet_nj for p in results["LINK-HBH"]]
    assert link_series[-1] > link_series[0], "retransmissions must cost energy"
    for label, series in results.items():
        energies = [p.energy_per_packet_nj for p in series]
        assert max(energies) < 1.2 * min(energies), label
