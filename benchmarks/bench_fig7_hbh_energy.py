"""Figure 7 — HBH energy per message vs error rate under NR / BC / TN.

Paper claim: the energy-per-message overhead of retransmissions is
negligible, because each retransmission re-traverses a single hop out of a
multi-hop path.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import ERROR_RATES, format_series
from repro.experiments.figure6_7 import run_figure6_7


def test_figure7_hbh_energy(benchmark, bench_scale):
    results = run_once(
        benchmark,
        run_figure6_7,
        error_rates=ERROR_RATES,
        num_messages=bench_scale["num_messages"],
        warmup=bench_scale["warmup"],
    )
    rates = [p.error_rate for p in results["NR"]]
    print()
    print(
        format_series(
            "Figure 7 — HBH energy per message (nJ) vs. error rate",
            "error rate",
            rates,
            {
                label: [p.energy_per_packet_nj for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.4f}",
        )
    )
    for label, series in results.items():
        energies = [p.energy_per_packet_nj for p in series]
        assert all(e > 0 for e in energies), label
        # Near-constant energy: the paper's Figure 7 claim.
        assert max(energies) < 1.25 * min(energies), (
            f"{label}: energy must stay nearly constant, got {energies}"
        )
        # And in the paper's sub-nanojoule band.
        assert all(0.01 < e < 1.0 for e in energies), label
