"""Engine microbenchmarks: simulator throughput and hot primitives.

These are the only benches where pytest-benchmark's repeated timing is the
point (the figure benches time one full regeneration instead).
"""

import random

from repro.coding.hamming import HammingSecDed
from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.allocators import SwitchAllocator
from repro.noc.network import Network
from repro.noc.packet import Packet


def test_simulation_cycles_per_second(benchmark):
    """Cycles/second of a loaded 8x8 mesh (the figure benches' workhorse)."""

    def setup():
        net = Network(SimulationConfig(noc=NoCConfig()))
        rng = random.Random(1)
        pid = 0
        for node in range(64):
            for _ in range(2):
                dst = rng.randrange(63)
                dst = dst if dst < node else dst + 1
                net.interfaces[node].enqueue(Packet(pid, node, dst, 4, 0))
                pid += 1
        return (net,), {}

    def run_100_cycles(net):
        for _ in range(100):
            net.step()

    benchmark.pedantic(run_100_cycles, setup=setup, rounds=5, iterations=1)


def test_switch_allocator_throughput(benchmark):
    sa = SwitchAllocator(5, 3)
    bids = {(0, 0): 1, (0, 1): 2, (1, 0): 2, (2, 2): 3, (3, 0): 4, (4, 1): 0}
    benchmark(sa.allocate, bids)


def test_hamming_decode_throughput(benchmark):
    codec = HammingSecDed(64)
    word = codec.flip_bits(codec.encode(0xDEAD_BEEF_CAFE_F00D), (17,))
    result = benchmark(codec.decode, word)
    assert result.data == 0xDEAD_BEEF_CAFE_F00D
