"""Engine microbenchmarks: simulator throughput and hot primitives.

These are the only benches where pytest-benchmark's repeated timing is the
point (the figure benches time one full regeneration instead).
"""

from benchmarks.workloads import (
    DEFAULT_CYCLES,
    build_idle_network,
    build_loaded_network,
    build_saturation_network,
    run_cycles,
)
from repro.coding.hamming import HammingSecDed
from repro.noc.allocators import SwitchAllocator


def test_simulation_cycles_per_second(benchmark):
    """Cycles/second of a loaded 8x8 mesh (the figure benches' workhorse)."""

    def setup():
        return (build_loaded_network(), DEFAULT_CYCLES["loaded"]), {}

    benchmark.pedantic(run_cycles, setup=setup, rounds=5, iterations=1)


def test_simulation_idle_mesh_cycles_per_second(benchmark):
    """Cycles/second of a completely idle 8x8 mesh.

    The activity-driven loop's best case: nothing is queued, so each step
    only checks the empty active sets.  Compare against the same point with
    ``activity_driven=False`` (``tools/bench_record.py`` records both) to
    see the fast path's headline speedup.
    """

    def setup():
        return (build_idle_network(), DEFAULT_CYCLES["idle"]), {}

    benchmark.pedantic(run_cycles, setup=setup, rounds=5, iterations=1)


def test_simulation_saturation_cycles_per_second(benchmark):
    """Cycles/second of a saturated 8x8 mesh (every router busy).

    The activity-driven loop's worst case: the active sets hold all 64
    nodes every cycle, so this measures its bookkeeping overhead relative
    to plain polling.  ``tools/bench_record.py --check`` enforces that the
    overhead stays within bounds.
    """

    def setup():
        return (build_saturation_network(), DEFAULT_CYCLES["saturation"]), {}

    benchmark.pedantic(run_cycles, setup=setup, rounds=5, iterations=1)


def test_simulation_batched_cycles_per_second(benchmark):
    """Cycles/second of the loaded 8x8 mesh on the batched kernel.

    Same workload as ``test_simulation_cycles_per_second``, run on
    ``backend="batched"`` (``repro.noc.kernel``).  ``tools/bench_record.py
    --check`` ratchets this point at 5x the PR 5 object-loop record — see
    docs/KERNEL.md and docs/PERFORMANCE.md for the model.
    """

    def setup():
        return (
            (build_loaded_network(backend="batched"), DEFAULT_CYCLES["loaded"]),
            {},
        )

    benchmark.pedantic(run_cycles, setup=setup, rounds=5, iterations=1)


def test_switch_allocator_throughput(benchmark):
    sa = SwitchAllocator(5, 3)
    bids = {(0, 0): 1, (0, 1): 2, (1, 0): 2, (2, 2): 3, (3, 0): 4, (4, 1): 0}
    benchmark(sa.allocate, bids)


def test_hamming_decode_throughput(benchmark):
    codec = HammingSecDed(64)
    word = codec.flip_bits(codec.encode(0xDEAD_BEEF_CAFE_F00D), (17,))
    result = benchmark(codec.decode, word)
    assert result.data == 0xDEAD_BEEF_CAFE_F00D
