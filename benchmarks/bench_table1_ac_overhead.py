"""Table 1 — power and area overhead of the Allocation Comparator unit.

Paper values at 5 ports / 4 VCs: router 119.55 mW / 0.374862 mm^2; AC unit
2.02 mW (+1.69%) / 0.004474 mm^2 (+1.19%).  The structural model is
calibrated at this point; the bench re-derives the table and the scaling
rows a designer would ask synthesis for.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1


def test_table1_ac_overhead(benchmark):
    rows = run_once(benchmark, run_table1)
    print()
    print("Table 1 — Power and Area Overhead of the AC Unit")
    print(
        f"{'P':>3} {'V':>3} {'router mW':>11} {'router mm2':>11} "
        f"{'AC mW':>8} {'AC mm2':>9} {'pwr +%':>8} {'area +%':>8}"
    )
    for row in rows:
        marker = "  <- Table 1" if (row.num_ports, row.num_vcs) == (5, 4) else ""
        print(
            f"{row.num_ports:>3} {row.num_vcs:>3} {row.router_power_mw:>11.2f} "
            f"{row.router_area_mm2:>11.6f} {row.ac_power_mw:>8.2f} "
            f"{row.ac_area_mm2:>9.6f} {row.ac_power_overhead_pct:>8.2f} "
            f"{row.ac_area_overhead_pct:>8.2f}{marker}"
        )

    paper = next(r for r in rows if (r.num_ports, r.num_vcs) == (5, 4))
    assert paper.router_power_mw == pytest.approx(119.55, rel=1e-6)
    assert paper.router_area_mm2 == pytest.approx(0.374862, rel=1e-6)
    assert paper.ac_power_mw == pytest.approx(2.02, rel=1e-6)
    assert paper.ac_area_mm2 == pytest.approx(0.004474, rel=1e-6)
    assert paper.ac_power_overhead_pct == pytest.approx(1.69, abs=0.02)
    assert paper.ac_area_overhead_pct == pytest.approx(1.19, abs=0.02)
    # The compactness argument holds across nearby configurations.
    for row in rows:
        if row.num_vcs <= 4:
            assert row.ac_area_overhead_pct < 2.0
