"""Shared workload builders for the simulator speed benchmarks.

Three operating points bracket the scheduler's behaviour space:

* **idle** — an 8x8 mesh with nothing queued anywhere.  The full polling
  loop still walks all 64 routers and interfaces every cycle; the
  activity-driven loop touches only the empty active sets.  This is the
  point the fast path exists for (long drain tails, low-rate campaigns).
* **loaded** — the historical workhorse: two packets queued per node, a
  mixed phase where some routers drain while others still carry traffic.
* **saturation** — enough packets queued per node that every router stays
  busy for the whole measured window.  Here the active sets contain every
  node, so this point measures the fast path's bookkeeping overhead — the
  regression floor ``tools/bench_record.py --check`` enforces.

Both the pytest-benchmark suite (``bench_simulator_speed.py``) and the
trajectory recorder (``tools/bench_record.py``) build their networks here so
the two always measure the same thing.
"""

from __future__ import annotations

import os
import random
import tempfile
import time

from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.simulator import Simulator


def build_idle_network(
    activity_driven: bool = True, backend: str = "object"
) -> Network:
    """An 8x8 mesh with no traffic at all."""
    return Network(
        SimulationConfig(
            noc=NoCConfig(), activity_driven=activity_driven, backend=backend
        )
    )


def _enqueue_uniform(net: Network, packets_per_node: int, seed: int = 1) -> None:
    rng = random.Random(seed)
    pid = 0
    num_nodes = net.config.noc.num_nodes
    for node in range(num_nodes):
        for _ in range(packets_per_node):
            dst = rng.randrange(num_nodes - 1)
            dst = dst if dst < node else dst + 1
            net.interfaces[node].enqueue(Packet(pid, node, dst, 4, 0))
            pid += 1


def build_loaded_network(
    activity_driven: bool = True, backend: str = "object"
) -> Network:
    """An 8x8 mesh with two uniform-random packets queued per node."""
    net = build_idle_network(activity_driven, backend)
    _enqueue_uniform(net, packets_per_node=2)
    return net


def build_saturation_network(
    activity_driven: bool = True, backend: str = "object"
) -> Network:
    """An 8x8 mesh with deep per-node queues: every router busy throughout.

    Twenty 4-flit packets per node keep injection queues non-empty for far
    longer than the measured window, so the activity-driven loop's active
    sets hold all 64 nodes every cycle — its worst case.
    """
    net = build_idle_network(activity_driven, backend)
    _enqueue_uniform(net, packets_per_node=20)
    return net


WORKLOADS = {
    "idle": build_idle_network,
    "loaded": build_loaded_network,
    "saturation": build_saturation_network,
}

#: Cycles each workload runs per measurement; idle cycles are so cheap on
#: the fast path that a large count is needed for a stable timer reading.
DEFAULT_CYCLES = {"idle": 2000, "loaded": 100, "saturation": 100}


def run_cycles(net: Network, cycles: int) -> None:
    for _ in range(cycles):
        net.step()


def measure_cycles_per_second(
    workload: str,
    activity_driven: bool,
    cycles: int | None = None,
    rounds: int = 3,
    backend: str = "object",
) -> float:
    """Best-of-``rounds`` cycles/second for one (workload, loop, backend)
    point.

    Each round builds a fresh network (measurements start from the same
    state) and times ``cycles`` steps; best-of defends against scheduler
    noise the same way pytest-benchmark's ``min`` column does.  These
    workloads are fault-free, so ``backend="batched"`` runs the
    struct-of-arrays kernel (``repro.noc.kernel``) rather than falling
    back.
    """
    n = cycles if cycles is not None else DEFAULT_CYCLES[workload]
    builder = WORKLOADS[workload]
    best = float("inf")
    for _ in range(rounds):
        net = builder(activity_driven, backend)
        t0 = time.perf_counter()
        run_cycles(net, n)
        best = min(best, time.perf_counter() - t0)
    return n / best


#: The checkpoint-overhead point runs a loaded *closed-loop* Simulator (the
#: bare-Network workloads above have no checkpoint machinery) for this many
#: cycles, snapshotting every ``CHECKPOINT_BENCH_INTERVAL`` — two full
#: save_checkpoint() calls (pickle + fsync + rename) land inside the window,
#: which is the cadence a long campaign run would actually use (a loaded 8x8
#: mesh simulates a few hundred cycles/second, so this snapshots every few
#: wall-clock seconds).
CHECKPOINT_BENCH_CYCLES = 2000
CHECKPOINT_BENCH_INTERVAL = 1000


def _loaded_simulator_config(checkpoint_path: str | None) -> SimulationConfig:
    """An 8x8 closed-loop config that stays loaded for the whole window."""
    return SimulationConfig(
        noc=NoCConfig(),
        workload=WorkloadConfig(
            injection_rate=0.25,
            num_messages=10**9,
            warmup_messages=100,
            max_cycles=10**9,
        ),
        checkpoint_interval=(
            CHECKPOINT_BENCH_INTERVAL if checkpoint_path is not None else None
        ),
        checkpoint_path=checkpoint_path,
    )


def measure_checkpoint_overhead(
    cycles: int = CHECKPOINT_BENCH_CYCLES, rounds: int = 3
) -> dict:
    """Throughput of a loaded run with and without auto-checkpointing.

    Returns ``{"plain": cps, "checkpointed": cps}`` for an identical loaded
    Simulator run; ``tools/bench_record.py --check`` enforces that the ratio
    stays within the documented overhead budget (docs/CHECKPOINTING.md).

    The two snapshots in the window cost ~100ms against a multi-second run,
    so the signal (a few percent) is smaller than this machine class's
    run-to-run timing noise.  Timing each variant in its own best-of block
    would therefore measure scheduler luck, not checkpointing: instead each
    round times the two variants *back to back* (so they sample the same
    noise epoch) and the reported ratio is the best paired ratio — a lower
    bound on true overhead that still catches real regressions, since a
    checkpoint path that became expensive drags every round down.
    """

    def timed(checkpoint_path: str | None) -> float:
        sim = Simulator(_loaded_simulator_config(checkpoint_path))
        t0 = time.perf_counter()
        sim.run_to_cycle(cycles)
        return time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        path = os.path.join(tmp, "bench.ckpt")
        best_plain = float("inf")
        best_ratio = 0.0
        for _ in range(rounds):
            plain_elapsed = timed(None)
            ckpt_elapsed = timed(path)
            best_plain = min(best_plain, plain_elapsed)
            best_ratio = max(best_ratio, plain_elapsed / ckpt_elapsed)
    plain = cycles / best_plain
    return {"plain": plain, "checkpointed": plain * min(best_ratio, 1.0)}
