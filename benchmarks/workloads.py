"""Shared workload builders for the simulator speed benchmarks.

Three operating points bracket the scheduler's behaviour space:

* **idle** — an 8x8 mesh with nothing queued anywhere.  The full polling
  loop still walks all 64 routers and interfaces every cycle; the
  activity-driven loop touches only the empty active sets.  This is the
  point the fast path exists for (long drain tails, low-rate campaigns).
* **loaded** — the historical workhorse: two packets queued per node, a
  mixed phase where some routers drain while others still carry traffic.
* **saturation** — enough packets queued per node that every router stays
  busy for the whole measured window.  Here the active sets contain every
  node, so this point measures the fast path's bookkeeping overhead — the
  regression floor ``tools/bench_record.py --check`` enforces.

Both the pytest-benchmark suite (``bench_simulator_speed.py``) and the
trajectory recorder (``tools/bench_record.py``) build their networks here so
the two always measure the same thing.
"""

from __future__ import annotations

import random
import time

from repro.config import NoCConfig, SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet


def build_idle_network(activity_driven: bool = True) -> Network:
    """An 8x8 mesh with no traffic at all."""
    return Network(
        SimulationConfig(noc=NoCConfig(), activity_driven=activity_driven)
    )


def _enqueue_uniform(net: Network, packets_per_node: int, seed: int = 1) -> None:
    rng = random.Random(seed)
    pid = 0
    num_nodes = net.config.noc.num_nodes
    for node in range(num_nodes):
        for _ in range(packets_per_node):
            dst = rng.randrange(num_nodes - 1)
            dst = dst if dst < node else dst + 1
            net.interfaces[node].enqueue(Packet(pid, node, dst, 4, 0))
            pid += 1


def build_loaded_network(activity_driven: bool = True) -> Network:
    """An 8x8 mesh with two uniform-random packets queued per node."""
    net = build_idle_network(activity_driven)
    _enqueue_uniform(net, packets_per_node=2)
    return net


def build_saturation_network(activity_driven: bool = True) -> Network:
    """An 8x8 mesh with deep per-node queues: every router busy throughout.

    Twenty 4-flit packets per node keep injection queues non-empty for far
    longer than the measured window, so the activity-driven loop's active
    sets hold all 64 nodes every cycle — its worst case.
    """
    net = build_idle_network(activity_driven)
    _enqueue_uniform(net, packets_per_node=20)
    return net


WORKLOADS = {
    "idle": build_idle_network,
    "loaded": build_loaded_network,
    "saturation": build_saturation_network,
}

#: Cycles each workload runs per measurement; idle cycles are so cheap on
#: the fast path that a large count is needed for a stable timer reading.
DEFAULT_CYCLES = {"idle": 2000, "loaded": 100, "saturation": 100}


def run_cycles(net: Network, cycles: int) -> None:
    for _ in range(cycles):
        net.step()


def measure_cycles_per_second(
    workload: str, activity_driven: bool, cycles: int | None = None, rounds: int = 3
) -> float:
    """Best-of-``rounds`` cycles/second for one (workload, loop) point.

    Each round builds a fresh network (measurements start from the same
    state) and times ``cycles`` steps; best-of defends against scheduler
    noise the same way pytest-benchmark's ``min`` column does.
    """
    n = cycles if cycles is not None else DEFAULT_CYCLES[workload]
    builder = WORKLOADS[workload]
    best = float("inf")
    for _ in range(rounds):
        net = builder(activity_driven)
        t0 = time.perf_counter()
        run_cycles(net, n)
        best = min(best, time.perf_counter() - t0)
    return n / best
