"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures, but the counterfactuals behind the paper's arguments:

* **AC unit off** — Section 4's premise: undetected VA/SA logic faults
  strand and lose packets instead of costing one cycle.
* **Handshake TMR off** — Section 4.6: glitches lose credits/NACKs.
* **Duplicate retransmission buffers** — Section 4.5: the fool-proof option
  vs the give-up escape.
* **Pipeline depth** — Section 2.1's 1/2/3/4-stage design space.
"""

from benchmarks.conftest import run_once
from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import run_simulation
from repro.types import FaultSite


def _workload(messages=800, rate=0.25, max_cycles=60_000, seed=21):
    return WorkloadConfig(
        injection_rate=rate,
        num_messages=messages,
        warmup_messages=messages // 5,
        max_cycles=max_cycles,
        seed=seed,
    )


def _run(noc, faults, messages=800):
    return run_simulation(
        SimulationConfig(noc=noc, faults=faults, workload=_workload(messages))
    )


def _ac_ablation():
    faults = FaultConfig.single_site(FaultSite.SW_ALLOC, 0.002, seed=3)
    return {
        "ac_on": _run(NoCConfig(ac_unit_enabled=True), faults),
        "ac_off": _run(NoCConfig(ac_unit_enabled=False), faults),
    }


def _retx_duplicate_ablation():
    faults = FaultConfig(
        rates={FaultSite.LINK: 0.02, FaultSite.RETX_BUFFER: 0.2},
        link_multi_bit_fraction=1.0,
        seed=3,
    )
    return {
        "single_copy": _run(NoCConfig(duplicate_retx_buffers=False), faults, 500),
        "duplicate": _run(NoCConfig(duplicate_retx_buffers=True), faults, 500),
    }


def _pipeline_ablation():
    results = {}
    for stages in (1, 2, 3, 4):
        results[f"{stages}-stage"] = _run(
            NoCConfig(pipeline_stages=stages), FaultConfig.fault_free(), 800
        )
    return results


def test_ablation_ac_unit(benchmark):
    results = run_once(benchmark, _ac_ablation)
    on, off = results["ac_on"], results["ac_off"]
    print()
    print(f"AC on : delivered={on.packets_delivered} corrected={on.counter('sa_errors_corrected')}")
    stranded = off.packets_injected - off.packets_delivered - off.packets_lost
    print(f"AC off: delivered={off.packets_delivered} misdirected_flits={off.counter('sa_misdirected_flits')} stranded~={stranded}")
    assert on.counter("sa_errors_corrected") > 0
    assert on.packets_lost == 0
    assert on.counter("packets_delivered_corrupt") == 0
    # Without the AC, SA faults do real damage.
    assert (
        off.counter("sa_misdirected_flits") > 0
        or off.counter("packets_delivered_corrupt") > 0
    )


def test_ablation_duplicate_retx_buffers(benchmark):
    results = run_once(benchmark, _retx_duplicate_ablation)
    single, dup = results["single_copy"], results["duplicate"]
    print()
    print(
        f"single copy: giveups={single.counter('retransmission_giveups')} "
        f"corrupt={single.counter('packets_delivered_corrupt')}"
    )
    print(
        f"duplicate  : restores={dup.counter('retx_buffer_restores')} "
        f"corrupt={dup.counter('packets_delivered_corrupt')}"
    )
    assert dup.counter("retx_buffer_restores") > 0
    assert dup.counter("packets_delivered_corrupt") == 0
    assert (
        single.counter("retransmission_giveups")
        + single.counter("packets_delivered_corrupt")
        > 0
    )


def test_ablation_pipeline_depth(benchmark):
    results = run_once(benchmark, _pipeline_ablation)
    print()
    latencies = {}
    for name, result in results.items():
        latencies[name] = result.avg_latency
        print(f"{name}: latency={result.avg_latency:.2f} cycles")
    # Shallower pipelines give lower zero-load-ish latency (Section 2.1's
    # motivation for 1/2-stage routers).
    assert latencies["2-stage"] < latencies["3-stage"] < latencies["4-stage"]
