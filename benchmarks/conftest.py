"""Benchmark configuration.

Every benchmark regenerates one paper table/figure and prints the same
rows/series the paper reports.  Scale knobs (the paper uses 300,000 ejected
messages per point, which a pure-Python simulator cannot afford per sweep):

* ``REPRO_BENCH_MESSAGES`` — ejected messages per sweep point (default 1200)
* ``REPRO_BENCH_WARMUP`` — warm-up messages excluded from stats (default 240)

Raise them for tighter confidence; curve shapes are stable from a few
hundred messages at these injection rates.
"""

import os

import pytest

BENCH_MESSAGES = int(os.environ.get("REPRO_BENCH_MESSAGES", "1200"))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "240"))


@pytest.fixture(scope="session")
def bench_scale():
    return {"num_messages": BENCH_MESSAGES, "warmup": BENCH_WARMUP}


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure regeneration exactly once under the timer.

    Simulation sweeps are long; pytest-benchmark's default calibration
    would re-run them dozens of times.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
