#!/usr/bin/env python3
"""The Allocation Comparator at work (the paper's Section 4 / Figure 12).

Part 1 drives the AC unit directly with each of the paper's VA error
scenarios (1)-(4) and SA error cases (b)-(d), showing which comparison
catches what.

Part 2 runs the ablation: the same switch-allocator fault storm with the
AC unit enabled (every error costs one cycle) and disabled (flits are
misdirected and packets damaged).

Run:  python examples/ac_unit_demo.py
"""

from repro import AllocationComparator, FaultConfig, FaultSite, api

P, V = 5, 4  # the paper's Table 1 router geometry


def part1_unit_level() -> None:
    ac = AllocationComparator(P, V)
    print("Part 1 — the three parallel comparisons of Figure 12")
    print()

    candidates = {(0, 0): [2]}  # routing says: south physical channel
    cases = [
        ("(1) invalid output VC id", {(0, 0): (2, V)}, {}),
        ("(2) output VC granted twice",
         {(0, 0): (2, 1), (1, 0): (2, 1)},
         {}),
        ("(3) reserved output VC granted", {(0, 0): (2, 1)}, {(2, 1): True}),
        ("(4a) wrong VC, same PC (benign)", {(0, 0): (2, 3)}, {}),
        ("(4b) VC in the wrong PC", {(0, 0): (0, 1)}, {}),
    ]
    for name, grants, reserved in cases:
        cands = dict(candidates)
        for req in grants:
            cands.setdefault(req, [grants[req][0] if name.startswith("(4a)") else 2])
        errors = ac.check_va(grants, cands, reserved)
        verdict = (
            "; ".join(e.reason for e in errors) if errors else "passes (benign)"
        )
        print(f"  VA {name:<35} -> {verdict}")

    print()
    va_state = {(0, 0): 2, (1, 0): 3}
    sa_cases = [
        ("(b) flit to the wrong output", [((0, 0), 3)]),
        ("(c) two flits to one output", [((0, 0), 2), ((1, 0), 2)]),
        ("(d) multicast", [((0, 0), 2), ((0, 0), 4)]),
    ]
    for name, grants in sa_cases:
        state = dict(va_state)
        if name.startswith("(c)"):
            state[(1, 0)] = 2
        errors = ac.check_sa(grants, state)
        verdict = "; ".join(e.reason for e in errors) if errors else "passes"
        print(f"  SA {name:<35} -> {verdict}")


def part2_network_level() -> None:
    print()
    print("Part 2 — SA fault storm, AC enabled vs disabled (8x8 mesh)")
    print()
    faults = FaultConfig.single_site(FaultSite.SW_ALLOC, 0.002, seed=3)
    for enabled in (True, False):
        r = api.run(
            ac_unit_enabled=enabled,
            faults=faults,
            rate=0.25,
            messages=800,
            warmup=160,
            max_cycles=60_000,
        )
        stranded = r.packets_injected - r.packets_delivered - r.packets_lost
        print(
            f"  AC {'ON ' if enabled else 'OFF'}: "
            f"delivered={r.packets_delivered} "
            f"corrected={r.counter('sa_errors_corrected')} "
            f"misdirected_flits={r.counter('sa_misdirected_flits')} "
            f"corrupt={r.counter('packets_delivered_corrupt')} "
            f"stranded~={stranded} "
            f"latency={r.avg_latency:.2f}"
        )
    print()
    print(
        "With the AC on, every fault is invalidated within a cycle; with it\n"
        "off, misdirected flits vanish into wrong wormholes and packets are\n"
        "damaged or stranded — Section 4.3's cases (b)-(d) in action."
    )


if __name__ == "__main__":
    part1_unit_level()
    part2_network_level()
