#!/usr/bin/env python3
"""Tour of the telemetry layer: events, time-series, heatmaps, NDJSON.

Runs a faulty 8x8 mesh with telemetry enabled and walks through what the
run recorded:

1. the structured event stream (NACKs, replays, transient faults, ...);
2. sampled per-component time-series (delivered packets, link utilization);
3. per-node heatmaps rendered in the terminal;
4. the NDJSON export that ``repro run --telemetry out.ndjson`` writes,
   validated line by line.

Run:  python examples/telemetry_tour.py
"""

from repro import FaultConfig, api
from repro.report import render_heatmap, render_series


def main() -> None:
    print("Simulating an 8x8 mesh, 2% link errors, telemetry every 50 cycles...")
    result = api.run(
        faults=FaultConfig.link_only(0.02, multi_bit_fraction=0.3, seed=11),
        rate=0.2,
        messages=1200,
        warmup=200,
        telemetry=True,
        metrics_interval=50,
    )
    report = result.telemetry

    print()
    print("1. event stream:", len(report.events), "events")
    for kind, count in sorted(report.event_counts().items()):
        print(f"     {kind:<24} {count}")
    nacks = report.events_of("nack")
    if nacks:
        first = nacks[0]
        print(f"   first NACK: cycle {first.cycle}, node {first.node}, "
              f"data {first.data}")

    print()
    print("2. time-series:", report.num_samples, "samples in",
          len(report.series), "series")
    delivered = report.get_series("delivered_packets")
    cycles = [float(c) for c, _ in delivered]
    print()
    print(render_series(
        "delivered packets over time",
        cycles,
        {"delivered": [v for _, v in delivered],
         "in flight": [v for _, v in report.get_series("in_flight_flits")]},
    ))

    print()
    print("3. per-node heatmaps (mean over the run):")
    print()
    print(render_heatmap(report.heatmap("vc_occupancy"),
                         title="buffered flits per router"))
    print()
    print(render_heatmap(report.heatmap("link_utilization"),
                         title="outgoing link utilization (flits/cycle)",
                         fmt="{:.3f}"))

    print()
    out_path = "telemetry_tour.ndjson"
    summary = api.write_ndjson(report, out_path,
                               config=api.config_to_dict(result.config))
    problems = api.validate_ndjson_lines(open(out_path))
    print(f"4. NDJSON export: wrote {out_path} "
          f"({summary['events']} events + {summary['samples']} samples), "
          f"validator problems: {len(problems)}")
    assert not problems


if __name__ == "__main__":
    main()
