#!/usr/bin/env python3
"""Quickstart: simulate the paper's platform and print the headline stats.

Builds the Section 2.2 configuration — an 8x8 mesh of 3-stage pipelined
virtual-channel wormhole routers with the flit-based HBH retransmission
scheme — injects uniform random traffic at 0.25 flits/node/cycle with a 1%
uncorrectable link error rate, and reports latency, energy and the
error-recovery counters.

Everything goes through the stable :mod:`repro.api` facade; the underlying
config dataclasses remain available for finer control (see
``fault_injection_sweep.py``).

Run:  python examples/quickstart.py
"""

from repro import FaultConfig, api


def main() -> None:
    config = api.load_config(
        # the paper's defaults: 8x8, 3 VCs, 4-flit packets, HBH protection
        faults=FaultConfig.link_only(0.01, multi_bit_fraction=1.0),
        pattern="uniform",
        rate=0.25,
        messages=2000,
        warmup=400,
    )

    print("Simulating an 8x8 mesh with HBH retransmission, 1% link error rate...")
    result = api.run(config)

    print()
    print(result.summary_lines())
    print()
    print("fault-tolerance activity:")
    for name in (
        "retransmission_rounds",
        "flits_retransmitted",
        "flits_dropped",
        "link_errors_corrected",
    ):
        print(f"  {name:<24} {result.counter(name)}")
    print()
    delivered_ok = result.packets_delivered - result.counter(
        "packets_delivered_corrupt"
    )
    print(
        f"delivered clean: {delivered_ok}/{result.packets_delivered} "
        f"(lost: {result.packets_lost})"
    )
    assert result.packets_lost == 0, "HBH must not lose packets"


if __name__ == "__main__":
    main()
