#!/usr/bin/env python3
"""Design-space exploration with the simulator as the evaluation engine.

Sweeps the router design axes the paper's Section 2 discusses — pipeline
depth (the 1/2/3/4-stage implementations of [15-18]), virtual channels per
port, and buffer depth — and reports latency, saturation behaviour and the
area cost from the calibrated 90 nm model, all on one table.  This is the
workflow a designer would use the library for beyond reproducing the
paper's figures.

Run:  python examples/design_space_explorer.py [--fast]
"""

import argparse

from repro import AreaModel, NoCConfig, api
from repro.power.area import router_inventory


def evaluate(noc: NoCConfig, rate: float, messages: int) -> dict:
    config = api.load_config(
        api.SimulationConfig(noc=noc),
        rate=rate,
        messages=messages,
        warmup=messages // 5,
        max_cycles=60_000,
    )
    result = api.run(config)
    return {
        "latency": result.avg_latency,
        "throughput": result.throughput_flits_per_node_cycle,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    messages = 300 if args.fast else 800
    area_model = AreaModel()

    print("=== Pipeline depth (8x8 mesh, 0.25 flits/node/cycle) ===")
    print(f"{'stages':>7} {'latency':>9} {'throughput':>11}")
    for stages in (1, 2, 3, 4):
        noc = NoCConfig(pipeline_stages=stages)
        r = evaluate(noc, 0.25, messages)
        note = "  <- paper's platform" if stages == 3 else ""
        print(f"{stages:>7} {r['latency']:>9.2f} {r['throughput']:>11.3f}{note}")

    print()
    print("=== Virtual channels per port (with router area cost) ===")
    print(f"{'VCs':>4} {'latency@0.25':>13} {'latency@0.45':>13} {'area mm^2':>10}")
    for vcs in (1, 2, 3, 4):
        noc = NoCConfig(num_vcs=vcs)
        low = evaluate(noc, 0.25, messages)
        high = evaluate(noc, 0.45, messages)
        area = area_model.area_mm2(
            router_inventory(num_vcs=vcs, buffer_depth=noc.vc_buffer_depth)
        )
        note = "  <- paper's platform" if vcs == 3 else ""
        print(
            f"{vcs:>4} {low['latency']:>13.2f} {high['latency']:>13.2f} "
            f"{area:>10.4f}{note}"
        )

    print()
    print("=== Buffer depth (trades area for saturation headroom) ===")
    print(f"{'depth':>6} {'latency@0.45':>13} {'area mm^2':>10}")
    for depth in (2, 4, 8):
        noc = NoCConfig(vc_buffer_depth=depth)
        r = evaluate(noc, 0.45, messages)
        area = area_model.area_mm2(router_inventory(buffer_depth=depth))
        print(f"{depth:>6} {r['latency']:>13.2f} {area:>10.4f}")

    print()
    print(
        "Deeper pipelines trade zero-load latency for clock rate; more VCs\n"
        "and deeper buffers buy saturation headroom with buffer area —\n"
        "the trade-offs behind the paper's 3-stage / 3-VC platform choice."
    )


if __name__ == "__main__":
    main()
