#!/usr/bin/env python3
"""Deadlock recovery walkthrough (the paper's Figures 10 and 11).

Scripts a genuine four-packet cyclic wormhole deadlock on a 2x2 mesh with
one virtual channel (each packet holds one channel of the cycle while its
head waits for the next), then shows:

1. without recovery, nothing is ever delivered — a true deadlock;
2. with the probe-based detection (Rules 1-4) and retransmission-buffer
   recovery enabled, probes circle the cycle, the activation switches every
   router into recovery mode, flits are absorbed into the idle
   retransmission buffers, and every packet is delivered;
3. the Eq. 1 buffer bound that guarantees (2).

Run:  python examples/deadlock_recovery_demo.py
"""

from repro.core.deadlock import buffer_lower_bound, minimum_total_buffer
from repro.experiments.deadlock_demo import (
    CYCLE_SPECS,
    run_deadlock_demo,
    run_worst_case_demo,
)


def show(title, outcome):
    print(title)
    print(f"  delivered            : {outcome.delivered}/{outcome.expected}")
    if outcome.cycles_to_resolution is not None:
        print(f"  resolved at cycle    : {outcome.cycles_to_resolution}")
    print(f"  probes sent          : {outcome.probes_sent}")
    print(f"  deadlocks detected   : {outcome.deadlocks_detected}")
    print(f"  flits absorbed       : {outcome.recovery_forwards}")
    print()


def main() -> None:
    print("The deadlock cycle (node, source route, destination):")
    for src, route, dst in CYCLE_SPECS:
        path = " -> ".join(d.name for d in route)
        print(f"  node {src}: {path} -> eject at {dst}")
    print()

    show("[1] Figure 10 scenario, recovery DISABLED (600 cycles):",
         run_deadlock_demo(recovery=False, max_cycles=600))
    show("[2] Figure 10 scenario, recovery ENABLED:",
         run_deadlock_demo(recovery=True))
    show("[3] Figure 11 worst case (followers pressing in), recovery ENABLED:",
         run_worst_case_demo(recovery=True))

    print("[4] The Eq. 1 bound for the Figure 10 configuration")
    m, t, r, n = 4, 4, 3, 3
    b2 = n * (t + r)
    print(f"  M={m} flits/packet, T={t}, R={r}, n={n} nodes")
    print(f"  B2 = n*(T+R) = {b2}  vs  M*N*n = {m * 1 * n}")
    print(f"  bound satisfied: {buffer_lower_bound(m, [t] * n, [r] * n)}")
    print(
        f"  minimum total buffering for guaranteed recovery: "
        f"{minimum_total_buffer(m, [t] * n)}"
    )


if __name__ == "__main__":
    main()
