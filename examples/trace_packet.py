#!/usr/bin/env python3
"""Trace a packet's journey through the network — with a retransmission.

Injects one 4-flit packet across a 2x4 mesh, corrupts its header once on a
link, and prints the flit's full journey as recorded by the non-invasive
:class:`repro.noc.trace.PacketTracer`: buffer-by-buffer, link-by-link,
including the retransmission (the header crosses the faulted link twice).

Run:  python examples/trace_packet.py
"""

from repro.config import NoCConfig, SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.trace import PacketTracer
from repro.types import Corruption


def main() -> None:
    net = Network(SimulationConfig(noc=NoCConfig(width=4, height=2, num_vcs=1)))

    # Deterministically corrupt the 3rd inter-router flit traversal (the
    # header's second hop).
    counter = {"n": 0}

    def link_upset(cycle, node):
        counter["n"] += 1
        return Corruption.MULTI if counter["n"] == 3 else None

    net.injector.link_upset = link_upset  # type: ignore[method-assign]

    net.interfaces[0].enqueue(Packet(0, src=0, dst=7, num_flits=4, injection_cycle=0))
    tracer = PacketTracer(net, watch=[0])
    done = tracer.run_until_delivered(1, max_cycles=200)
    print(f"packet 0 delivered at cycle {done} "
          f"(route (0,0) -> (3,1), {net.stats.counter('retransmission_rounds')} "
          f"retransmission round(s))")
    print()

    trace = tracer.trace(0)
    print("header flit (seq 0) journey:")
    last = None
    for sighting in trace.journey(0):
        if sighting.location != last:
            print(f"  {sighting}")
            last = sighting.location

    print()
    # The corrupted flit crossed its faulted link twice: find it.
    crossings = {seq: trace.link_crossings(seq) for seq in range(4)}
    victim = max(crossings, key=crossings.get)
    print(f"link crossings per flit: {crossings}")
    print(
        f"flit {victim} crossed {crossings[victim]} links for a 4-hop path — "
        f"the extra crossing is its retransmission:"
    )
    last = None
    for sighting in trace.journey(victim):
        if sighting.location != last:
            print(f"  {sighting}")
            last = sighting.location


if __name__ == "__main__":
    main()
