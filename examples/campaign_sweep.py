#!/usr/bin/env python3
"""Experiment campaigns: a protection-scheme x error-rate grid in parallel.

Shows the campaign API: build a variant grid over dotted config paths, run
it across worker processes (simulations are embarrassingly parallel), and
render the result table and an ASCII chart of the Figure 5 shape.

Run:  python examples/campaign_sweep.py [--processes N] [--fast]
"""

import argparse

from repro import NoCConfig, SimulationConfig, WorkloadConfig
from repro.campaign import campaign_table, grid, run_campaign
from repro.report.charts import render_series

ERROR_RATES = [1e-4, 1e-3, 1e-2, 1e-1]
SCHEMES = ["hbh", "e2e", "fec"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    messages = 400 if args.fast else 1000

    base = SimulationConfig(
        noc=NoCConfig(),
        workload=WorkloadConfig(
            injection_rate=0.25,
            num_messages=messages,
            warmup_messages=messages // 5,
        ),
    )
    variants = grid(
        axes={
            "noc.link_protection": SCHEMES,
            "faults.rates.link": ERROR_RATES,
        },
        base=base,
    )
    print(
        f"running {len(variants)} variants on {args.processes} processes..."
    )
    rows = run_campaign(variants, processes=args.processes)

    print()
    print(campaign_table(rows))
    print()

    # Regroup into per-scheme latency series for the chart.
    series = {}
    for scheme in SCHEMES:
        series[scheme.upper()] = [
            row.avg_latency
            for row in rows
            if row.config.noc.link_protection.value == scheme
        ]
    print(
        render_series(
            "Latency (cycles) vs link error rate — the Figure 5 shape",
            ERROR_RATES,
            series,
            log_x=True,
        )
    )


if __name__ == "__main__":
    main()
