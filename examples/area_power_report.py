#!/usr/bin/env python3
"""Router area/power report (the paper's Table 1, plus design exploration).

Evaluates the calibrated 90 nm structural model: the Table 1 numbers at the
paper's configuration, the AC unit's overhead as the router scales, and an
energy breakdown for an average packet (the quantities behind Figures 7
and 13b).

Run:  python examples/area_power_report.py
"""

from repro import AreaModel, EnergyModel
from repro.power.area import ac_unit_inventory, router_inventory


def table1_section(model: AreaModel) -> None:
    print("=== Table 1: AC unit overhead (calibrated at 5 ports x 4 VCs) ===")
    data = model.table1()
    print(f"  generic router : {data['router_power_mw']:8.2f} mW"
          f"  {data['router_area_mm2']:.6f} mm^2")
    print(f"  AC unit        : {data['ac_power_mw']:8.2f} mW"
          f"  {data['ac_area_mm2']:.6f} mm^2")
    print(f"  overhead       : {data['ac_power_overhead_pct']:+8.2f} %"
          f"  {data['ac_area_overhead_pct']:+.2f} %")
    print()


def scaling_section(model: AreaModel) -> None:
    print("=== AC overhead scaling (the compactness argument's limits) ===")
    print(f"  {'VCs/PC':>7} {'router mm^2':>12} {'AC mm^2':>10} {'area +%':>9}")
    for vcs in (2, 3, 4, 6, 8):
        data = model.table1(num_vcs=vcs)
        print(
            f"  {vcs:>7} {data['router_area_mm2']:>12.6f} "
            f"{data['ac_area_mm2']:>10.6f} {data['ac_area_overhead_pct']:>9.2f}"
        )
    print(
        "  (the pairwise duplicate-check network grows ~quadratically in\n"
        "   P*V; the paper's <2% overhead claim holds through ~4 VCs/PC)"
    )
    print()


def inventory_section(model: AreaModel) -> None:
    print("=== Structural inventories behind the calibration ===")
    router = router_inventory()
    ac = ac_unit_inventory()
    print(f"  router: {router.storage_bits} storage bits, {router.gates} gate-eq")
    print(f"  AC    : {ac.storage_bits} storage bits, {ac.gates} gate-eq")
    print(f"  coefficients: {model.area_per_bit_um2:.2f} um^2/bit, "
          f"{model.area_per_gate_um2:.2f} um^2/gate")
    print()


def energy_section() -> None:
    print("=== Per-packet energy breakdown (4 flits, average 8x8 path) ===")
    energy = EnergyModel()
    flits, hops = 4, 6.33
    events = {
        "buffer_write": int(flits * hops),
        "buffer_read": int(flits * hops),
        "rt_op": int(hops),
        "va_grant": int(hops),
        "sa_grant": int(flits * hops),
        "xbar": int(flits * hops),
        "link": int(flits * (hops - 1)),
        "local_link": flits * 2,
        "retx_write": int(flits * (hops - 1)),
        "credit": int(flits * hops),
    }
    for name, count in sorted(events.items()):
        pj = energy.event_energy_pj[name] * count
        print(f"  {name:<14} x{count:<4} = {pj:7.2f} pJ")
    total = energy.energy_per_packet_nj(events, 1)
    print(f"  {'total':<14}        = {total * 1000:7.2f} pJ = {total:.4f} nJ")
    print("  (the Figures 7/13b sub-nanojoule band)")


if __name__ == "__main__":
    model = AreaModel()
    table1_section(model)
    scaling_section(model)
    inventory_section(model)
    energy_section()
