#!/usr/bin/env python3
"""Fault-injection sweep: compare the three link-error handling schemes.

Reproduces the Figure 5 experiment interactively: sweeps the link error
rate for the paper's HBH scheme and the E2E / FEC baselines, printing
latency *and* the integrity outcomes the latency axis hides (packets lost,
packets delivered corrupted, retransmission traffic).

Run:  python examples/fault_injection_sweep.py [--fast]
"""

import argparse

from repro import FaultConfig, LinkProtection, api

ERROR_RATES = (1e-4, 1e-3, 1e-2, 5e-2, 1e-1)


def run_point(scheme: LinkProtection, error_rate: float, messages: int):
    return api.run(
        link_protection=scheme,
        faults=FaultConfig.link_only(error_rate, multi_bit_fraction=0.2, seed=7),
        rate=0.25,
        messages=messages,
        warmup=messages // 5,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="smaller runs (quick demo)"
    )
    args = parser.parse_args()
    messages = 500 if args.fast else 1500

    header = (
        f"{'scheme':>7} {'err rate':>9} {'latency':>9} {'lost':>6} "
        f"{'corrupt':>8} {'retx':>7} {'energy nJ':>10}"
    )
    print(header)
    print("-" * len(header))
    for scheme in (LinkProtection.HBH, LinkProtection.E2E, LinkProtection.FEC):
        for rate in ERROR_RATES:
            r = run_point(scheme, rate, messages)
            retx = r.counter("retransmission_rounds") + r.counter(
                "e2e_retransmissions"
            )
            print(
                f"{scheme.value:>7} {rate:>9g} {r.avg_latency:>9.2f} "
                f"{r.packets_lost:>6} {r.counter('packets_delivered_corrupt'):>8} "
                f"{retx:>7} {r.energy_per_packet_nj:>10.4f}"
            )
        print("-" * len(header))

    print(
        "\nReading the table: HBH latency stays flat and loses nothing;\n"
        "E2E latency explodes with the error rate (whole-packet, whole-path\n"
        "retransmissions); FEC looks fast but silently loses or corrupts\n"
        "packets — the paper's argument for hybrid HBH protection."
    )


if __name__ == "__main__":
    main()
