"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — one simulation with the platform/fault/workload knobs exposed
  as flags; prints the result summary and error-recovery counters.
* ``figure {5,6,7,8,9,10,13}`` — regenerate a paper figure; prints the
  series table and an ASCII chart of the shape.
* ``table1`` — the AC-unit area/power table.
* ``sweep`` — latency vs injection rate (saturation curves) for a routing
  algorithm, the standard NoC characterization the paper's Figures 8/9
  build on.
* ``degrade`` — the graceful-degradation campaign: progressively kill
  random links (the last one mid-run) under fault-aware table routing and
  report the delivery-rate / latency-inflation / reconvergence curve.
* ``campaign`` — the durable campaign service: run a JSON spec of config
  variants under full supervision (journal, retry backoff, per-attempt
  timeouts, whole-campaign deadline, content-addressed result cache) and
  resume a crashed campaign with ``--resume`` (docs/CAMPAIGNS.md).
* ``lint`` — the static NoC linter: check JSON config files (or a config
  assembled from the same flags ``run`` takes) against the ``NOC0xx`` rule
  catalogue and the channel-dependency-graph deadlock-freedom verifier.
  Exits non-zero when any ERROR diagnostic fires.
* ``verify`` — the routing certification engine: statically prove
  connectivity, livelock-freedom and deadlock-freedom for a config (with
  its permanent-fault schedule fully applied), optionally under exhaustive
  single-link-kill and seeded multi-kill robustness sweeps.  Exits non-zero
  when any certificate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.config import (
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
    parse_link_latency,
    parse_shape,
)
from repro.report.charts import render_comparison_table, render_series
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm


def _add_shape_flags(parser: argparse.ArgumentParser) -> None:
    """Mesh-geometry knobs shared by every platform-building subcommand."""
    parser.add_argument(
        "--shape",
        metavar="WxH[xD]",
        help="mesh extents, e.g. 8x8 or 4x4x4 (a third axis selects the "
        "3D topology with vertical TSV links)",
    )
    parser.add_argument(
        "--width", type=int, default=8, help="deprecated alias: use --shape"
    )
    parser.add_argument(
        "--height", type=int, default=8, help="deprecated alias: use --shape"
    )
    parser.add_argument(
        "--link-latency",
        metavar="L[,L,L]",
        help="cycles per link traversal, uniform (e.g. 1) or per axis "
        "(e.g. 1,1,2 for 2-cycle vertical TSVs)",
    )


def _parse_shape_args(
    args: argparse.Namespace,
) -> "tuple[Optional[tuple], Optional[Any]]":
    """Resolve ``--shape``/``--link-latency``, exiting 2 on bad grammar."""
    shape = latency = None
    try:
        if getattr(args, "shape", None):
            shape = parse_shape(args.shape)
        if getattr(args, "link_latency", None):
            latency = parse_link_latency(args.link_latency)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return shape, latency


def _add_platform_flags(parser: argparse.ArgumentParser) -> None:
    """The NoC-platform and fault knobs shared by ``run`` and ``lint``."""
    _add_shape_flags(parser)
    parser.add_argument("--vcs", type=int, default=3, help="virtual channels per port")
    parser.add_argument("--buffer-depth", type=int, default=4)
    parser.add_argument("--flits", type=int, default=4, help="flits per packet")
    parser.add_argument(
        "--retx-depth",
        type=int,
        default=3,
        help="retransmission buffer depth (Section 3.1 derives 3)",
    )
    parser.add_argument(
        "--routing",
        choices=[a.value for a in RoutingAlgorithm if a is not RoutingAlgorithm.SOURCE],
        default="xy",
    )
    parser.add_argument(
        "--scheme", choices=[s.value for s in LinkProtection], default="hbh"
    )
    parser.add_argument("--pipeline-stages", type=int, default=3, choices=(1, 2, 3, 4))
    parser.add_argument("--no-ac", action="store_true", help="disable the AC unit")
    parser.add_argument(
        "--deadlock-recovery", action="store_true", help="enable probing + recovery"
    )
    parser.add_argument(
        "--deadlock-threshold",
        type=int,
        default=32,
        help="C_thres: blocked cycles before a probe fires",
    )
    parser.add_argument(
        "--torus", action="store_true", help="torus topology instead of mesh"
    )
    parser.add_argument("--link-error-rate", type=float, default=0.0)
    parser.add_argument(
        "--multi-bit-fraction",
        type=float,
        default=0.1,
        help="fraction of link errors that defeat SEC",
    )
    parser.add_argument("--rt-error-rate", type=float, default=0.0)
    parser.add_argument("--va-error-rate", type=float, default=0.0)
    parser.add_argument("--sa-error-rate", type=float, default=0.0)
    parser.add_argument(
        "--dead-link",
        action="append",
        default=[],
        metavar="NODE:DIR[@CYCLE]",
        help="permanently kill a link (repeatable), e.g. 12:east@500",
    )
    parser.add_argument(
        "--dead-router",
        action="append",
        default=[],
        metavar="NODE[@CYCLE]",
        help="permanently kill a router and all its links (repeatable)",
    )
    parser.add_argument(
        "--dead-vc",
        action="append",
        default=[],
        metavar="NODE:DIR:VC[@CYCLE]",
        help="permanently kill one input VC buffer (repeatable)",
    )
    parser.add_argument(
        "--intermittent-link",
        action="append",
        default=[],
        metavar="NODE:DIR:RATE:ON:OFF[@CYCLE]",
        help="add a bursty link site (repeatable): strike probability RATE "
        "during exponentially distributed on-windows of mean ON cycles, "
        "separated by off-windows of mean OFF, e.g. 12:east:0.4:30:200",
    )
    parser.add_argument(
        "--wear-out-threshold",
        type=float,
        metavar="STRESS",
        help="escalate an intermittent site into a permanent link death "
        "once its accumulated stress reaches this value (docs/FAULTS.md)",
    )
    parser.add_argument(
        "--wear-out-strike-weight",
        type=float,
        default=1.0,
        help="stress contributed per intermittent strike (default 1.0)",
    )
    parser.add_argument(
        "--wear-out-traversal-weight",
        type=float,
        default=0.0,
        help="stress contributed per flit traversal of the site's link "
        "(default 0.0: strikes only)",
    )


def _add_workload_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rate", type=float, default=0.25, help="flits/node/cycle")
    parser.add_argument(
        "--pattern", default="uniform", help="uniform|bit_complement|tornado|transpose"
    )
    parser.add_argument("--messages", type=int, default=2000)
    parser.add_argument("--warmup", type=int, default=400)
    parser.add_argument("--max-cycles", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=42)


def _permanent_dicts(args: argparse.Namespace) -> List[Dict[str, Any]]:
    """Parse the ``--dead-*`` specs into serialized permanent faults."""
    from repro.faults.permanent import (
        PermanentFaultSchedule,
        parse_link_spec,
        parse_router_spec,
        parse_vc_spec,
    )

    faults = []
    try:
        for spec in args.dead_link:
            faults.append(parse_link_spec(spec))
        for spec in args.dead_router:
            faults.append(parse_router_spec(spec))
        for spec in args.dead_vc:
            faults.append(parse_vc_spec(spec))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return PermanentFaultSchedule.of(*faults).to_dicts()


def _intermittent_dicts(args: argparse.Namespace) -> List[Dict[str, Any]]:
    """Parse the ``--intermittent-link`` specs into serialized burst sites."""
    from repro.faults.intermittent import (
        IntermittentFaultSchedule,
        parse_intermittent_spec,
    )

    faults = []
    try:
        for spec in args.intermittent_link:
            faults.append(parse_intermittent_spec(spec))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return IntermittentFaultSchedule.of(*faults).to_dicts()


def _wear_out_dict(args: argparse.Namespace) -> Optional[Dict[str, float]]:
    if args.wear_out_threshold is None:
        return None
    return {
        "threshold": args.wear_out_threshold,
        "strike_weight": args.wear_out_strike_weight,
        "traversal_weight": args.wear_out_traversal_weight,
    }


def _platform_dict(args: argparse.Namespace) -> Dict[str, Any]:
    """The serialized config dict the flags describe (no constructors run,
    so ``lint`` can diagnose values the constructors would reject)."""
    rates: Dict[str, float] = {}
    for site, value in (
        (FaultSite.LINK, args.link_error_rate),
        (FaultSite.ROUTING, args.rt_error_rate),
        (FaultSite.VC_ALLOC, args.va_error_rate),
        (FaultSite.SW_ALLOC, args.sa_error_rate),
    ):
        if value:
            rates[site.value] = value
    shape, link_latency = _parse_shape_args(args)
    topology = "torus" if args.torus else "mesh"
    if shape is not None:
        geometry: Dict[str, Any] = {"shape": list(shape)}
        if len(shape) == 3:
            topology += "3d"
    else:
        geometry = {"width": args.width, "height": args.height}
    if link_latency is not None:
        geometry["link_latency"] = (
            link_latency
            if isinstance(link_latency, int)
            else list(link_latency)
        )
    out: Dict[str, Any] = {
        "noc": {
            **geometry,
            "topology": topology,
            "num_vcs": args.vcs,
            "vc_buffer_depth": args.buffer_depth,
            "flits_per_packet": args.flits,
            "retx_buffer_depth": args.retx_depth,
            "pipeline_stages": args.pipeline_stages,
            "routing": args.routing,
            "link_protection": args.scheme,
            "ac_unit_enabled": not args.no_ac,
            "deadlock_recovery_enabled": args.deadlock_recovery,
            "deadlock_threshold": args.deadlock_threshold,
        },
        "faults": {
            "rates": rates,
            "link_multi_bit_fraction": args.multi_bit_fraction,
            "seed": args.seed,
            "permanent": _permanent_dicts(args),
            "intermittent": _intermittent_dicts(args),
            "wear_out": _wear_out_dict(args),
        },
        "workload": {
            "pattern": args.pattern,
            "injection_rate": args.rate,
            "num_messages": args.messages,
            "warmup_messages": args.warmup,
            "max_cycles": args.max_cycles,
            "seed": args.seed,
        },
        "invariant_checks": getattr(args, "invariant_checks", False),
    }
    backend = getattr(args, "backend", None)
    if backend is not None:
        out["backend"] = backend
    if getattr(args, "checkpoint", None):
        out["checkpoint_path"] = args.checkpoint
        out["checkpoint_interval"] = getattr(args, "checkpoint_interval", None)
    if getattr(args, "telemetry", None):
        out["telemetry"] = {
            "enabled": True,
            "metrics_interval": getattr(args, "metrics_interval", 100),
        }
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant NoC simulator (Park et al., DSN 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    _add_platform_flags(run)
    _add_workload_flags(run)
    run.add_argument(
        "--invariant-checks",
        action="store_true",
        help="run the per-cycle invariant sanitizer (slow; raises on violation)",
    )
    run.add_argument(
        "--backend",
        choices=("object", "batched"),
        default="object",
        help="execution backend: 'batched' runs fault-free configs on the "
        "struct-of-arrays kernel (docs/KERNEL.md), bit-for-bit equivalent "
        "and ~5x faster when loaded; out-of-domain configs fall back to "
        "the object model",
    )
    run.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    run.add_argument(
        "--telemetry",
        metavar="PATH",
        help="enable the telemetry layer and write its NDJSON stream here",
    )
    run.add_argument(
        "--metrics-interval",
        type=int,
        default=100,
        help="cycles between telemetry time-series samples (with --telemetry)",
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically snapshot the run here (crash-safe, atomic; "
        "pair with --checkpoint-interval)",
    )
    run.add_argument(
        "--checkpoint-interval",
        type=int,
        metavar="N",
        help="cycles between checkpoints (requires --checkpoint)",
    )
    run.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a previous run from its checkpoint file instead of "
        "starting fresh (platform/workload flags are ignored: the "
        "checkpoint carries the original config)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check config files (or flags) for NoC hazards",
        description=(
            "Run the NOC0xx rule catalogue and the channel-dependency-graph "
            "deadlock-freedom verifier over JSON config files, directories "
            "of them, or a config assembled from the same flags 'run' "
            "accepts. Exit status 1 if any ERROR diagnostic fires."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="JSON config files or directories (default: lint the flags)",
    )
    _add_platform_flags(lint)
    _add_workload_flags(lint)
    lint.add_argument(
        "--rules", action="store_true", help="list the rule catalogue and exit"
    )
    lint.add_argument(
        "--no-cdg",
        action="store_true",
        help="skip the channel-dependency-graph pass (fast, config rules only)",
    )
    lint.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    lint.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )

    verify = sub.add_parser(
        "verify",
        help="statically certify routing (connectivity, livelock, deadlock)",
        description=(
            "Prove — without simulating — that the routing a config will "
            "run is connected (every expected src/dst pair has a guaranteed "
            "route), livelock-free (loop-free traversal with a strictly "
            "decreasing progress metric) and deadlock-free (acyclic channel "
            "dependency graph).  Scheduled permanent faults are fully "
            "applied first, so the certificate covers the degraded network. "
            "Exit status 1 if any certificate fails."
        ),
    )
    verify.add_argument(
        "paths",
        nargs="*",
        help="JSON config files or directories (default: verify the flags)",
    )
    _add_platform_flags(verify)
    _add_workload_flags(verify)
    verify.add_argument(
        "--single-link-kills",
        action="store_true",
        help="additionally certify the fault-aware rebuild for every "
        "possible single-link kill (exhaustive)",
    )
    verify.add_argument(
        "--multi-kill",
        action="append",
        type=int,
        default=[],
        metavar="K",
        help="additionally certify seeded random K-link-kill samples "
        "(repeatable for several K)",
    )
    verify.add_argument(
        "--samples",
        type=int,
        default=12,
        help="trials per --multi-kill sweep (default 12)",
    )
    verify.add_argument(
        "--sweep-seed",
        type=int,
        default=2006,
        help="seed for the multi-kill samples (default 2006)",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit certificates as JSON"
    )

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", choices=["5", "6", "7", "8", "9", "10", "13"])
    fig.add_argument("--messages", type=int, default=1200)
    fig.add_argument("--no-chart", action="store_true")

    sub.add_parser("table1", help="the AC-unit overhead table")

    degrade = sub.add_parser(
        "degrade",
        help="graceful-degradation campaign: progressive random link kills",
        description=(
            "Kill 0..N randomly chosen links (the last one mid-run) on a "
            "mesh running fault-aware table routing and report delivery "
            "rate, reachable-pair fraction, latency inflation and "
            "reconvergence time per kill level."
        ),
    )
    _add_shape_flags(degrade)
    degrade.add_argument(
        "--kills", type=int, default=8, help="maximum number of dead links"
    )
    degrade.add_argument(
        "--kill-pillars",
        action="store_true",
        help="kill whole TSV pillars (every vertical link of an (x,y) "
        "column) instead of single links; needs a 3-axis --shape",
    )
    degrade.add_argument("--rate", type=float, default=0.1, help="flits/node/cycle")
    degrade.add_argument(
        "--inject-cycles", type=int, default=1500, help="injection window length"
    )
    degrade.add_argument("--seed", type=int, default=17)
    degrade.add_argument(
        "--routing",
        choices=["ft_table", "xy", "west_first", "fully_adaptive"],
        default="ft_table",
        help="routing algorithm under test (default: fault-aware ft_table)",
    )
    degrade.add_argument(
        "--burst",
        action="store_true",
        help="sweep intermittent burst intensity x wear-out rate instead "
        "of progressive clean kills (docs/FAULTS.md)",
    )
    degrade.add_argument(
        "--burst-rates",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.3, 0.6],
        help="on-window strike probabilities to sweep (with --burst)",
    )
    degrade.add_argument(
        "--wear-thresholds",
        type=float,
        nargs="+",
        default=[200.0, 50.0],
        help="strike-count escalation thresholds to sweep (with --burst); "
        "an intermittent-only row with no escalation is always included",
    )
    degrade.add_argument(
        "--burst-sites",
        type=int,
        default=6,
        help="number of seeded links the burst sweep stresses (with --burst)",
    )
    degrade.add_argument(
        "--invariant-checks",
        action="store_true",
        help="run the per-cycle invariant sanitizer during the campaign",
    )
    degrade.add_argument(
        "--json", action="store_true", help="emit the curve as JSON"
    )
    degrade.add_argument("--no-chart", action="store_true")

    campaign = sub.add_parser(
        "campaign",
        help="run (or resume) a durable, cache-aware campaign of variants",
        description=(
            "Run a campaign spec — a JSON object with either "
            "{'base': CONFIG, 'axes': {'dotted.path': [values, ...]}} "
            "(cartesian grid) or {'variants': [{'name': ..., 'config': "
            "CONFIG}, ...]} — under the supervised campaign service: "
            "watchdogged worker processes, exponential-backoff retries, an "
            "optional whole-campaign deadline, a durable journal and a "
            "content-addressed result cache (docs/CAMPAIGNS.md).  With "
            "--dir the campaign survives a supervisor crash: "
            "'repro campaign --resume DIR' re-enqueues only unfinished "
            "variants.  Exit status 1 if any variant failed."
        ),
    )
    campaign.add_argument(
        "spec",
        nargs="?",
        help="campaign spec JSON file (omit with --resume)",
    )
    campaign.add_argument(
        "--dir",
        metavar="DIR",
        help="campaign state directory: journal.jsonl, checkpoints/ and "
        "cache/ live here; makes the campaign resumable",
    )
    campaign.add_argument(
        "--resume",
        metavar="DIR",
        help="resume a crashed campaign from DIR/journal.jsonl (settings "
        "default to the values recorded in the journal header; flags "
        "override them)",
    )
    campaign.add_argument(
        "--processes", type=int, help="worker processes (default 1)"
    )
    campaign.add_argument(
        "--retries",
        type=int,
        help="extra attempts per failing variant (default 0)",
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        help="per-attempt wall-clock bound in seconds (SIGKILL + "
        "error='timeout' beyond it)",
    )
    campaign.add_argument(
        "--deadline",
        type=float,
        help="whole-campaign wall-clock bound in seconds; unfinished "
        "variants get partial rows with error='campaign_deadline'",
    )
    campaign.add_argument(
        "--grace",
        type=float,
        help="seconds in-flight workers get to finish after the deadline "
        "before being SIGKILLed (default 2)",
    )
    campaign.add_argument(
        "--checkpoint-interval",
        type=int,
        metavar="N",
        help="cycles between worker checkpoints (default 500; retries "
        "resume from the last good checkpoint)",
    )
    campaign.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed result cache (default: DIR/cache under "
        "--dir)",
    )
    campaign.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    campaign.add_argument(
        "--cache-verify",
        action="store_true",
        help="re-run cached variants and byte-compare against the stored "
        "envelope (mismatches are reported and the cache refreshed)",
    )
    campaign.add_argument(
        "--backoff-base",
        type=float,
        help="first retry delay in seconds (0 disables backoff; default "
        "0.05, doubling per attempt)",
    )
    campaign.add_argument(
        "--backoff-max",
        type=float,
        help="retry delay ceiling in seconds (default 2)",
    )
    campaign.add_argument(
        "--backoff-seed",
        type=int,
        help="seed for the deterministic retry jitter (default 0)",
    )
    campaign.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the pre-run lint pass over every variant",
    )
    campaign.add_argument(
        "--json",
        action="store_true",
        help="emit rows and service stats as JSON",
    )

    sweep = sub.add_parser("sweep", help="latency vs injection rate")
    _add_shape_flags(sweep)
    sweep.add_argument(
        "--routing",
        choices=["xy", "west_first", "fully_adaptive"],
        default="xy",
    )
    sweep.add_argument("--messages", type=int, default=600)
    sweep.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45],
    )
    sweep.add_argument(
        "--json", action="store_true", help="emit every point's result as JSON"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis import InvariantViolationError
    from repro.serialization import config_from_dict

    if (args.checkpoint_interval is None) != (args.checkpoint is None):
        print(
            "error: --checkpoint and --checkpoint-interval must be used "
            "together",
            file=sys.stderr,
        )
        return 2
    if args.resume:
        from repro.checkpoint import CheckpointError, load_checkpoint

        try:
            sim = load_checkpoint(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        config = sim.config
        print(
            f"resuming from {args.resume} at cycle {sim.resumed_from_cycle}",
            file=sys.stderr,
        )
    else:
        from repro.noc.simulator import Simulator

        try:
            config = config_from_dict(_platform_dict(args))
            # Network construction cross-checks fault specs against the
            # topology (e.g. 0:up on a 2D mesh) — also a usage error.
            sim = Simulator(config)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        result = sim.run()
    except InvariantViolationError as exc:
        print("simulation aborted: invariant violation", file=sys.stderr)
        for diag in exc.diagnostics:
            print(diag.format(), file=sys.stderr)
        flight = getattr(exc, "flight_record", None)
        if flight:
            print(
                f"(telemetry flight recorder: last {len(flight)} events)",
                file=sys.stderr,
            )
            for event in flight[-10:]:
                print(f"  {json.dumps(event, sort_keys=True)}", file=sys.stderr)
        return 1
    export_summary = None
    if args.telemetry and result.telemetry is not None:
        from repro.serialization import config_to_dict
        from repro.telemetry import write_ndjson

        export_summary = write_ndjson(
            result.telemetry, args.telemetry, config=config_to_dict(config)
        )
    if args.json:
        from repro.serialization import config_to_dict, envelope, result_to_dict

        print(
            json.dumps(
                envelope(
                    "run",
                    result_to_dict(result, include_config=False),
                    config=config_to_dict(config),
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(result.summary_lines())
    interesting = {
        name: count
        for name, count in sorted(result.counters.items())
        if count and not name.startswith("e_")
    }
    if interesting:
        print("\ncounters:")
        for name, count in interesting.items():
            print(f"  {name:<28} {count}")
    if export_summary is not None:
        print(
            f"\ntelemetry: {export_summary['events']} events, "
            f"{export_summary['samples']} samples in "
            f"{export_summary['series']} series -> {args.telemetry}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_dict, lint_paths
    from repro.analysis.rules import rule_catalogue

    if args.rules:
        print(rule_catalogue())
        return 0
    cdg = not args.no_cdg
    if args.paths:
        report = lint_paths(args.paths, cdg=cdg)
    else:
        report = lint_dict(_platform_dict(args), cdg=cdg, source="<flags>")
    if args.json:
        from repro.serialization import envelope

        config_dict = None if args.paths else _platform_dict(args)
        print(
            json.dumps(
                envelope("lint", report.to_dicts(), config=config_dict),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(report.format_text())
    if args.strict and report.warnings:
        return 1
    return report.exit_code


def _verify_entry_certified(entry: Dict[str, Any]) -> bool:
    """Whether every check in one ``certify_config`` entry passed."""
    if not entry["routing"]["certified"]:
        return False
    single = entry.get("single_link_kills")
    if single is not None and not single["certified"]:
        return False
    return all(s["certified"] for s in entry.get("multi_link_kills", []))


def _print_verify_entry(entry: Dict[str, Any]) -> None:
    platform = entry["platform"]
    routing = entry["routing"]
    faults = len(platform["permanent_faults"])
    degraded = f", {faults} permanent faults applied" if faults else ""
    if "shape" in platform:
        dims = "x".join(str(d) for d in platform["shape"])
    else:
        dims = f"{platform['width']}x{platform['height']}"
    print(
        f"{entry.get('name', '<config>')}: {dims} "
        f"{platform['topology']}, "
        f"{platform['routing']} routing, {platform['num_vcs']} VCs{degraded}"
    )

    def line(label: str, ok: bool, detail: str) -> None:
        print(f"  {label:<18} {'PASS' if ok else 'FAIL'}  {detail}")

    extra = (
        f" +{routing['extra_pairs']} best-effort" if routing["extra_pairs"] else ""
    )
    line(
        "connectivity",
        routing["connected"],
        f"{routing['delivered_pairs']}/{routing['expected_pairs']} expected "
        f"pairs{extra} (max route {routing['max_route_length']} hops)",
    )
    line(
        "livelock-freedom",
        routing["livelock_free"],
        f"progress metric: {routing['progress_metric']}",
    )
    line(
        "deadlock-freedom",
        routing["deadlock_free"],
        f"{routing['num_channels']} channels, "
        f"{routing['num_dependencies']} dependencies",
    )
    if not routing["connected"]:
        for pair in routing["missing_pairs"]:
            print(f"    unroutable: {pair}")
        for state in routing["stuck_states"]:
            print(f"    stuck: {state}")
    if not routing["livelock_free"]:
        for step in routing["livelock_witness"]:
            print(f"    livelock witness: {step}")
    if not routing["deadlock_free"]:
        for step in routing["witness"]:
            print(f"    deadlock witness: {step}")
    single = entry.get("single_link_kills")
    if single is not None:
        line(
            "single-link kills",
            single["certified"],
            f"{single['trials']} exhaustive trials, min delivered fraction "
            f"{single['min_delivered_fraction']:.3f}",
        )
        for failure in single["failures"]:
            print(f"    {failure}")
    for sweep in entry.get("multi_link_kills", []):
        line(
            f"{sweep['kills_per_trial']}-link kills",
            sweep["certified"],
            f"{sweep['trials']} sampled trials (seed {sweep['seed']}), min "
            f"delivered fraction {sweep['min_delivered_fraction']:.3f}",
        )
        for failure in sweep["failures"]:
            print(f"    {failure}")


def _cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.verify import certify_config
    from repro.serialization import config_from_dict

    targets: List[Any] = []
    if args.paths:
        files: List[Path] = []
        for raw in args.paths:
            path = Path(raw)
            files.extend(sorted(path.rglob("*.json")) if path.is_dir() else [path])
        for file in files:
            try:
                targets.append((str(file), json.loads(file.read_text())))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: {file}: {exc}", file=sys.stderr)
                return 2
        if not targets:
            print("error: no *.json config files found", file=sys.stderr)
            return 2
    else:
        targets.append(("<flags>", _platform_dict(args)))

    entries: List[Dict[str, Any]] = []
    for name, data in targets:
        try:
            config = config_from_dict(data)
            entries.append(
                certify_config(
                    config,
                    single_link_kills=args.single_link_kills,
                    multi_kills=tuple(args.multi_kill),
                    samples=args.samples,
                    seed=args.sweep_seed,
                    name=name,
                )
            )
        except (TypeError, ValueError) as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
    certified = all(_verify_entry_certified(e) for e in entries)
    if args.json:
        from repro.serialization import envelope

        config_dict = None if args.paths else _platform_dict(args)
        print(
            json.dumps(
                envelope("verify", entries, config=config_dict),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for i, entry in enumerate(entries):
            if i:
                print()
            _print_verify_entry(entry)
        passing = sum(_verify_entry_certified(e) for e in entries)
        if certified:
            print(f"\n{len(entries)} config(s): CERTIFIED")
        else:
            print(
                f"\n{passing} of {len(entries)} config(s) certified: "
                "NOT CERTIFIED"
            )
    return 0 if certified else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    warmup = args.messages // 5
    chart = not args.no_chart
    if number == "5":
        from repro.experiments.figure5 import run_figure5

        results = run_figure5(num_messages=args.messages, warmup=warmup)
        xs = [p.error_rate for p in results["hbh"]]
        series = {k.upper(): [p.avg_latency for p in v] for k, v in results.items()}
        _emit("Figure 5 — latency (cycles) vs error rate", xs, series, chart, log_x=True)
    elif number in ("6", "7"):
        from repro.experiments.figure6_7 import run_figure6_7

        results = run_figure6_7(num_messages=args.messages, warmup=warmup)
        xs = [p.error_rate for p in results["NR"]]
        if number == "6":
            series = {k: [p.avg_latency for p in v] for k, v in results.items()}
            _emit("Figure 6 — HBH latency (cycles)", xs, series, chart, log_x=True)
        else:
            series = {
                k: [p.energy_per_packet_nj for p in v] for k, v in results.items()
            }
            _emit("Figure 7 — HBH energy/message (nJ)", xs, series, chart, log_x=True)
    elif number in ("8", "9"):
        from repro.experiments.figure8_9 import run_figure8_9

        results = run_figure8_9()
        xs = [p.injection_rate for p in results["AD"]]
        if number == "8":
            series = {k: [p.tx_utilization for p in v] for k, v in results.items()}
            _emit("Figure 8 — transmission buffer utilization", xs, series, chart)
        else:
            series = {k: [p.retx_utilization for p in v] for k, v in results.items()}
            _emit("Figure 9 — retransmission buffer utilization", xs, series, chart)
    elif number == "10":
        from repro.experiments.deadlock_demo import main as deadlock_main

        deadlock_main()
    elif number == "13":
        from repro.experiments.figure13 import run_figure13

        results = run_figure13(num_messages=args.messages, warmup=warmup)
        xs = [p.error_rate for p in results["LINK-HBH"]]
        series = {
            k: [p.corrected_per_kmsg for p in v] for k, v in results.items()
        }
        _emit(
            "Figure 13(a) — corrected errors per 1,000 messages",
            xs,
            series,
            chart,
            log_x=True,
        )
        energy = {
            k: [p.energy_per_packet_nj for p in v] for k, v in results.items()
        }
        _emit("Figure 13(b) — energy per packet (nJ)", xs, energy, chart, log_x=True)
    return 0


def _emit(title, xs, series, chart, log_x=False) -> None:
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    print(render_comparison_table(["x"] + list(series), rows, title))
    if chart:
        print()
        print(render_series(title, xs, series, log_x=log_x))
    print()


def _cmd_table1() -> int:
    from repro.experiments.table1 import main as table1_main

    table1_main()
    return 0


def _cmd_degrade(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from repro.experiments.degradation import run_degradation

    if args.burst:
        return _cmd_degrade_burst(args)
    shape, link_latency = _parse_shape_args(args)
    if args.kill_pillars and (shape is None or len(shape) != 3):
        print(
            "error: --kill-pillars needs a 3-axis --shape (e.g. 4x4x4)",
            file=sys.stderr,
        )
        return 2
    try:
        points = run_degradation(
            width=args.width,
            height=args.height,
            max_kills=args.kills,
            injection_rate=args.rate,
            inject_cycles=args.inject_cycles,
            seed=args.seed,
            invariant_checks=args.invariant_checks,
            routing=RoutingAlgorithm(args.routing),
            shape=shape,
            link_latency=link_latency if link_latency is not None else 1,
            kill_pillars=args.kill_pillars,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        from repro.serialization import envelope

        campaign = {
            "width": args.width,
            "height": args.height,
            "max_kills": args.kills,
            "injection_rate": args.rate,
            "inject_cycles": args.inject_cycles,
            "seed": args.seed,
            "routing": args.routing,
        }
        if shape is not None:
            campaign["shape"] = list(shape)
            campaign["width"], campaign["height"] = shape[0], shape[1]
            campaign["kill_pillars"] = args.kill_pillars
        if link_latency is not None:
            campaign["link_latency"] = (
                link_latency
                if isinstance(link_latency, int)
                else list(link_latency)
            )
        print(
            json.dumps(
                envelope(
                    "degrade", [_dc.asdict(p) for p in points], config=campaign
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = [
        [
            p.kills,
            f"{p.delivery_rate:.4f}",
            f"{p.reachable_fraction:.4f}",
            f"{p.avg_latency:.2f}",
            f"{p.latency_inflation:.3f}",
            p.reconvergence_cycles,
            p.packets_lost,
        ]
        for p in points
    ]
    dims = (
        "x".join(str(d) for d in shape)
        if shape is not None
        else f"{args.width}x{args.height}"
    )
    unit = "dead pillars" if args.kill_pillars else "dead links"
    print(
        render_comparison_table(
            [
                unit,
                "delivery",
                "reachable",
                "latency",
                "inflation",
                "reconv (cyc)",
                "lost",
            ],
            rows,
            f"Graceful degradation — {dims} mesh, "
            f"{args.routing} routing (seed {args.seed})",
        )
    )
    if not args.no_chart:
        xs = [float(p.kills) for p in points]
        print()
        print(
            render_series(
                "delivery rate & latency inflation vs dead links",
                xs,
                {
                    "delivery": [p.delivery_rate for p in points],
                    "inflation": [p.latency_inflation for p in points],
                },
            )
        )
    return 0


def _cmd_degrade_burst(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from repro.experiments.degradation import run_burst_degradation

    wear_thresholds: List[Optional[float]] = [None]
    wear_thresholds.extend(args.wear_thresholds)
    shape, _ = _parse_shape_args(args)
    points = run_burst_degradation(
        width=args.width,
        height=args.height,
        shape=shape,
        burst_rates=args.burst_rates,
        wear_thresholds=wear_thresholds,
        num_sites=args.burst_sites,
        injection_rate=args.rate,
        inject_cycles=args.inject_cycles,
        seed=args.seed,
        invariant_checks=args.invariant_checks,
        routing=RoutingAlgorithm(args.routing),
    )
    if args.json:
        from repro.serialization import envelope

        campaign = {
            "width": args.width,
            "height": args.height,
            "burst_rates": list(args.burst_rates),
        }
        if shape is not None:
            campaign["shape"] = list(shape)
            campaign["width"], campaign["height"] = shape[0], shape[1]
        campaign |= {
            "wear_thresholds": wear_thresholds,
            "burst_sites": args.burst_sites,
            "injection_rate": args.rate,
            "inject_cycles": args.inject_cycles,
            "seed": args.seed,
            "routing": args.routing,
        }
        print(
            json.dumps(
                envelope(
                    "degrade_burst",
                    [_dc.asdict(p) for p in points],
                    config=campaign,
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    dims = (
        "x".join(str(d) for d in shape)
        if shape is not None
        else f"{args.width}x{args.height}"
    )
    rows = [
        [
            f"{p.burst_rate:.2f}",
            "-" if p.wear_threshold is None else f"{p.wear_threshold:g}",
            f"{p.delivery_rate:.4f}",
            f"{p.latency_inflation:.3f}",
            p.intermittent_strikes,
            p.escalations,
            p.packets_lost,
        ]
        for p in points
    ]
    print(
        render_comparison_table(
            [
                "burst rate",
                "wear thresh",
                "delivery",
                "inflation",
                "strikes",
                "escalated",
                "lost",
            ],
            rows,
            f"Burst/wear-out degradation — {dims} mesh, "
            f"{args.burst_sites} stressed links (seed {args.seed})",
        )
    )
    return 0


def _deep_merge(base: Dict[str, Any], override: Dict[str, Any]) -> Dict[str, Any]:
    """Recursively overlay ``override`` onto ``base`` (dicts merge,
    everything else replaces)."""
    out = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _campaign_variants(data: Dict[str, Any]) -> List[Any]:
    """Materialize a campaign spec's variant list (grid or explicit).

    Spec configs are partial: they overlay the default
    :class:`SimulationConfig`, so a spec only states what it varies.
    """
    from repro.campaign import grid
    from repro.serialization import config_from_dict, config_to_dict

    defaults = config_to_dict(SimulationConfig())
    if "variants" in data:
        return [
            (v["name"], config_from_dict(_deep_merge(defaults, v["config"])))
            for v in data["variants"]
        ]
    if "axes" in data:
        base = config_from_dict(_deep_merge(defaults, data.get("base", {})))
        return grid(data["axes"], base)
    raise ValueError("campaign spec needs an 'axes' or 'variants' key")


def _cmd_campaign(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import (
        CampaignLintError,
        campaign_row_to_dict,
        campaign_table,
        run_campaign,
    )
    from repro.service import JournalError, RetryPolicy, resume_campaign

    if bool(args.spec) == bool(args.resume):
        print(
            "error: give a campaign spec file or --resume DIR (not both)",
            file=sys.stderr,
        )
        return 2
    backoff = None
    if (
        args.backoff_base is not None
        or args.backoff_max is not None
        or args.backoff_seed is not None
    ):
        overrides: Dict[str, Any] = {}
        if args.backoff_base is not None:
            overrides["base"] = args.backoff_base
            if args.backoff_max is None:
                overrides["maximum"] = max(
                    args.backoff_base, RetryPolicy().maximum
                )
        if args.backoff_max is not None:
            overrides["maximum"] = args.backoff_max
        if args.backoff_seed is not None:
            overrides["seed"] = args.backoff_seed
        try:
            backoff = RetryPolicy(**overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        if args.resume:
            rows, stats = resume_campaign(
                os.path.join(args.resume, "journal.jsonl"),
                processes=args.processes,
                retries=args.retries,
                timeout=args.timeout,
                deadline=args.deadline,
                deadline_grace=args.grace,
                checkpoint_interval=args.checkpoint_interval,
                backoff=backoff,
                cache_dir=args.cache_dir,
                no_cache=args.no_cache,
                cache_verify=True if args.cache_verify else None,
            )
        else:
            try:
                with open(args.spec) as fh:
                    data = json.load(fh)
                variants = _campaign_variants(data)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                print(f"error: {args.spec}: {exc}", file=sys.stderr)
                return 2
            journal_path = checkpoint_dir = cache_dir = None
            if args.dir:
                os.makedirs(args.dir, exist_ok=True)
                journal_path = os.path.abspath(
                    os.path.join(args.dir, "journal.jsonl")
                )
                checkpoint_dir = os.path.abspath(
                    os.path.join(args.dir, "checkpoints")
                )
                cache_dir = os.path.abspath(os.path.join(args.dir, "cache"))
            if args.cache_dir:
                cache_dir = os.path.abspath(args.cache_dir)
            if args.no_cache:
                cache_dir = None
            processes = args.processes if args.processes is not None else 1
            retries = args.retries if args.retries is not None else 0
            grace = args.grace if args.grace is not None else 2.0
            interval = (
                args.checkpoint_interval
                if args.checkpoint_interval is not None
                else 500
            )
            meta: Dict[str, Any] = {
                "processes": processes,
                "retries": retries,
                "timeout": args.timeout,
                "deadline": args.deadline,
                "deadline_grace": grace,
                "checkpoint_dir": checkpoint_dir,
                "checkpoint_interval": interval,
                "cache_dir": cache_dir,
                "cache_verify": args.cache_verify,
            }
            if backoff is not None:
                meta["backoff"] = backoff.to_dict()
            rows, stats = run_campaign(
                variants,
                processes=processes,
                lint=not args.no_lint,
                retries=retries,
                timeout=args.timeout,
                deadline=args.deadline,
                deadline_grace=grace,
                checkpoint_dir=checkpoint_dir,
                checkpoint_interval=interval,
                backoff=backoff,
                journal_path=journal_path,
                journal_meta=meta,
                cache_dir=cache_dir,
                cache_verify=args.cache_verify,
                return_stats=True,
            )
    except CampaignLintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (JournalError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = sum(1 for r in rows if r.failed)
    if args.json:
        from repro.serialization import envelope

        print(
            json.dumps(
                envelope(
                    "campaign",
                    {
                        "rows": [campaign_row_to_dict(r) for r in rows],
                        "stats": stats,
                    },
                ),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(campaign_table(rows))
        summary = (
            f"\n{len(rows)} variant(s): {len(rows) - failed} ok, "
            f"{failed} failed"
        )
        if stats:
            summary += (
                f" — {stats.get('attempts', 0)} attempt(s), "
                f"{stats.get('retries', 0)} retried, "
                f"{stats.get('cache_hits', 0)} from cache, "
                f"{stats.get('wall_s', 0.0):.2f}s wall"
            )
        print(summary)
    return 1 if failed else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.noc.simulator import run_simulation

    shape, link_latency = _parse_shape_args(args)
    noc_kwargs: Dict[str, Any] = {}
    if shape is not None:
        noc_kwargs["shape"] = shape
        if len(shape) == 3:
            noc_kwargs["topology"] = "mesh3d"
    if link_latency is not None:
        noc_kwargs["link_latency"] = link_latency
        max_latency = (
            link_latency
            if isinstance(link_latency, int)
            else max(link_latency)
        )
        noc_kwargs["retx_buffer_depth"] = max(3, 2 * max_latency + 1)
    latencies = []
    points: List[Dict[str, Any]] = []
    for rate in args.rates:
        config = SimulationConfig(
            noc=NoCConfig(routing=RoutingAlgorithm(args.routing), **noc_kwargs),
            workload=WorkloadConfig(
                injection_rate=rate,
                num_messages=args.messages,
                warmup_messages=args.messages // 5,
                max_cycles=60_000,
            ),
        )
        result = run_simulation(config)
        latencies.append(result.avg_latency)
        if args.json:
            points.append(
                {"rate": rate, "result": result.to_dict(include_config=False)}
            )
        else:
            print(f"rate {rate:5.2f}: latency {result.avg_latency:8.2f} cycles")
    if args.json:
        from repro.serialization import envelope

        sweep_config = {
            "routing": args.routing,
            "messages": args.messages,
            "rates": list(args.rates),
        }
        if shape is not None:
            sweep_config["shape"] = list(shape)
        if link_latency is not None:
            sweep_config["link_latency"] = (
                link_latency
                if isinstance(link_latency, int)
                else list(link_latency)
            )
        print(
            json.dumps(
                envelope("sweep", points, config=sweep_config),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print()
    print(
        render_series(
            f"Latency vs injection rate ({args.routing})",
            list(args.rates),
            {"latency": latencies},
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "table1":
            return _cmd_table1()
        if args.command == "degrade":
            return _cmd_degrade(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
    except BrokenPipeError:
        # Output piped into `head`/`grep` that exited early; suppress the
        # traceback and keep the diagnostic exit code meaningful.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
