"""repro — a reproduction of "Exploring Fault-Tolerant Network-on-Chip
Architectures" (Park, Nicopoulos, Kim, Vijaykrishnan, Das — DSN 2006).

A cycle-accurate simulator of an 8x8 mesh of 3-stage pipelined
virtual-channel wormhole routers, together with the paper's fault-tolerance
mechanisms: flit-based hop-by-hop retransmission with barrel-shift
retransmission buffers, retransmission-buffer-based deadlock recovery with
probe-based detection, the Allocation Comparator (AC) unit for VA/SA logic
errors, and per-module soft-error handling.

Quickstart — the :mod:`repro.api` facade is the stable entry point::

    from repro import api

    result = api.run(api.load_config(width=4, height=4, messages=500))
    print(result.summary_lines())

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-figure reproductions.
"""

from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core import (
    AllocationComparator,
    DeadlockController,
    buffer_lower_bound,
    minimum_total_buffer,
    recovery_latency,
)
from repro.noc import (
    Flit,
    MeshTopology,
    Network,
    Packet,
    Router,
    SimulationResult,
    Simulator,
    TorusTopology,
)
from repro.analysis import (
    InvariantSanitizer,
    lint_config,
    verify_deadlock_freedom,
)
from repro.campaign import CampaignLintError, CampaignRow, grid, run_campaign
from repro.noc.simulator import run_simulation
from repro.power import AreaModel, EnergyModel
from repro.telemetry import TelemetryConfig, TelemetryReport
from repro import api
from repro.types import (
    Corruption,
    Direction,
    FaultSite,
    FlitType,
    LinkProtection,
    RoutingAlgorithm,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationComparator",
    "CampaignLintError",
    "CampaignRow",
    "AreaModel",
    "InvariantSanitizer",
    "Corruption",
    "DeadlockController",
    "Direction",
    "EnergyModel",
    "FaultConfig",
    "FaultSite",
    "Flit",
    "FlitType",
    "LinkProtection",
    "MeshTopology",
    "Network",
    "NoCConfig",
    "Packet",
    "Router",
    "RoutingAlgorithm",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TelemetryConfig",
    "TelemetryReport",
    "TorusTopology",
    "WorkloadConfig",
    "api",
    "buffer_lower_bound",
    "grid",
    "lint_config",
    "verify_deadlock_freedom",
    "minimum_total_buffer",
    "recovery_latency",
    "run_campaign",
    "run_simulation",
    "__version__",
]
