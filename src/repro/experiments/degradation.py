"""Graceful-degradation campaign: progressive random link kills.

The experiment behind ``repro degrade``: on a mesh running fault-aware
table routing (:class:`repro.noc.routing.FaultAwareRouting`), kill an
increasing number of randomly chosen unidirectional links and measure how
service degrades:

* **delivery rate** — packets delivered / packets injected (the NI refuses
  packets whose destination became unreachable; those count against the
  rate);
* **reachable-pair fraction** — the fraction of (src, dst) pairs the
  reconfigured routing tables can still serve;
* **latency inflation** — mean delivered-packet latency relative to the
  healthy (0-kill) network, capturing the detour cost of rerouting;
* **time to reconvergence** — at each level the *last* link dies mid-run;
  this is how many cycles it takes the network to finish every packet that
  was already in flight or queued when the topology changed (lower is
  better; the healthy level reports 0).

Each level ``k`` kills the first ``k`` links of one seed-shuffled ordering,
so level ``k`` is always level ``k-1`` plus one more dead link — a
progressive decay of a single unlucky chip rather than independent random
topologies per level.

:func:`run_burst_degradation` is the intermittent/wear-out companion
(``repro degrade --burst``): instead of clean kills it sweeps burst
*intensity* (the on-window strike probability) against wear *rate* (the
escalation threshold — lower thresholds wear out faster) over a fixed set
of seeded burst sites, reporting delivery, latency inflation and how many
sites escalated into hard deaths (docs/FAULTS.md).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import (
    FaultConfig,
    LatencySpec,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
    parse_link_latency,
    parse_shape,
)
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    WearOutConfig,
)
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.routing import FaultAwareRouting
from repro.noc.simulator import Simulator
from repro.noc.topology import MeshTopology
from repro.types import Coordinate, Direction, RoutingAlgorithm


@dataclass(frozen=True)
class DegradationPoint:
    """Measured service level with ``kills`` dead links."""

    kills: int
    packets_injected: int
    packets_delivered: int
    packets_lost: int
    delivery_rate: float
    reachable_fraction: float
    avg_latency: float
    latency_inflation: float
    reconvergence_cycles: int
    hit_cycle_limit: bool


def mesh_links(
    width: Optional[int] = None,
    height: Optional[int] = None,
    *,
    shape: Optional[Sequence[int]] = None,
) -> List[Tuple[int, Direction]]:
    """Every unidirectional inter-router link of a mesh (any dimension)."""
    topology = (
        MeshTopology(shape=tuple(shape))
        if shape is not None
        else MeshTopology(width, height)
    )
    return [
        (node, direction)
        for node in topology.nodes()
        for direction in topology.connected_directions(node)
        if direction is not Direction.LOCAL
    ]


def pillar_groups(shape: Sequence[int]) -> List[List[Tuple[int, Direction]]]:
    """The vertical (TSV) links of a 3D mesh, grouped by pillar.

    One group per ``(x, y)`` column, containing every UP and DOWN link at
    any layer of that column — killing a whole group models a full TSV
    pillar failure, the characteristic 3D-integration fault unit."""
    topology = MeshTopology(shape=tuple(shape))
    if topology.ndim != 3:
        raise ValueError("pillar kills need a 3-axis shape")
    w, h, d = topology.shape
    groups: List[List[Tuple[int, Direction]]] = []
    for y in range(h):
        for x in range(w):
            group = [
                (node, direction)
                for z in range(d)
                for node in (topology.node_at(Coordinate(x, y, z)),)
                for direction in (Direction.UP, Direction.DOWN)
                if direction in topology.connected_directions(node)
            ]
            groups.append(group)
    return groups


def _schedule_for_level(
    kill_order: List[List[Tuple[int, Direction]]], kills: int, late_cycle: int
) -> PermanentFaultSchedule:
    """Levels kill a prefix of ``kill_order``; the last death is mid-run.

    Each entry is a *group* of links that die together (a single link in
    the classic campaign, a whole TSV pillar under ``kill_pillars``)."""
    faults = [
        PermanentFault("link", node, direction)
        for group in kill_order[: max(kills - 1, 0)]
        for node, direction in group
    ]
    if kills:
        faults.extend(
            PermanentFault("link", node, direction, cycle=late_cycle)
            for node, direction in kill_order[kills - 1]
        )
    return PermanentFaultSchedule.of(*faults)


def _run_level(
    config: SimulationConfig,
    inject_cycles: int,
    late_cycle: Optional[int],
    drain_cycles: int,
) -> Tuple[Simulator, int, bool]:
    """Drive one level: inject, then drain every outstanding packet.

    Returns the simulator (for stats and the reconfigured routing
    function), the reconvergence time, and whether the drain timed out.
    """
    sim = Simulator(config)
    network = sim.network
    network.stats.start_measurement()
    injected_at_kill: Optional[int] = None
    reconverged_at: Optional[int] = None
    deadline = inject_cycles + drain_cycles
    hit_limit = False
    while True:
        cycle = network.cycle
        if cycle == late_cycle:
            injected_at_kill = network.stats.packets_injected
        if cycle < inject_cycles:
            sim._generate_traffic(cycle)
        elif network.completed >= network.stats.packets_injected:
            break
        elif cycle >= deadline:
            hit_limit = True
            break
        network.step()
        if sim.sanitizer is not None:
            sim.sanitizer.check()
        if (
            reconverged_at is None
            and injected_at_kill is not None
            and network.completed >= injected_at_kill
        ):
            # Everything that predated the mid-run kill has now reached a
            # final outcome: the disruption is fully absorbed.
            reconverged_at = network.cycle
    if late_cycle is None or injected_at_kill is None or reconverged_at is None:
        reconvergence = drain_cycles if (hit_limit and late_cycle is not None) else 0
    else:
        reconvergence = max(reconverged_at - late_cycle, 0)
    return sim, reconvergence, hit_limit


def run_degradation(
    width: int = 8,
    height: int = 8,
    max_kills: int = 8,
    injection_rate: float = 0.1,
    inject_cycles: int = 1500,
    drain_cycles: int = 20_000,
    seed: int = 17,
    invariant_checks: bool = False,
    routing: RoutingAlgorithm = RoutingAlgorithm.FT_TABLE,
    shape: Optional[Sequence[int]] = None,
    link_latency: LatencySpec = 1,
    kill_pillars: bool = False,
) -> List[DegradationPoint]:
    """The full campaign: one :class:`DegradationPoint` per kill level.

    ``routing`` selects the algorithm under test (the resilience-artifact
    matrix compares them); non-fault-aware algorithms like ``west_first``
    cannot reroute — their curves show what the faults cost without
    reconfiguration, and ``reachable_fraction`` reports 1.0 since no
    tables exist to consult.

    ``shape`` generalizes the platform beyond ``width x height`` (pass
    e.g. ``(4, 4, 4)`` or ``"4x4x4"`` for a 3D stack); ``link_latency``
    slows chosen axes (``(1, 1, 2)`` models 2-cycle TSVs — the
    retransmission depth is deepened automatically to keep the HBH NACK
    window sound).  ``kill_pillars`` switches the kill unit from single
    links to whole TSV pillars: each level severs every vertical link of
    one more ``(x, y)`` column (3D shapes only).
    """
    if max_kills < 0:
        raise ValueError("max_kills must be non-negative")
    resolved = parse_shape(shape) if shape is not None else (width, height)
    latency = parse_link_latency(link_latency)
    max_latency = latency if isinstance(latency, int) else max(latency)
    if kill_pillars:
        kill_order = pillar_groups(resolved)
        unit = "pillars"
    else:
        kill_order = [[link] for link in mesh_links(shape=resolved)]
        unit = "links"
    random.Random(seed).shuffle(kill_order)
    if max_kills > len(kill_order):
        raise ValueError(
            f"cannot kill {max_kills} {unit}; the mesh only has "
            f"{len(kill_order)}"
        )
    late_cycle = inject_cycles // 2
    points: List[DegradationPoint] = []
    healthy_latency: Optional[float] = None
    for kills in range(max_kills + 1):
        schedule = _schedule_for_level(kill_order, kills, late_cycle)
        config = SimulationConfig(
            noc=NoCConfig(
                shape=resolved,
                topology="mesh" if len(resolved) == 2 else "mesh3d",
                routing=routing,
                link_latency=latency,
                retx_buffer_depth=max(3, 2 * max_latency + 1),
            ),
            faults=dataclasses.replace(
                FaultConfig.fault_free(), permanent=schedule
            ),
            workload=WorkloadConfig(
                injection_rate=injection_rate,
                num_messages=1,  # unused: the level loop drives cycles itself
                max_cycles=inject_cycles + drain_cycles,
                warmup_messages=0,
                seed=seed,
            ),
            invariant_checks=invariant_checks,
        )
        sim, reconvergence, hit_limit = _run_level(
            config, inject_cycles, late_cycle if kills else None, drain_cycles
        )
        network = sim.network
        stats = network.stats
        injected = stats.packets_injected
        avg_latency = stats.latency.mean
        if healthy_latency is None:
            healthy_latency = avg_latency
        routing_fn = network.routing_fn
        reachable = (
            routing_fn.reachable_fraction()
            if isinstance(routing_fn, FaultAwareRouting)
            else 1.0
        )
        points.append(
            DegradationPoint(
                kills=kills,
                packets_injected=injected,
                packets_delivered=network.delivered,
                packets_lost=network.lost,
                delivery_rate=(network.delivered / injected) if injected else 1.0,
                reachable_fraction=reachable,
                avg_latency=avg_latency,
                latency_inflation=(
                    avg_latency / healthy_latency if healthy_latency else 1.0
                ),
                reconvergence_cycles=reconvergence,
                hit_cycle_limit=hit_limit,
            )
        )
    return points


@dataclass(frozen=True)
class BurstDegradationPoint:
    """Measured service level for one (burst intensity, wear rate) cell."""

    burst_rate: float
    wear_threshold: Optional[float]
    packets_injected: int
    packets_delivered: int
    packets_lost: int
    delivery_rate: float
    avg_latency: float
    latency_inflation: float
    intermittent_strikes: int
    bursts_started: int
    escalations: int
    hit_cycle_limit: bool


def burst_sites(
    width: Optional[int] = None,
    height: Optional[int] = None,
    num_sites: int = 6,
    seed: int = 17,
    *,
    shape: Optional[Sequence[int]] = None,
) -> List[Tuple[int, Direction]]:
    """The seeded set of links a burst sweep stresses (fixed across cells
    so the sweep varies intensity, not geography)."""
    links = mesh_links(width, height, shape=shape)
    if num_sites > len(links):
        raise ValueError(
            f"cannot stress {num_sites} sites; the mesh only has {len(links)}"
        )
    random.Random(seed).shuffle(links)
    return links[:num_sites]


def run_burst_degradation(
    width: int = 8,
    height: int = 8,
    burst_rates: Sequence[float] = (0.0, 0.1, 0.3, 0.6),
    wear_thresholds: Sequence[Optional[float]] = (None, 200.0, 50.0),
    num_sites: int = 6,
    mean_on: float = 40.0,
    mean_off: float = 160.0,
    injection_rate: float = 0.1,
    inject_cycles: int = 1500,
    drain_cycles: int = 20_000,
    seed: int = 17,
    invariant_checks: bool = False,
    routing: RoutingAlgorithm = RoutingAlgorithm.FT_TABLE,
    shape: Optional[Sequence[int]] = None,
) -> List[BurstDegradationPoint]:
    """Sweep burst intensity x wear rate over a fixed set of stressed links.

    ``burst_rates`` are the on-window strike probabilities; each
    ``wear_thresholds`` entry is a strike-count escalation threshold
    (``None`` = intermittent only, sites never escalate).  The
    ``burst_rate == 0`` column is the healthy baseline the latency
    inflation normalizes against.
    """
    resolved = parse_shape(shape) if shape is not None else (width, height)
    sites = burst_sites(num_sites=num_sites, seed=seed, shape=resolved)
    points: List[BurstDegradationPoint] = []
    healthy_latency: Optional[float] = None
    for threshold in wear_thresholds:
        for rate in burst_rates:
            schedule = IntermittentFaultSchedule.of(
                *(
                    IntermittentFault(node, direction, rate, mean_on, mean_off)
                    for node, direction in sites
                )
            )
            wear = (
                WearOutConfig(threshold=threshold)
                if threshold is not None
                else None
            )
            config = SimulationConfig(
                noc=NoCConfig(
                    shape=resolved,
                    topology="mesh" if len(resolved) == 2 else "mesh3d",
                    routing=routing,
                ),
                faults=dataclasses.replace(
                    FaultConfig.fault_free(seed=seed),
                    intermittent=schedule,
                    wear_out=wear,
                ),
                workload=WorkloadConfig(
                    injection_rate=injection_rate,
                    num_messages=1,  # the level loop drives cycles itself
                    max_cycles=inject_cycles + drain_cycles,
                    warmup_messages=0,
                    seed=seed,
                ),
                invariant_checks=invariant_checks,
            )
            sim, _, hit_limit = _run_level(
                config, inject_cycles, None, drain_cycles
            )
            network = sim.network
            stats = network.stats
            injected = stats.packets_injected
            latency = stats.latency.mean
            if healthy_latency is None:
                healthy_latency = latency
            counters = stats.counters
            points.append(
                BurstDegradationPoint(
                    burst_rate=rate,
                    wear_threshold=threshold,
                    packets_injected=injected,
                    packets_delivered=network.delivered,
                    packets_lost=network.lost,
                    delivery_rate=(
                        (network.delivered / injected) if injected else 1.0
                    ),
                    avg_latency=latency,
                    latency_inflation=(
                        latency / healthy_latency if healthy_latency else 1.0
                    ),
                    intermittent_strikes=counters.get("intermittent_strikes", 0),
                    bursts_started=counters.get("intermittent_bursts_started", 0),
                    escalations=counters.get("wear_out_escalations", 0),
                    hit_cycle_limit=hit_limit,
                )
            )
    return points
