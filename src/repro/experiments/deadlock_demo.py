"""Figures 10 and 11: scripted deadlock scenarios broken by the recovery
scheme.

``run_deadlock_demo`` builds the canonical cyclic deadlock: four source-
routed packets on a 2x2 mesh with one virtual channel, each packet longer
than a VC buffer so each wormhole holds one channel of the cycle while its
head waits for the next.  Without recovery the configuration is a true
deadlock (nothing is ever delivered); with the probe-based detection and
retransmission-buffer recovery every packet is delivered.

``run_worst_case_demo`` reproduces the Figure 11 situation: partially
transferred packets block other packets already in the router buffers, so
recovery must *absorb* the partial packets; the Eq. 1 bound
(``B2 > M x N``) is what guarantees this absorption fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import NoCConfig, SimulationConfig
from repro.core.deadlock import buffer_lower_bound
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Direction, RoutingAlgorithm

E, N, S, W = Direction.EAST, Direction.NORTH, Direction.SOUTH, Direction.WEST

#: The 2x2 cyclic configuration: (source node, route, destination node).
#: Node ids: (x, y) -> y*2 + x, so 0=(0,0), 1=(1,0), 2=(0,1), 3=(1,1).
CYCLE_SPECS: Tuple[Tuple[int, List[Direction], int], ...] = (
    (0, [E, N], 3),  # around the square clockwise...
    (1, [N, W], 2),
    (3, [W, S], 0),
    (2, [S, E], 1),
)


@dataclass
class DeadlockOutcome:
    recovery_enabled: bool
    delivered: int
    expected: int
    cycles_to_resolution: Optional[int]
    deadlocks_detected: int
    probes_sent: int
    recovery_forwards: int
    satisfies_eq1: bool

    @property
    def deadlock_broken(self) -> bool:
        return self.delivered == self.expected


def _build_network(
    recovery: bool,
    flits_per_packet: int,
    vc_buffer_depth: int,
    retx_depth: int = 3,
    threshold: int = 10,
) -> Network:
    noc = NoCConfig(
        shape=(2, 2),
        num_vcs=1,
        vc_buffer_depth=vc_buffer_depth,
        flits_per_packet=flits_per_packet,
        retx_buffer_depth=retx_depth,
        routing=RoutingAlgorithm.SOURCE,
        deadlock_recovery_enabled=recovery,
        deadlock_threshold=threshold,
    )
    return Network(SimulationConfig(noc=noc))


def run_deadlock_demo(
    recovery: bool = True,
    flits_per_packet: int = 6,
    vc_buffer_depth: int = 4,
    max_cycles: int = 3000,
) -> DeadlockOutcome:
    """The Figure 10 scenario: a 4-node cyclic wormhole deadlock."""
    net = _build_network(recovery, flits_per_packet, vc_buffer_depth)
    for pid, (src, route, dst) in enumerate(CYCLE_SPECS):
        packet = Packet(
            packet_id=pid,
            src=src,
            dst=dst,
            num_flits=flits_per_packet,
            injection_cycle=0,
            source_route=list(route),
        )
        net.interfaces[src].enqueue(packet)

    resolution = None
    for _ in range(max_cycles):
        net.step()
        if net.delivered == len(CYCLE_SPECS):
            resolution = net.cycle
            break
    net.finalize_stats()
    return DeadlockOutcome(
        recovery_enabled=recovery,
        delivered=net.delivered,
        expected=len(CYCLE_SPECS),
        cycles_to_resolution=resolution,
        deadlocks_detected=net.stats.counter("deadlocks_detected"),
        probes_sent=net.stats.counter("probes_sent"),
        recovery_forwards=net.stats.counter("recovery_forwards"),
        satisfies_eq1=buffer_lower_bound(
            flits_per_packet,
            [vc_buffer_depth] * len(CYCLE_SPECS),
            [3] * len(CYCLE_SPECS),
        ),
    )


def run_worst_case_demo(
    recovery: bool = True,
    max_cycles: int = 4000,
) -> DeadlockOutcome:
    """The Figure 11 situation: the deadlock forms while *more* packets are
    partially transferred behind it ("partially transferred messages prevent
    other messages from entering the transmission buffers").

    Recovery has to resolve the cycle while follower packets press into the
    same buffers — and must not admit them mid-recovery (the no-new-packets
    rule).  The Eq. 1 arithmetic of the paper's Figure 11 example
    (``T=6, R=3, M=4, n=4 -> B2 = 36 > 32``) is checked directly by the
    deadlock-theorem tests; this scenario checks the behavioural side.
    """
    flits_per_packet = 6
    vc_buffer_depth = 4
    net = _build_network(recovery, flits_per_packet, vc_buffer_depth)
    # Two packets per node around the cycle: the first four establish the
    # deadlock, the second four are the partially transferred followers.
    pid = 0
    for wave in range(2):
        for src, route, dst in CYCLE_SPECS:
            packet = Packet(
                packet_id=pid,
                src=src,
                dst=dst,
                num_flits=flits_per_packet,
                injection_cycle=0,
                source_route=list(route),
            )
            net.interfaces[src].enqueue(packet)
            pid += 1

    expected = pid
    resolution = None
    for _ in range(max_cycles):
        net.step()
        if net.delivered == expected:
            resolution = net.cycle
            break
    net.finalize_stats()
    return DeadlockOutcome(
        recovery_enabled=recovery,
        delivered=net.delivered,
        expected=expected,
        cycles_to_resolution=resolution,
        deadlocks_detected=net.stats.counter("deadlocks_detected"),
        probes_sent=net.stats.counter("probes_sent"),
        recovery_forwards=net.stats.counter("recovery_forwards"),
        satisfies_eq1=buffer_lower_bound(
            flits_per_packet,
            [vc_buffer_depth] * len(CYCLE_SPECS),
            [3] * len(CYCLE_SPECS),
        ),
    )


def main() -> None:
    for name, runner in (
        ("Figure 10 (cyclic deadlock)", run_deadlock_demo),
        ("Figure 11 (worst case: partial packets)", run_worst_case_demo),
    ):
        print(name)
        without = runner(recovery=False, max_cycles=800)
        with_rec = runner(recovery=True)
        print(
            f"  without recovery: delivered {without.delivered}/{without.expected}"
            f" (deadlocked: {not without.deadlock_broken})"
        )
        print(
            f"  with recovery:    delivered {with_rec.delivered}/{with_rec.expected}"
            f" in {with_rec.cycles_to_resolution} cycles"
            f" ({with_rec.deadlocks_detected} detections,"
            f" {with_rec.probes_sent} probes,"
            f" {with_rec.recovery_forwards} flits absorbed;"
            f" Eq.1 satisfied: {with_rec.satisfies_eq1})"
        )
        print()


if __name__ == "__main__":
    main()
