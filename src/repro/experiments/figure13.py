"""Figure 13: impact of the soft-error correcting schemes.

Three error situations are simulated *independently* (Section 4.3): link
errors handled by HBH retransmission (LINK-HBH), routing-unit logic errors
(RT-Logic) and switch-allocator logic errors (SA-Logic).  For each, the
error rate is swept over 1e-5 .. 1e-2 and we measure

* (a) the number of errors **corrected** by the proposed measures, and
* (b) the energy per packet.

Paper claims to reproduce (Figure 13): RT errors are far fewer than SA
errors ("routing errors occur only in header flits" while "the SA operates
on every flit and many flits undergo multiple arbitrations"); link errors
fall between; link errors induce the most energy overhead (retransmissions
move flits over links again) yet the overhead remains minimal.

Because our message counts are scaled down from the paper's 300,000, the
counts are also reported per 1,000 ejected messages so runs of different
lengths are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import FaultConfig, SimulationConfig
from repro.experiments.common import (
    FIG13_ERROR_RATES,
    PAPER_INJECTION_RATE,
    format_series,
    paper_noc,
    workload,
)
from repro.noc.simulator import run_simulation
from repro.types import FaultSite

#: The figure's three series: legend label -> (fault site, corrected-counter).
SCENARIOS = (
    ("LINK-HBH", FaultSite.LINK, "link_errors_corrected"),
    ("RT-Logic", FaultSite.ROUTING, "rt_errors_corrected"),
    ("SA-Logic", FaultSite.SW_ALLOC, "sa_errors_corrected"),
)


@dataclass
class ErrorPoint:
    error_rate: float
    scenario: str
    errors_injected: int
    errors_corrected: int
    corrected_per_kmsg: float
    energy_per_packet_nj: float
    avg_latency: float
    packets_lost: int


def run_figure13(
    error_rates: Sequence[float] = FIG13_ERROR_RATES,
    num_messages: int = 1500,
    warmup: int = 300,
    injection_rate: float = PAPER_INJECTION_RATE,
    seed: int = 17,
) -> Dict[str, List[ErrorPoint]]:
    results: Dict[str, List[ErrorPoint]] = {}
    for label, site, counter in SCENARIOS:
        series: List[ErrorPoint] = []
        for rate in error_rates:
            if site is FaultSite.LINK:
                faults = FaultConfig.link_only(rate, multi_bit_fraction=1.0, seed=seed)
            else:
                faults = FaultConfig.single_site(site, rate, seed=seed)
            config = SimulationConfig(
                noc=paper_noc(),
                faults=faults,
                workload=workload(injection_rate, num_messages, warmup, seed=seed),
            )
            sim_result = run_simulation(config)
            corrected = sim_result.counter(counter)
            ejected = max(1, sim_result.packets_delivered)
            series.append(
                ErrorPoint(
                    error_rate=rate,
                    scenario=label,
                    errors_injected=0,  # filled below from the fault log
                    errors_corrected=corrected,
                    corrected_per_kmsg=1000.0 * corrected / ejected,
                    energy_per_packet_nj=sim_result.energy_per_packet_nj,
                    avg_latency=sim_result.avg_latency,
                    packets_lost=sim_result.packets_lost,
                )
            )
        results[label] = series
    return results


def main() -> None:
    results = run_figure13()
    rates = [p.error_rate for p in next(iter(results.values()))]
    print(
        format_series(
            "Figure 13(a) — Corrected errors per 1,000 messages vs. error rate",
            "error rate",
            rates,
            {
                label: [p.corrected_per_kmsg for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.1f}",
        )
    )
    print()
    print(
        format_series(
            "Figure 13(b) — Energy per packet (nJ) vs. error rate",
            "error rate",
            rates,
            {
                label: [p.energy_per_packet_nj for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.4f}",
        )
    )


if __name__ == "__main__":
    main()
