"""Figures 6 and 7: the HBH scheme under NR / BC / TN traffic.

Figure 6 plots average latency and Figure 7 energy per message against the
link error rate (1e-5 .. 1e-1) at injection 0.25 flits/node/cycle.  Paper
claim: both metrics remain "almost constant even up to 10% error rate",
because a retransmission costs only 3 cycles and moves flits over a single
hop.  One sweep produces both figures, so they share a runner.

These runs use ``multi_bit_fraction=1.0``: every injected link error defeats
the SEC stage and forces a retransmission — the *worst case* for the HBH
scheme, making the flatness claim as strong as possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import FaultConfig, SimulationConfig
from repro.experiments.common import (
    ERROR_RATES,
    PAPER_INJECTION_RATE,
    format_series,
    paper_noc,
    workload,
)
from repro.noc.simulator import run_simulation

#: The paper's traffic patterns, by their figure-legend names.
PATTERNS = (("NR", "uniform"), ("BC", "bit_complement"), ("TN", "tornado"))


@dataclass
class TrafficPoint:
    error_rate: float
    pattern: str
    avg_latency: float
    energy_per_packet_nj: float
    retransmission_rounds: int


def run_figure6_7(
    error_rates: Sequence[float] = ERROR_RATES,
    num_messages: int = 1500,
    warmup: int = 300,
    injection_rate: float = PAPER_INJECTION_RATE,
    seed: int = 11,
) -> Dict[str, List[TrafficPoint]]:
    """Run the shared Figure 6/7 sweep; one series per traffic pattern."""
    results: Dict[str, List[TrafficPoint]] = {}
    for label, pattern in PATTERNS:
        series: List[TrafficPoint] = []
        for rate in error_rates:
            config = SimulationConfig(
                noc=paper_noc(),
                faults=FaultConfig.link_only(rate, multi_bit_fraction=1.0, seed=seed),
                workload=workload(
                    injection_rate, num_messages, warmup, pattern=pattern, seed=seed
                ),
            )
            result = run_simulation(config)
            series.append(
                TrafficPoint(
                    error_rate=rate,
                    pattern=label,
                    avg_latency=result.avg_latency,
                    energy_per_packet_nj=result.energy_per_packet_nj,
                    retransmission_rounds=result.counter("retransmission_rounds"),
                )
            )
        results[label] = series
    return results


def main() -> None:
    results = run_figure6_7()
    rates = [p.error_rate for p in next(iter(results.values()))]
    print(
        format_series(
            "Figure 6 — HBH latency vs. error rate (inj. 0.25 flits/node/cycle)",
            "error rate",
            rates,
            {label: [p.avg_latency for p in pts] for label, pts in results.items()},
        )
    )
    print()
    print(
        format_series(
            "Figure 7 — HBH energy per message (nJ) vs. error rate",
            "error rate",
            rates,
            {
                label: [p.energy_per_packet_nj for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.4f}",
        )
    )


if __name__ == "__main__":
    main()
