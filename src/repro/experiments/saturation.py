"""Latency-vs-load characterization (the context behind Figures 8/9).

Not itself a paper figure, but the standard NoC curve the paper's
injection-rate axis lives on: average latency versus offered load for the
deterministic (DT/XY) and adaptive (AD/west-first) routing algorithms, and
the measured saturation point of each.  The ablation benches use it to
quantify how the fault-tolerance machinery shifts (or does not shift) the
saturation throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import run_simulation
from repro.types import RoutingAlgorithm

DEFAULT_RATES = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50)


@dataclass
class LoadPoint:
    injection_rate: float
    avg_latency: float
    throughput: float
    delivered: int
    hit_cycle_limit: bool


@dataclass
class SaturationCurve:
    algorithm: str
    points: List[LoadPoint]

    def saturation_rate(self, factor: float = 3.0) -> Optional[float]:
        """First offered load where latency exceeds ``factor`` x the
        zero-load latency (a standard saturation criterion), or None if the
        sweep never saturates."""
        if not self.points:
            return None
        base = self.points[0].avg_latency
        for point in self.points:
            if point.avg_latency > factor * base or point.hit_cycle_limit:
                return point.injection_rate
        return None

    def peak_throughput(self) -> float:
        return max(p.throughput for p in self.points)


def run_saturation(
    rates: Sequence[float] = DEFAULT_RATES,
    algorithms: Sequence[RoutingAlgorithm] = (
        RoutingAlgorithm.XY,
        RoutingAlgorithm.WEST_FIRST,
    ),
    num_messages: int = 600,
    noc_overrides: Optional[dict] = None,
    fault_config: Optional[FaultConfig] = None,
    seed: int = 23,
) -> Dict[str, SaturationCurve]:
    """Sweep offered load for each routing algorithm."""
    curves: Dict[str, SaturationCurve] = {}
    for algorithm in algorithms:
        overrides = dict(noc_overrides or {})
        overrides["routing"] = algorithm
        points: List[LoadPoint] = []
        for rate in rates:
            config = SimulationConfig(
                noc=NoCConfig(**overrides),
                faults=fault_config or FaultConfig.fault_free(seed=seed),
                workload=WorkloadConfig(
                    injection_rate=rate,
                    num_messages=num_messages,
                    warmup_messages=num_messages // 5,
                    max_cycles=40_000,
                    seed=seed,
                ),
            )
            result = run_simulation(config)
            points.append(
                LoadPoint(
                    injection_rate=rate,
                    avg_latency=result.avg_latency,
                    throughput=result.throughput_flits_per_node_cycle,
                    delivered=result.packets_delivered,
                    hit_cycle_limit=result.hit_cycle_limit,
                )
            )
        curves[algorithm.value] = SaturationCurve(algorithm.value, points)
    return curves


def main() -> None:
    curves = run_saturation()
    for name, curve in curves.items():
        print(f"{name}:")
        for p in curve.points:
            flag = "  (saturated)" if p.hit_cycle_limit else ""
            print(
                f"  rate {p.injection_rate:5.2f}: latency {p.avg_latency:8.2f}"
                f"  throughput {p.throughput:.3f}{flag}"
            )
        sat = curve.saturation_rate()
        print(f"  -> saturation at ~{sat if sat is not None else '>max'} "
              f"flits/node/cycle, peak throughput {curve.peak_throughput():.3f}")
        print()


if __name__ == "__main__":
    main()
