"""Experiment harness: one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured rows and a
``main()`` that prints the same series the paper plots.  The benchmarks in
``benchmarks/`` call the ``run_*`` functions; ``EXPERIMENTS.md`` records the
measured outputs against the paper's claims.

Scaling: the paper simulates 300,000 ejected messages per point; a pure-
Python simulator cannot afford that per sweep point, so every function takes
``num_messages`` / ``warmup`` parameters with defaults small enough for
interactive use.  Curve shapes converge long before the paper's counts at
these injection rates.
"""

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6_7 import run_figure6_7
from repro.experiments.figure8_9 import run_figure8_9
from repro.experiments.figure13 import run_figure13
from repro.experiments.saturation import run_saturation
from repro.experiments.table1 import run_table1
from repro.experiments.deadlock_demo import run_deadlock_demo, run_worst_case_demo

__all__ = [
    "run_deadlock_demo",
    "run_figure13",
    "run_figure5",
    "run_figure6_7",
    "run_figure8_9",
    "run_saturation",
    "run_table1",
    "run_worst_case_demo",
]
