"""Figure 5: latency of HBH vs E2E vs FEC as the link error rate grows.

Paper setup: 8x8 mesh, injection 0.25 flits/node/cycle, normal-random
traffic, error rates 1e-5 .. 1e-1.  Paper claim: "E2E schemes suffer from
prohibitive latency penalties as error rates increase" while the HBH scheme
stays essentially flat; FEC cannot retransmit, so its latency also stays
low but it delivers corrupted/lost packets instead (which we report in the
extra columns — the figure's latency axis alone understates FEC's failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import FaultConfig, SimulationConfig
from repro.experiments.common import (
    ERROR_RATES,
    PAPER_INJECTION_RATE,
    format_series,
    paper_noc,
    workload,
)
from repro.noc.simulator import run_simulation
from repro.types import LinkProtection

SCHEMES = (LinkProtection.HBH, LinkProtection.E2E, LinkProtection.FEC)


@dataclass
class SchemePoint:
    error_rate: float
    scheme: str
    avg_latency: float
    packets_lost: int
    packets_delivered_corrupt: int
    retransmissions: int


def run_figure5(
    error_rates: Sequence[float] = ERROR_RATES,
    num_messages: int = 1500,
    warmup: int = 300,
    injection_rate: float = PAPER_INJECTION_RATE,
    multi_bit_fraction: float = 0.2,
    seed: int = 7,
) -> Dict[str, List[SchemePoint]]:
    """Run the Figure 5 sweep; returns one latency series per scheme."""
    results: Dict[str, List[SchemePoint]] = {s.value: [] for s in SCHEMES}
    for scheme in SCHEMES:
        for rate in error_rates:
            config = SimulationConfig(
                noc=paper_noc(link_protection=scheme),
                faults=FaultConfig.link_only(
                    rate, multi_bit_fraction=multi_bit_fraction, seed=seed
                ),
                workload=workload(injection_rate, num_messages, warmup, seed=seed),
            )
            result = run_simulation(config)
            retx = result.counter("retransmission_rounds") + result.counter(
                "e2e_retransmissions"
            )
            results[scheme.value].append(
                SchemePoint(
                    error_rate=rate,
                    scheme=scheme.value,
                    avg_latency=result.avg_latency,
                    packets_lost=result.packets_lost,
                    packets_delivered_corrupt=result.counter(
                        "packets_delivered_corrupt"
                    ),
                    retransmissions=retx,
                )
            )
    return results


def main() -> None:
    results = run_figure5()
    rates = [p.error_rate for p in results["hbh"]]
    print(
        format_series(
            "Figure 5 — Latency vs. error rate (inj. 0.25 flits/node/cycle)",
            "error rate",
            rates,
            {
                name.upper(): [p.avg_latency for p in points]
                for name, points in results.items()
            },
        )
    )
    print()
    print(
        format_series(
            "FEC/E2E integrity side-channel (packets lost + delivered corrupt)",
            "error rate",
            rates,
            {
                name.upper(): [
                    float(p.packets_lost + p.packets_delivered_corrupt)
                    for p in points
                ]
                for name, points in results.items()
            },
            fmt="{:.0f}",
        )
    )


if __name__ == "__main__":
    main()
