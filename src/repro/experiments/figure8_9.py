"""Figures 8 and 9: transmission vs retransmission buffer utilization.

The paper plots, against injection rate 0.1 .. 1.0, the time-averaged
utilization of (8) the normal transmission buffers (input VC FIFOs) and (9)
the HBH retransmission buffers, for the adaptive (AD, west-first) and
deterministic (DT, XY) routing algorithms.  The claims these figures carry
(Section 3.2):

* transmission-buffer utilization climbs steeply toward saturation;
* retransmission buffers are "mostly underutilized", and their utilization
  does **not** track the transmission buffers' — under heavy blocking there
  are fewer flit transmissions, so the replay windows sit idle.  This
  observation is what justifies reusing them for deadlock recovery.

These are fixed-duration open-loop runs (the metric is a time average, not
a per-message statistic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import SimulationConfig
from repro.experiments.common import INJECTION_RATES, format_series, paper_noc, workload
from repro.noc.simulator import Simulator
from repro.types import RoutingAlgorithm

ALGORITHMS = (("AD", RoutingAlgorithm.WEST_FIRST), ("DT", RoutingAlgorithm.XY))


@dataclass
class UtilizationPoint:
    injection_rate: float
    algorithm: str
    tx_utilization: float
    retx_utilization: float
    delivered: int


def run_figure8_9(
    injection_rates: Sequence[float] = INJECTION_RATES,
    cycles: int = 600,
    measure_from: int = 150,
    seed: int = 13,
) -> Dict[str, List[UtilizationPoint]]:
    results: Dict[str, List[UtilizationPoint]] = {}
    for label, algorithm in ALGORITHMS:
        series: List[UtilizationPoint] = []
        for rate in injection_rates:
            config = SimulationConfig(
                noc=paper_noc(routing=algorithm),
                workload=workload(rate, num_messages=10**9, warmup=0, seed=seed),
                collect_utilization=True,
            )
            sim = Simulator(config)
            result = sim.run_cycles(cycles, measure_from=measure_from)
            series.append(
                UtilizationPoint(
                    injection_rate=rate,
                    algorithm=label,
                    tx_utilization=result.tx_buffer_utilization,
                    retx_utilization=result.retx_buffer_utilization,
                    delivered=result.packets_delivered,
                )
            )
        results[label] = series
    return results


def main() -> None:
    results = run_figure8_9()
    rates = [p.injection_rate for p in next(iter(results.values()))]
    print(
        format_series(
            "Figure 8 — Transmission buffer utilization vs. injection rate",
            "inj. rate",
            rates,
            {
                label: [p.tx_utilization for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.3f}",
        )
    )
    print()
    print(
        format_series(
            "Figure 9 — Retransmission buffer utilization vs. injection rate",
            "inj. rate",
            rates,
            {
                label: [p.retx_utilization for p in pts]
                for label, pts in results.items()
            },
            fmt="{:.3f}",
        )
    )


if __name__ == "__main__":
    main()
