"""Shared experiment plumbing: the paper's parameter axes and formatting."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)

#: The error-rate axis of Figures 5-7 (per-flit per-hop upset probability).
ERROR_RATES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)

#: The error-rate axis of Figure 13 (tops out at 1e-2).
FIG13_ERROR_RATES = (1e-5, 1e-4, 1e-3, 1e-2)

#: The injection-rate axis of Figures 8-9 (flits/node/cycle).
INJECTION_RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: The paper's fixed operating point for the error sweeps.
PAPER_INJECTION_RATE = 0.25


def paper_noc(**overrides) -> NoCConfig:
    """The Section 2.2 platform: 8x8 mesh, 3-stage routers, 3 VCs, 4-flit
    packets, single-cycle links."""
    return NoCConfig(**overrides)


def workload(
    injection_rate: float,
    num_messages: int,
    warmup: int,
    pattern: str = "uniform",
    seed: int = 42,
    max_cycles: int = 300_000,
) -> WorkloadConfig:
    return WorkloadConfig(
        pattern=pattern,
        injection_rate=injection_rate,
        num_messages=num_messages,
        warmup_messages=warmup,
        max_cycles=max_cycles,
        seed=seed,
    )


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    fmt: str = "{:.2f}",
) -> str:
    """Render the rows a paper figure plots, one line per x value."""
    names = list(series)
    widths = [max(10, len(n) + 2) for n in names]
    lines = [title, f"{x_label:>12}  " + "  ".join(
        f"{n:>{w}}" for n, w in zip(names, widths)
    )]
    for i, x in enumerate(xs):
        cells = []
        for name, w in zip(names, widths):
            cells.append(f"{fmt.format(series[name][i]):>{w}}")
        lines.append(f"{x!s:>12}  " + "  ".join(cells))
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
