"""Table 1: power and area overhead of the Allocation Comparator unit.

Paper values (90 nm synthesis, 5 PCs, 4 VCs/PC):

===========================  ===========  ===============
component                    power        area
===========================  ===========  ===============
Generic NoC router           119.55 mW    0.374862 mm^2
Allocation Comparator (AC)   2.02 mW      0.004474 mm^2
overhead                     +1.69 %      +1.19 %
===========================  ===========  ===============

Our structural model (see :mod:`repro.power.area`) is calibrated at exactly
this configuration, so the Table 1 row reproduces by construction; the value
of the model is that the AC overhead is *computed from its gate inventory*
and therefore extrapolates — ``run_table1`` also reports the overhead at
other (P, V) points, answering the scaling question the paper's compactness
argument raises (the comparison network grows ~quadratically in P*V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.power.area import AreaModel


@dataclass
class Table1Row:
    num_ports: int
    num_vcs: int
    router_power_mw: float
    router_area_mm2: float
    ac_power_mw: float
    ac_area_mm2: float
    ac_power_overhead_pct: float
    ac_area_overhead_pct: float


def run_table1(
    configurations: Sequence[Tuple[int, int]] = ((5, 2), (5, 3), (5, 4), (5, 8)),
) -> List[Table1Row]:
    """Compute Table 1 at the paper's point plus scaling points."""
    model = AreaModel()
    rows = []
    for ports, vcs in configurations:
        data = model.table1(num_ports=ports, num_vcs=vcs)
        rows.append(
            Table1Row(
                num_ports=ports,
                num_vcs=vcs,
                router_power_mw=data["router_power_mw"],
                router_area_mm2=data["router_area_mm2"],
                ac_power_mw=data["ac_power_mw"],
                ac_area_mm2=data["ac_area_mm2"],
                ac_power_overhead_pct=data["ac_power_overhead_pct"],
                ac_area_overhead_pct=data["ac_area_overhead_pct"],
            )
        )
    return rows


def main() -> None:
    print("Table 1 — Power and Area Overhead of the AC Unit")
    header = (
        f"{'P':>3} {'V':>3} {'router mW':>11} {'router mm2':>11} "
        f"{'AC mW':>8} {'AC mm2':>9} {'pwr +%':>8} {'area +%':>8}"
    )
    print(header)
    for row in run_table1():
        marker = "  <- paper config" if (row.num_ports, row.num_vcs) == (5, 4) else ""
        print(
            f"{row.num_ports:>3} {row.num_vcs:>3} {row.router_power_mw:>11.2f} "
            f"{row.router_area_mm2:>11.6f} {row.ac_power_mw:>8.2f} "
            f"{row.ac_area_mm2:>9.6f} {row.ac_power_overhead_pct:>8.2f} "
            f"{row.ac_area_overhead_pct:>8.2f}{marker}"
        )
    print(
        "\npaper: router 119.55 mW / 0.374862 mm2; AC 2.02 mW (+1.69%) / "
        "0.004474 mm2 (+1.19%)"
    )


if __name__ == "__main__":
    main()
