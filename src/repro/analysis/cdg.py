"""Channel-dependency-graph construction and deadlock-freedom verification.

Dally & Seitz's classic criterion: a routing function is deadlock-free on a
network iff its *channel dependency graph* (CDG) is acyclic.  The CDG has
one vertex per directed inter-router channel; there is an edge ``c1 -> c2``
when some packet, travelling toward some destination, can hold channel
``c1`` while requesting channel ``c2`` at the router joining them.

Construction is *reachability-aware*: dependencies are only recorded along
(channel, destination) states a packet can actually reach under the routing
function, starting from every possible injection point.  Naively pairing
every input channel with every candidate output would fabricate turns the
routing function never takes (e.g. a south-travelling XY packet turning
east) and falsely flag XY as deadlock-prone.

Virtual channels: the paper's VA lets a packet claim *any* VC of the
physical channel the routing function selected ("the routing function
returns all VCs of a single PC", Figure 12).  With such unrestricted VC
allocation, VCs provide no deadlock protection — every VC of a PC carries
exactly the same dependency set, so the CDG is built at physical-channel
granularity and a cycle among PCs proves a reachable VC-level deadlock for
any ``num_vcs``.  A routing function using VC classes as escape channels
(datelines) would need a VC-granular graph; none of the repo's routing
functions does.

The graph is built over the generic :class:`~repro.noc.topology.PortGraph`
surface — nodes, ports, ``neighbor`` and ``arrival_port`` — not over 2-D
mesh coordinates, so the same construction certifies meshes, tori, and
arbitrary :class:`~repro.noc.topology.GraphTopology` instances (degraded
graphs, chiplet hierarchies, test fixtures) without modification.

The verifier is exercised by ``repro lint`` (rule ``NOC004``), by the
``repro verify`` certification engine, and directly by tests: XY and
west-first must verify clean on a mesh, fully-adaptive and torus XY must
be flagged with a concrete witness cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Set, Tuple

from repro.noc.flit import Flit
from repro.noc.routing import RoutingFunction, SourceRouting
from repro.noc.topology import PortGraph
from repro.types import Direction, FlitType


class Channel(NamedTuple):
    """A directed inter-router channel (one physical link direction).

    ``src``/``dst`` are node ids and ``direction`` is the port label the
    channel leaves ``src`` through — :class:`~repro.types.Direction` on a
    mesh, any sortable label on a generic port graph.
    """

    src: Any
    dst: Any
    direction: Any

    def describe(self, topology: Optional[PortGraph] = None) -> str:
        port = getattr(self.direction, "name", None) or str(self.direction)
        coordinates_of = getattr(topology, "coordinates_of", None)
        if coordinates_of is not None:
            a = coordinates_of(self.src)
            b = coordinates_of(self.dst)
            return f"({a.x},{a.y})->({b.x},{b.y}) via {port}"
        return f"{self.src}->{self.dst} via {port}"


def _probe_header(src: Any, dst: Any) -> Flit:
    """A minimal header flit for interrogating a routing function."""
    return Flit(-1, 0, FlitType.HEAD, src, dst)


@dataclass
class ChannelDependencyGraph:
    """The CDG of a (topology, routing function) pair.

    Build with :meth:`build`; query with :meth:`find_cycle` or the edge
    accessors.  ``num_vcs`` is carried for reporting — see the module
    docstring for why it does not change the graph.
    """

    topology: PortGraph
    num_vcs: int = 1
    _edges: Dict[Channel, Set[Channel]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        topology: PortGraph,
        routing_fn: RoutingFunction,
        num_vcs: int = 1,
    ) -> "ChannelDependencyGraph":
        """Construct the CDG by forward traversal from every (src, dst) pair.

        Raises :class:`ValueError` for source routing, whose routes live in
        the packets rather than in a statically analyzable function.
        """
        if isinstance(routing_fn, SourceRouting):
            raise ValueError(
                "source routing has no static routing relation; the CDG is "
                "a property of the packets, not of the network"
            )
        graph = cls(topology, num_vcs)
        port_aware = getattr(routing_fn, "port_aware", False)
        for dst in topology.nodes():
            if port_aware:
                graph._trace_destination_port_aware(routing_fn, dst)
            else:
                graph._trace_destination(routing_fn, dst)
        return graph

    def _trace_destination(self, routing_fn: RoutingFunction, dst: Any) -> None:
        """Record every dependency reachable by packets destined for ``dst``."""
        topology = self.topology
        # The candidate out-directions at a node depend only on (node, dst),
        # so one routing-function call per node covers every arrival port.
        candidates: Dict[Any, List[Any]] = {}
        for node in topology.nodes():
            if node == dst:
                candidates[node] = []
                continue
            dirs = routing_fn.candidates(topology, node, _probe_header(node, dst))
            candidates[node] = [
                d
                for d in dirs
                if d is not Direction.LOCAL
                and topology.neighbor(node, d) is not None
            ]
        # Forward traversal over (held channel) states: a packet injected at
        # any node may first claim any candidate channel there; from a held
        # channel it may request any candidate channel at the downstream
        # router, which is exactly a CDG edge.
        visited: Set[Channel] = set()
        frontier: List[Channel] = []
        for src in topology.nodes():
            for direction in candidates[src]:
                channel = self._channel(src, direction)
                self._edges.setdefault(channel, set())
                if channel not in visited:
                    visited.add(channel)
                    frontier.append(channel)
        while frontier:
            held = frontier.pop()
            for direction in candidates[held.dst]:
                requested = self._channel(held.dst, direction)
                self._edges.setdefault(requested, set())
                self._edges[held].add(requested)
                if requested not in visited:
                    visited.add(requested)
                    frontier.append(requested)

    def _trace_destination_port_aware(
        self, routing_fn: RoutingFunction, dst: Any
    ) -> None:
        """Port-aware variant of :meth:`_trace_destination`.

        A port-aware routing function (``FaultAwareRouting``) restricts the
        legal out-directions by the arrival port, so candidates depend on the
        *held channel*, not just on the node.  The traversal therefore queries
        ``candidates_from`` with the held channel's arrival port — injection
        uses the LOCAL port — and only records the turns the tables actually
        permit.  This is exactly what certifies the reconfigured routing on a
        degraded topology: the graph contains one vertex per surviving channel
        the tables use and one edge per legal turn.
        """
        topology = self.topology
        visited: Set[Channel] = set()
        frontier: List[Channel] = []

        def legal(node: Any, in_port: Any) -> List[Any]:
            dirs = routing_fn.candidates_from(  # type: ignore[attr-defined]
                topology, node, in_port, _probe_header(node, dst)
            )
            return [
                d
                for d in dirs
                if d is not Direction.LOCAL
                and topology.neighbor(node, d) is not None
            ]

        for src in topology.nodes():
            if src == dst:
                continue
            for direction in legal(src, Direction.LOCAL):
                channel = self._channel(src, direction)
                self._edges.setdefault(channel, set())
                if channel not in visited:
                    visited.add(channel)
                    frontier.append(channel)
        while frontier:
            held = frontier.pop()
            if held.dst == dst:
                continue
            in_port = topology.arrival_port(held.src, held.direction)
            if in_port is None:
                raise ValueError(
                    f"port-aware analysis needs a reverse port for channel "
                    f"{held.describe(topology)}; one-way channels cannot "
                    "carry an arrival-port routing constraint"
                )
            for direction in legal(held.dst, in_port):
                requested = self._channel(held.dst, direction)
                self._edges.setdefault(requested, set())
                self._edges[held].add(requested)
                if requested not in visited:
                    visited.add(requested)
                    frontier.append(requested)

    def _channel(self, node: Any, direction: Any) -> Channel:
        neighbor = self.topology.neighbor(node, direction)
        assert neighbor is not None, "candidates were filtered to linked dirs"
        return Channel(node, neighbor, direction)

    # -- queries ------------------------------------------------------------

    @property
    def channels(self) -> List[Channel]:
        return sorted(self._edges)

    @property
    def num_channels(self) -> int:
        return len(self._edges)

    @property
    def num_dependencies(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def dependencies_of(self, channel: Channel) -> Set[Channel]:
        return set(self._edges.get(channel, ()))

    def has_edge(self, a: Channel, b: Channel) -> bool:
        return b in self._edges.get(a, ())

    def find_cycle(self) -> Optional[List[Channel]]:
        """A cycle of channels if one exists (the deadlock witness), else None.

        Iterative DFS with the standard three-colour scheme; on the first
        back edge the grey path is unwound into the witness.  The returned
        list ``[c0, c1, ..., ck]`` satisfies ``edge(ci, ci+1)`` for all i and
        ``edge(ck, c0)``.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Channel, int] = {c: WHITE for c in self._edges}
        for root in self.channels:
            if colour[root] != WHITE:
                continue
            path: List[Channel] = []
            # Stack entries: (channel, iterator over its successors).
            stack: List[Tuple[Channel, List[Channel]]] = [
                (root, sorted(self._edges[root]))
            ]
            colour[root] = GREY
            path.append(root)
            while stack:
                channel, successors = stack[-1]
                advanced = False
                while successors:
                    nxt = successors.pop(0)
                    if colour[nxt] == GREY:
                        # Back edge: the cycle is the path suffix from nxt.
                        start = path.index(nxt)
                        return path[start:]
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, sorted(self._edges[nxt])))
                        advanced = True
                        break
                if not advanced:
                    colour[channel] = BLACK
                    path.pop()
                    stack.pop()
        return None

    def is_cycle(self, channels: List[Channel]) -> bool:
        """Whether ``channels`` is a genuine cycle in this graph."""
        if not channels:
            return False
        return all(
            self.has_edge(channels[i], channels[(i + 1) % len(channels)])
            for i in range(len(channels))
        )


@dataclass(frozen=True)
class CDGVerdict:
    """Machine-readable outcome of the deadlock-freedom check."""

    deadlock_free: bool
    num_channels: int
    num_dependencies: int
    num_vcs: int
    witness: Tuple[Channel, ...] = ()
    witness_text: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "deadlock_free": self.deadlock_free,
            "num_channels": self.num_channels,
            "num_dependencies": self.num_dependencies,
            "num_vcs": self.num_vcs,
            "witness": list(self.witness_text),
        }


def verify_deadlock_freedom(
    topology: PortGraph,
    routing_fn: RoutingFunction,
    num_vcs: int = 1,
) -> CDGVerdict:
    """Build the CDG and return the acyclicity verdict with any witness."""
    graph = ChannelDependencyGraph.build(topology, routing_fn, num_vcs)
    cycle = graph.find_cycle()
    if cycle is None:
        return CDGVerdict(
            deadlock_free=True,
            num_channels=graph.num_channels,
            num_dependencies=graph.num_dependencies,
            num_vcs=num_vcs,
        )
    return CDGVerdict(
        deadlock_free=False,
        num_channels=graph.num_channels,
        num_dependencies=graph.num_dependencies,
        num_vcs=num_vcs,
        witness=tuple(cycle),
        witness_text=tuple(c.describe(topology) for c in cycle),
    )
