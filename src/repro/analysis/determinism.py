"""Determinism static analyzer — the ``DET0xx`` rule catalogue.

The simulator's checkpoint/resume guarantee (docs/CHECKPOINTING.md) and the
planned sharded campaigns are *bit-for-bit* claims: the same config and seed
must produce the identical event stream on every run, every machine, every
process.  A single iteration over a ``set``, one ``os.listdir`` consumed
unsorted, or one wall-clock read folded into simulation state silently
breaks that promise — usually long after the commit that introduced it.

This module is an AST pass over ``src/repro`` that flags the hazard
patterns *before* they ship, mirroring the ``NOC0xx`` config-lint catalogue
in spirit and report format:

======  ======================================================================
DET001  Iteration over a ``set``/``frozenset`` expression (element order is
        salted per process via ``PYTHONHASHSEED``).  Sort it, or iterate a
        deterministic container.
DET002  Filesystem listing consumed unsorted: ``os.listdir``, ``os.scandir``,
        ``Path.iterdir``, ``glob``/``rglob`` return OS-dependent order; wrap
        in ``sorted(...)``.
DET003  Wall-clock reads (``time.time``, ``perf_counter``, ``monotonic``,
        ``datetime.now``/``utcnow``/``today``): real time must never steer
        simulated behaviour.  Fine in logging/benchmark shells — annotate.
DET004  The process-global ``random`` module (``random.random()``,
        ``random.choice`` ...): shared, seedable-from-anywhere state.  Use a
        locally seeded ``random.Random(seed)`` instance.
DET005  Ordering by object identity (``key=id``): CPython addresses vary per
        run, so the order is nondeterministic.
DET006  Builtin ``hash()`` of strings/bytes is ``PYTHONHASHSEED``-salted;
        deriving decisions or seeds from it varies per process.  Use
        ``zlib.crc32``/``hashlib`` for stable hashes.
======  ======================================================================

Findings on a line carrying the inline marker ``# det: ok`` are suppressed —
the marker is a reviewed, deliberate exception (e.g. a wall-clock read in a
progress display).  CI runs this analyzer over ``src/repro`` and requires
zero findings (see ``tools/lint.py`` and the ``determinism`` job), so every
suppression is visible in the diff that introduces it.

Usage::

    PYTHONPATH=src python -m repro.analysis.determinism src/repro
    PYTHONPATH=src python -m repro.analysis.determinism --rules
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

#: Inline suppression marker (anywhere in the flagged physical line).
SUPPRESSION = "det: ok"

#: rule id -> (title, hint) — the catalogue ``--rules`` prints.
DET_RULES: Dict[str, Tuple[str, str]] = {
    "DET001": (
        "iteration over a set/frozenset expression",
        "set order is PYTHONHASHSEED-salted; iterate sorted(...) instead",
    ),
    "DET002": (
        "filesystem listing consumed unsorted",
        "os.listdir/scandir, Path.iterdir and glob return OS-dependent "
        "order; wrap the call in sorted(...)",
    ),
    "DET003": (
        "wall-clock read in simulation code",
        "time.time/perf_counter/monotonic and datetime.now must not steer "
        "simulated behaviour; keep them out of state or annotate '# det: ok'",
    ),
    "DET004": (
        "process-global random module call",
        "random.random()/choice()/... share one global RNG; use a locally "
        "seeded random.Random(seed) instance",
    ),
    "DET005": (
        "ordering by object identity (key=id)",
        "id() is a memory address and varies per run; sort by a stable key",
    ),
    "DET006": (
        "builtin hash() of interpreter-salted values",
        "str/bytes hash() varies with PYTHONHASHSEED; use zlib.crc32 or "
        "hashlib for stable digests",
    ),
}

_FS_LISTING_FUNCS = {"listdir", "scandir", "iterdir", "glob", "rglob"}
_TIME_FUNCS = {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
#: Global-RNG entry points of the ``random`` module (not Random/SystemRandom).
_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}


@dataclass(frozen=True)
class Finding:
    """One determinism hazard, pointing at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def rule_catalogue() -> str:
    """The DET rule table, one line per rule (mirrors NOC's catalogue)."""
    lines = ["DET rule catalogue (suppress a reviewed line with '# det: ok'):"]
    for rule_id in sorted(DET_RULES):
        title, hint = DET_RULES[rule_id]
        lines.append(f"  {rule_id}  {title}")
        lines.append(f"          {hint}")
    return "\n".join(lines)


def _is_set_expression(node: ast.AST) -> bool:
    """Whether ``node`` syntactically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of the called function (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str]):
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []
        #: Calls appearing directly inside ``sorted(...)``/``list(sorted(``
        #: etc. — sanctioned listing consumers.
        self._sorted_args: Set[ast.AST] = set()
        #: Bare names imported from the random module (``from random
        #: import choice``) — calling them hits the global RNG too.
        self._random_imports: Set[str] = set()

    # -- plumbing ----------------------------------------------------------

    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        # The marker may sit on any physical line the statement spans; the
        # flagged line itself is what reviewers annotate.
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        return SUPPRESSION in text

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        if self._suppressed(node):
            return
        self.findings.append(
            Finding(
                rule_id=rule_id,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- DET001: set iteration --------------------------------------------

    def _check_iteration(self, iterable: ast.AST) -> None:
        if _is_set_expression(iterable):
            self._flag(
                "DET001",
                iterable,
                "iteration over a set/frozenset expression; order is "
                "PYTHONHASHSEED-salted — iterate sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- imports (for DET004 bare names) ----------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCS:
                    self._random_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: DET001 (list(set)), DET002..DET006 -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)

        if name == "sorted":
            # sorted(listing(...)) sanctions the inner listing call.
            for arg in node.args:
                self._sorted_args.add(arg)

        # DET001 variant: materializing a set into an ordered container.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "iter", "enumerate")
            and node.args
            and _is_set_expression(node.args[0])
        ):
            self._flag(
                "DET001",
                node,
                f"{node.func.id}() over a set expression preserves the "
                "salted set order; use sorted(...) instead",
            )

        # DET002: unsorted filesystem listings.
        if name in _FS_LISTING_FUNCS and node not in self._sorted_args:
            self._flag(
                "DET002",
                node,
                f"{name}() returns OS-dependent order; wrap the call in "
                "sorted(...)",
            )

        # DET003: wall-clock reads.
        if isinstance(node.func, ast.Attribute):
            owner = node.func.value
            owner_name = owner.id if isinstance(owner, ast.Name) else (
                owner.attr if isinstance(owner, ast.Attribute) else None
            )
            if owner_name == "time" and node.func.attr in _TIME_FUNCS:
                self._flag(
                    "DET003",
                    node,
                    f"time.{node.func.attr}() is a wall-clock read; real "
                    "time must not steer simulation state",
                )
            elif (
                node.func.attr in _DATETIME_FUNCS
                and owner_name in ("datetime", "date")
            ):
                self._flag(
                    "DET003",
                    node,
                    f"{owner_name}.{node.func.attr}() is a wall-clock read; "
                    "real time must not steer simulation state",
                )

            # DET004: global random module calls.
            if (
                isinstance(owner, ast.Name)
                and owner.id == "random"
                and node.func.attr in _RANDOM_FUNCS
            ):
                self._flag(
                    "DET004",
                    node,
                    f"random.{node.func.attr}() uses the process-global "
                    "RNG; use a locally seeded random.Random(seed)",
                )
        elif isinstance(node.func, ast.Name) and node.func.id in self._random_imports:
            self._flag(
                "DET004",
                node,
                f"{node.func.id}() (imported from random) uses the "
                "process-global RNG; use a locally seeded random.Random(seed)",
            )

        # DET005: ordering by identity.
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._flag(
                    "DET005",
                    node,
                    "key=id orders by memory address, which varies per "
                    "run; use a stable key",
                )

        # DET006: salted builtin hash().
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._flag(
                "DET006",
                node,
                "builtin hash() is PYTHONHASHSEED-salted for str/bytes; "
                "use zlib.crc32 or hashlib for stable digests",
            )

        self.generic_visit(node)


def scan_source(source: str, path: str = "<string>") -> List[Finding]:
    """Scan one module's source text; returns findings in source order."""
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.col, f.rule_id))


def scan_file(path: Union[str, Path]) -> List[Finding]:
    p = Path(path)
    return scan_source(p.read_text(), str(p))


def scan_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Scan files and directories (recursively, ``*.py``, sorted order)."""
    findings: List[Finding] = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(scan_file(file))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Determinism static analyzer (DET001-DET006).",
    )
    parser.add_argument(
        "paths", nargs="*", help="python files or directories to scan"
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)
    if args.rules:
        print(rule_catalogue())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --rules)")
    findings = scan_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(
            f"{len(findings)} determinism finding(s); fix or annotate a "
            f"reviewed line with '# {SUPPRESSION}'",
            file=sys.stderr,
        )
        return 1
    print("no determinism hazards found", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
