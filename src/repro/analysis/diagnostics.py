"""The diagnostic format shared by every static-analysis pass.

All three passes of the NoC linter — the channel-dependency-graph verifier,
the config rule catalogue and the run-time invariant sanitizer — report
problems as :class:`Diagnostic` records collected into a
:class:`DiagnosticReport`.  A diagnostic carries a *stable rule id*
(``NOC0xx`` for config rules, ``SIM1xx`` for run-time invariants), a
severity, a human-readable message, an optional fix hint and an optional
machine-readable witness (e.g. the cycle proving a routing function can
deadlock).

Rule ids are part of the tool's public contract: scripts may grep for them,
campaigns archive them in result metadata, and tests pin them.  Never reuse
or renumber an id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so that ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Parameters
    ----------
    rule_id:
        Stable identifier (``NOC001``, ``SIM102``, ...).
    severity:
        :class:`Severity`; ERROR diagnostics make ``repro lint`` exit
        non-zero and abort campaigns.
    message:
        One-line statement of the problem, including the offending values.
    hint:
        Optional concrete fix ("raise retx_buffer_depth to 5").
    witness:
        Optional machine-readable evidence, e.g. the channel cycle proving a
        deadlock; rendered one element per line in text output.
    source:
        Where the linted config came from (a file path, a campaign variant
        name, ...); empty for in-process configs.
    """

    rule_id: str
    severity: Severity
    message: str
    hint: Optional[str] = None
    witness: Tuple[str, ...] = ()
    source: Optional[str] = None

    def format(self) -> str:
        """Render as compiler-style text: ``source: severity NOC001: msg``."""
        prefix = f"{self.source}: " if self.source else ""
        lines = [f"{prefix}{self.severity} {self.rule_id}: {self.message}"]
        for element in self.witness:
            lines.append(f"    | {element}")
        if self.hint:
            lines.append(f"    = hint: {self.hint}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (campaign metadata, ``repro lint --json``)."""
        data: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.hint:
            data["hint"] = self.hint
        if self.witness:
            data["witness"] = list(self.witness)
        if self.source:
            data["source"] = self.source
        return data


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with verdict helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def with_source(self, source: str) -> "DiagnosticReport":
        """A copy with ``source`` filled in on every diagnostic lacking one."""
        return DiagnosticReport(
            [
                d if d.source else Diagnostic(
                    d.rule_id, d.severity, d.message, d.hint, d.witness, source
                )
                for d in self.diagnostics
            ]
        )

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Process exit code for CLI use: 1 if any ERROR, else 0."""
        return 1 if self.has_errors else 0

    def format_text(self) -> str:
        """Full human-readable report plus a one-line summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def summary_line(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        if not self.diagnostics:
            return "clean: no diagnostics"
        parts = []
        if n_err:
            parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        if n_info:
            parts.append(f"{n_info} info")
        return ", ".join(parts)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
