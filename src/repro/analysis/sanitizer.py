"""The cycle-level invariant sanitizer (rules ``SIM101``..``SIM103``).

An opt-in checker that walks the live :class:`~repro.noc.network.Network`
after every cycle and asserts the architectural invariants the simulator is
supposed to preserve, reporting violations through the same diagnostic
format as the static passes:

* ``SIM101`` — **flit conservation**: every flit pushed into the network is
  exactly once in an input buffer, on a link, in a replay/absorption queue,
  or in a destination reassembler — unless a counter accounts for its
  removal (drop, ejection) or creation (retransmission rollback).
* ``SIM102`` — **no duplicate VC grants**: the persistent wormhole
  allocation state is bijective — an output VC is held by at most one input
  VC, held channels point back at their owners, and owners hold channels the
  routing stage actually offered.  This cross-checks the AC unit: with the
  AC enabled these can never trip; with it disabled and VA faults injected
  they catch exactly the corruptions the AC would have (switch-allocation
  duplicates are transient within a cycle and surface through ``SIM101``
  instead, as collision-garbled or stray flits).
* ``SIM103`` — **VC state-machine legality**: per-VC pipeline state is
  consistent with its buffer contents and routed assignment (ACTIVE implies
  a valid, owned output; WAITING_VA implies a candidate set; an idle VC's
  next flit is a header).

Undetected switch-allocator faults (AC disabled) create stray flit copies
*by design* — that is the failure mode the paper measures.  The first stray
permanently disables the conservation term and reports one INFO diagnostic,
keeping the sanitizer usable on ablation runs.

Enable via ``SimulationConfig(invariant_checks=True)`` (the simulator then
raises :class:`InvariantViolationError` on the first violation) or drive a
:class:`InvariantSanitizer` by hand around :meth:`Network.step` in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.types import VCState

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.noc.network import Network


class InvariantViolationError(RuntimeError):
    """Raised by the simulator when a per-cycle invariant fails."""

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        super().__init__(
            "; ".join(d.format() for d in diagnostics) or "invariant violation"
        )


class InvariantSanitizer:
    """Per-cycle invariant checker over a live network."""

    def __init__(self, network: "Network", raise_on_violation: bool = False):
        self.network = network
        self.raise_on_violation = raise_on_violation
        self.report = DiagnosticReport()
        self.checks_run = 0
        self._conservation_enabled = True
        self._stray_notice_emitted = False

    # -- public API ---------------------------------------------------------

    def check(self, cycle: Optional[int] = None) -> List[Diagnostic]:
        """Run all invariants; returns (and accumulates) new violations."""
        at = self.network.cycle if cycle is None else cycle
        violations: List[Diagnostic] = []
        violations.extend(self._check_conservation(at))
        violations.extend(self._check_grants(at))
        violations.extend(self._check_vc_states(at))
        self.checks_run += 1
        self.report.extend(violations)
        if self.raise_on_violation:
            hard = [v for v in violations if v.severity is Severity.ERROR]
            if hard:
                raise InvariantViolationError(hard)
        return violations

    @property
    def violations(self) -> List[Diagnostic]:
        return [d for d in self.report if d.severity is Severity.ERROR]

    # -- SIM101: flit conservation ------------------------------------------

    def _check_conservation(self, cycle: int) -> List[Diagnostic]:
        net = self.network
        counters = net.stats.counters
        if counters.get("sa_misdirected_flits", 0):
            # Stray copies from undetected SA faults break conservation by
            # design; disable the term rather than report noise.
            self._conservation_enabled = False
            if not self._stray_notice_emitted:
                self._stray_notice_emitted = True
                return [
                    Diagnostic(
                        rule_id="SIM101",
                        severity=Severity.INFO,
                        message=(
                            f"cycle {cycle}: undetected SA faults produced "
                            "stray flits; flit conservation checking is "
                            "disabled for the rest of this run"
                        ),
                    )
                ]
            return []
        if not self._conservation_enabled:
            return []

        in_network = net.in_flight_flits + sum(
            ni.reassembler.held_flits for ni in net.interfaces
        )
        inflow = (
            sum(ni.flits_sent for ni in net.interfaces)
            + counters.get("flits_retransmitted", 0)
            + counters.get("route_nack_flits_restored", 0)
        )
        outflow = (
            counters.get("flits_dropped", 0)
            + counters.get("flits_ejected", 0)
            + counters.get("stale_replay_flits_discarded", 0)
            + counters.get("permanent_fault_flits_dropped", 0)
        )
        expected = inflow - outflow
        if in_network == expected:
            return []
        return [
            Diagnostic(
                rule_id="SIM101",
                severity=Severity.ERROR,
                message=(
                    f"cycle {cycle}: flit conservation violated: "
                    f"{in_network} flits live in the network but counters "
                    f"imply {expected} (inflow {inflow} - outflow {outflow})"
                ),
                witness=(
                    f"buffered+links+pending = {net.in_flight_flits}",
                    "reassembler-held = "
                    f"{sum(ni.reassembler.held_flits for ni in net.interfaces)}",
                    f"injected = {sum(ni.flits_sent for ni in net.interfaces)}",
                    f"replayed = {counters.get('flits_retransmitted', 0)}",
                    "route-nack restored = "
                    f"{counters.get('route_nack_flits_restored', 0)}",
                    f"dropped = {counters.get('flits_dropped', 0)}",
                    "permanent-fault dropped = "
                    f"{counters.get('permanent_fault_flits_dropped', 0)}",
                    f"ejected = {counters.get('flits_ejected', 0)}",
                ),
            )
        ]

    # -- SIM102: wormhole allocation consistency ------------------------------

    def _check_grants(self, cycle: int) -> List[Diagnostic]:
        violations: List[Diagnostic] = []
        for router in self.network.routers:
            owners: dict = {}
            for port_vcs in router.inputs:
                for ivc in port_vcs:
                    if ivc.state is not VCState.ACTIVE:
                        continue
                    key = (ivc.out_port, ivc.out_vc)
                    if key in owners:
                        violations.append(
                            Diagnostic(
                                rule_id="SIM102",
                                severity=Severity.ERROR,
                                message=(
                                    f"cycle {cycle}: duplicate VC grant at "
                                    f"router {router.node}: input VCs "
                                    f"{owners[key]} and {ivc.key} both hold "
                                    f"output (port={key[0]}, vc={key[1]})"
                                ),
                            )
                        )
                    else:
                        owners[key] = ivc.key
                    channel = router._channel_of(ivc)
                    if channel is not None and channel.allocated_to != ivc.key:
                        violations.append(
                            Diagnostic(
                                rule_id="SIM102",
                                severity=Severity.ERROR,
                                message=(
                                    f"cycle {cycle}: stranded grant at "
                                    f"router {router.node}: input VC "
                                    f"{ivc.key} believes it holds output "
                                    f"(port={ivc.out_port}, vc={ivc.out_vc}) "
                                    "but the channel is allocated to "
                                    f"{channel.allocated_to}"
                                ),
                            )
                        )
            for port, channels in enumerate(router.outputs):
                for channel in channels:
                    owner = channel.allocated_to
                    if owner is None:
                        continue
                    in_port, in_vc = owner
                    ivc = router.inputs[in_port][in_vc]
                    if (
                        ivc.state is not VCState.ACTIVE
                        or (ivc.out_port, ivc.out_vc) != (port, channel.vc)
                    ):
                        violations.append(
                            Diagnostic(
                                rule_id="SIM102",
                                severity=Severity.ERROR,
                                message=(
                                    f"cycle {cycle}: dangling allocation at "
                                    f"router {router.node}: output "
                                    f"(port={port}, vc={channel.vc}) is "
                                    f"allocated to input VC {owner}, which "
                                    f"is {ivc.state.name} toward "
                                    f"(port={ivc.out_port}, vc={ivc.out_vc})"
                                ),
                            )
                        )
        return violations

    # -- SIM103: VC state-machine legality ------------------------------------

    def _check_vc_states(self, cycle: int) -> List[Diagnostic]:
        violations: List[Diagnostic] = []
        config = self.network.config.noc
        for router in self.network.routers:
            for port_vcs in router.inputs:
                for ivc in port_vcs:
                    problem = self._vc_state_problem(ivc, config)
                    if problem is not None:
                        violations.append(
                            Diagnostic(
                                rule_id="SIM103",
                                severity=Severity.ERROR,
                                message=(
                                    f"cycle {cycle}: illegal VC state at "
                                    f"router {router.node}, input VC "
                                    f"{ivc.key}: {problem}"
                                ),
                            )
                        )
        return violations

    @staticmethod
    def _vc_state_problem(ivc, config) -> Optional[str]:
        state = ivc.state
        if state is VCState.ACTIVE:
            if not 0 <= ivc.out_port < config.num_ports:
                return f"ACTIVE with out-of-range output port {ivc.out_port}"
            if not 0 <= ivc.out_vc < config.num_vcs:
                return f"ACTIVE with out-of-range output VC {ivc.out_vc}"
            if ivc.candidates is not None and ivc.out_port not in ivc.candidates:
                return (
                    f"ACTIVE on output port {ivc.out_port}, which the "
                    f"routing stage never offered (candidates "
                    f"{ivc.candidates})"
                )
        elif state is VCState.WAITING_VA:
            if not ivc.candidates:
                return "WAITING_VA with no routing candidates"
        elif state in (VCState.IDLE, VCState.ROUTING):
            head = ivc.buffer.peek()
            if head is not None and not head.is_head:
                return (
                    f"{state.name} but the buffer head is a "
                    f"{head.ftype.name} flit (wormhole state lost)"
                )
        return None
