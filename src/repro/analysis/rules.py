"""The config lint rule catalogue (rules ``NOC001``..``NOC016``).

Each rule is a small function from a :class:`LintContext` to zero or more
:class:`~repro.analysis.diagnostics.Diagnostic` records.  Rules are
registered with the :func:`rule` decorator, which pins the stable id and the
one-line title shown by ``repro lint --rules``.

Rules receive both the *raw serialized dict* and (when construction
succeeded) the typed :class:`~repro.config.SimulationConfig`.  Range checks
that the config constructors would reject run against the raw dict, so the
linter can explain a broken config file instead of tracebacking; semantic
rules use the typed object.

Severity policy: ERROR means the simulation is wrong or cannot meet its own
correctness assumptions (Eq. 1 violated, unrecoverable deadlock possible);
WARNING means the run will execute but measure something misleading or
wasteful; INFO is advisory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Mapping, Optional

from repro.analysis.cdg import CDGVerdict
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.config import SimulationConfig
from repro.core.deadlock import max_packets_per_buffer
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm

#: HBH needs the replay window to cover link traversal + error check + NACK
#: propagation (Section 3.1).
MIN_RETX_DEPTH = 3

#: Fault rates beyond this are outside the paper's evaluated range; the
#: network spends more time recovering than transmitting.
FAULT_RATE_SANE_MAX = 0.05

#: Injection beyond this saturates an 8x8 mesh under uniform traffic for
#: every routing algorithm evaluated (Figures 8/9); latency is unbounded.
INJECTION_RATE_SATURATION = 0.45

#: Safety factor on the analytic minimum cycles needed to drain a workload.
MAX_CYCLES_SAFETY_FACTOR = 4


@dataclass
class LintContext:
    """Everything a rule may look at.

    ``config`` is None when the raw dict was rejected by the constructors;
    ``cdg`` is None when the CDG pass was skipped (no config, source
    routing, or disabled by the caller).
    """

    data: Mapping[str, Any]
    config: Optional[SimulationConfig] = None
    cdg: Optional[CDGVerdict] = None

    def noc(self, key: str, default: Any = None) -> Any:
        return self.data.get("noc", {}).get(key, default)

    def workload(self, key: str, default: Any = None) -> Any:
        return self.data.get("workload", {}).get(key, default)

    def fault_rates(self) -> Mapping[str, Any]:
        return self.data.get("faults", {}).get("rates", {})


RuleFn = Callable[[LintContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    rule_id: str
    title: str
    check: RuleFn


_RULES: List[Rule] = []


def rule(rule_id: str, title: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule under a stable id."""

    def register(fn: RuleFn) -> RuleFn:
        _RULES.append(Rule(rule_id, title, fn))
        return fn

    return register


def iter_rules() -> List[Rule]:
    return list(_RULES)


def run_rules(ctx: LintContext) -> List[Diagnostic]:
    """Run the whole catalogue against one context, in id order."""
    diagnostics: List[Diagnostic] = []
    for entry in _RULES:
        diagnostics.extend(entry.check(ctx))
    return diagnostics


def rule_catalogue() -> str:
    """Human-readable rule listing for ``repro lint --rules``."""
    return "\n".join(f"{entry.rule_id}  {entry.title}" for entry in _RULES)


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


@rule("NOC001", "deadlock recovery buffers must satisfy the Eq. 1 bound")
def _noc001_buffer_bound(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None or not cfg.noc.deadlock_recovery_enabled:
        return
    t = cfg.noc.vc_buffer_depth
    r = cfg.noc.retx_buffer_depth
    m = cfg.noc.flits_per_packet
    # With homogeneous buffers Eq. 1 reduces per node: T + R > M * ceil(T/M),
    # so satisfying it for one node satisfies it for every deadlock size.
    per_node_demand = m * max_packets_per_buffer(t, m)
    if t + r > per_node_demand:
        return
    required_r = per_node_demand - t + 1
    yield Diagnostic(
        rule_id="NOC001",
        severity=Severity.ERROR,
        message=(
            f"buffer bound Eq.1 violated: T+R = {t}+{r} = {t + r} does not "
            f"exceed M*ceil(T/M) = {per_node_demand} "
            f"(T={t}, R={r}, M={m}); deadlock recovery cannot guarantee a "
            "free slot and may wedge"
        ),
        hint=(
            f"raise retx_buffer_depth to >= {required_r} (or shrink "
            "vc_buffer_depth so a buffer holds fewer partial packets)"
        ),
    )


@rule("NOC002", "retransmission depth must cover the link round trip")
def _noc002_retx_round_trip(ctx: LintContext) -> Iterable[Diagnostic]:
    depth = ctx.noc("retx_buffer_depth")
    if not isinstance(depth, int):
        return
    # The round trip stretches with the slowest link: traversal (latency
    # cycles) + error check + NACK propagation (latency cycles back).
    required = MIN_RETX_DEPTH
    if ctx.config is not None:
        required = max(required, 2 * ctx.config.noc.max_link_latency + 1)
    if depth >= required:
        return
    yield Diagnostic(
        rule_id="NOC002",
        severity=Severity.ERROR,
        message=(
            f"retransmission depth {depth} < link round trip "
            f"({required} cycles: link traversal + error check + NACK "
            "propagation); a NACK would arrive after its flit left the "
            "replay window"
        ),
        hint=f"set retx_buffer_depth >= {required}",
    )


@rule("NOC003", "C_thres must sit between normal blocking and the cycle budget")
def _noc003_threshold_ordering(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None or not cfg.noc.deadlock_recovery_enabled:
        return
    threshold = cfg.noc.deadlock_threshold
    max_cycles = cfg.workload.max_cycles
    if threshold >= max_cycles:
        yield Diagnostic(
            rule_id="NOC003",
            severity=Severity.ERROR,
            message=(
                f"deadlock_threshold ({threshold}) >= workload.max_cycles "
                f"({max_cycles}): no probe can ever fire before the run is "
                "cut off, so recovery is unreachable"
            ),
            hint="lower deadlock_threshold or raise max_cycles",
        )
        return
    # A wormhole legitimately blocks for about a packet's serialization time
    # behind one contender; probing below that floods the network with
    # false-positive probes (pure energy/latency overhead, Rules 1-4 still
    # reject them, but each probe walk costs link bandwidth).
    ordinary_blocking = cfg.noc.flits_per_packet + cfg.noc.pipeline_stages
    if threshold < ordinary_blocking:
        yield Diagnostic(
            rule_id="NOC003",
            severity=Severity.WARNING,
            message=(
                f"deadlock_threshold ({threshold}) is below ordinary "
                f"contention blocking (~{ordinary_blocking} cycles for "
                f"{cfg.noc.flits_per_packet}-flit packets through a "
                f"{cfg.noc.pipeline_stages}-stage router): expect "
                "false-positive probes on every congested cycle"
            ),
            hint=f"raise deadlock_threshold to >= {ordinary_blocking}",
        )


@rule("NOC004", "cyclic channel dependencies require deadlock recovery")
def _noc004_cdg_cycle(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    verdict = ctx.cdg
    if cfg is None or verdict is None or verdict.deadlock_free:
        return
    if cfg.noc.deadlock_recovery_enabled:
        return
    yield Diagnostic(
        rule_id="NOC004",
        severity=Severity.ERROR,
        message=(
            f"routing '{cfg.noc.routing.value}' on "
            f"{cfg.noc.shape_text} {cfg.noc.topology} has a "
            "cyclic channel-dependency graph and deadlock recovery is "
            "disabled: the cycle below can fill and wedge forever"
        ),
        hint=(
            "enable deadlock_recovery_enabled (the Section 3.2 scheme) or "
            "switch to a deadlock-free routing function (xy, west_first on "
            "mesh)"
        ),
        witness=verdict.witness_text,
    )


@rule("NOC005", "deadlock recovery on an acyclic CDG is dead machinery")
def _noc005_recovery_unneeded(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    verdict = ctx.cdg
    if cfg is None or verdict is None or not verdict.deadlock_free:
        return
    if not cfg.noc.deadlock_recovery_enabled:
        return
    yield Diagnostic(
        rule_id="NOC005",
        severity=Severity.WARNING,
        message=(
            f"deadlock recovery is enabled but routing "
            f"'{cfg.noc.routing.value}' is provably deadlock-free on this "
            f"{cfg.noc.topology} (CDG acyclic: {verdict.num_channels} "
            f"channels, {verdict.num_dependencies} dependencies); probes "
            "can only ever be false positives"
        ),
        hint="disable deadlock_recovery_enabled to save probe energy",
    )


@rule("NOC006", "fault rates must be probabilities in a meaningful range")
def _noc006_fault_rates(ctx: LintContext) -> Iterable[Diagnostic]:
    for site, rate in ctx.fault_rates().items():
        if not isinstance(rate, (int, float)):
            yield Diagnostic(
                rule_id="NOC006",
                severity=Severity.ERROR,
                message=f"fault rate for '{site}' is not a number: {rate!r}",
            )
            continue
        if not 0.0 <= rate <= 1.0:
            yield Diagnostic(
                rule_id="NOC006",
                severity=Severity.ERROR,
                message=(
                    f"fault rate for '{site}' is {rate}, outside [0, 1] "
                    "(rates are per-operation upset probabilities)"
                ),
            )
        elif rate > FAULT_RATE_SANE_MAX:
            yield Diagnostic(
                rule_id="NOC006",
                severity=Severity.WARNING,
                message=(
                    f"fault rate for '{site}' is {rate}, beyond the sane "
                    f"ceiling {FAULT_RATE_SANE_MAX} (the paper evaluates up "
                    "to ~1e-2): the network will measure recovery-storm "
                    "behaviour, not service"
                ),
                hint="lower the rate or treat results as stress-test only",
            )


@rule("NOC007", "a VC buffer should hold a whole packet")
def _noc007_vc_depth(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None:
        return
    t = cfg.noc.vc_buffer_depth
    m = cfg.noc.flits_per_packet
    if t >= m:
        return
    yield Diagnostic(
        rule_id="NOC007",
        severity=Severity.WARNING,
        message=(
            f"vc_buffer_depth ({t}) < flits_per_packet ({m}): every blocked "
            "packet spans multiple routers, lengthening dependency chains "
            "and raising deadlock probability (the paper's platform uses "
            "T = M = 4)"
        ),
        hint=f"raise vc_buffer_depth to >= {m}",
    )


@rule("NOC008", "torus + XY relies on wraparound cycles being recovered")
def _noc008_torus_xy(ctx: LintContext) -> Iterable[Diagnostic]:
    if ctx.noc("topology") not in ("torus", "torus3d"):
        return
    if ctx.noc("routing") != "xy":
        return
    shape = ctx.noc("shape")
    if not isinstance(shape, (list, tuple)):
        shape = (ctx.noc("width", 8), ctx.noc("height", 8))
    if all(isinstance(d, int) for d in shape) and max(shape) < 4:
        # Rings of 3 route every hop directly to a neighbour (shortest-path
        # wraparound), so no same-direction channel chain — hence no wrap
        # cycle — can form; the CDG pass confirms this is deadlock-free.
        return
    recovery = bool(ctx.noc("deadlock_recovery_enabled"))
    yield Diagnostic(
        rule_id="NOC008",
        severity=Severity.WARNING if recovery else Severity.ERROR,
        message=(
            "XY on a torus closes cyclic channel dependencies over the "
            "wraparound links (no dateline VC classes are modelled); "
            + (
                "deadlock recovery will break the cycles but adds latency "
                "under load"
                if recovery
                else "with deadlock recovery disabled a full wrap ring "
                "wedges permanently"
            )
        ),
        hint=(
            None
            if recovery
            else "enable deadlock_recovery_enabled or use a mesh"
        ),
    )


@rule("NOC009", "injection rate must be physically achievable")
def _noc009_injection_rate(ctx: LintContext) -> Iterable[Diagnostic]:
    rate = ctx.workload("injection_rate")
    if not isinstance(rate, (int, float)):
        return
    if rate > 1.0:
        yield Diagnostic(
            rule_id="NOC009",
            severity=Severity.ERROR,
            message=(
                f"injection_rate {rate} flits/node/cycle exceeds the link "
                "bandwidth of 1 flit/cycle: source queues grow without "
                "bound and latency is meaningless"
            ),
            hint="choose injection_rate <= 1.0 (paper sweeps 0.05-0.45)",
        )
    elif rate > INJECTION_RATE_SATURATION:
        yield Diagnostic(
            rule_id="NOC009",
            severity=Severity.WARNING,
            message=(
                f"injection_rate {rate} is beyond the ~"
                f"{INJECTION_RATE_SATURATION} saturation point of the "
                "paper's 8x8 mesh under uniform traffic: expect unbounded "
                "queueing delay, not steady-state latency"
            ),
        )


@rule("NOC010", "the cycle budget must plausibly cover the workload")
def _noc010_cycle_budget(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None:
        return
    w = cfg.workload
    rate = min(w.injection_rate, 1.0)
    # Lower bound: the cycles the sources alone need to emit the traffic.
    min_cycles = (
        w.num_messages * cfg.noc.flits_per_packet / (rate * cfg.noc.num_nodes)
    )
    budget = MAX_CYCLES_SAFETY_FACTOR * min_cycles
    if w.max_cycles >= budget:
        return
    yield Diagnostic(
        rule_id="NOC010",
        severity=Severity.WARNING,
        message=(
            f"max_cycles ({w.max_cycles}) is under {MAX_CYCLES_SAFETY_FACTOR}x "
            f"the analytic injection floor (~{math.ceil(min_cycles)} cycles "
            f"for {w.num_messages} messages at rate {w.injection_rate}): "
            "the run is likely to hit the cycle limit before finishing"
        ),
        hint=f"raise max_cycles to >= {math.ceil(budget)}",
    )


@rule("NOC011", "disabling handshake TMR with handshake faults loses signals")
def _noc011_handshake_tmr(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None:
        return
    if cfg.noc.handshake_tmr or not cfg.faults.rate(FaultSite.HANDSHAKE):
        return
    yield Diagnostic(
        rule_id="NOC011",
        severity=Severity.WARNING,
        message=(
            "handshake_tmr is disabled while handshake faults are injected: "
            "single glitches will eat credits and NACKs, leaking buffer "
            "slots and stranding wormholes (the Section 4.6 ablation)"
        ),
        hint="intentional for the ablation; otherwise enable handshake_tmr",
    )


@rule("NOC012", "logic faults without the AC unit become silent packet loss")
def _noc012_ac_unit(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None or cfg.noc.ac_unit_enabled:
        return
    logic_rates = [
        cfg.faults.rate(site)
        for site in (FaultSite.VC_ALLOC, FaultSite.SW_ALLOC, FaultSite.ROUTING)
    ]
    if not any(logic_rates):
        return
    yield Diagnostic(
        rule_id="NOC012",
        severity=Severity.WARNING,
        message=(
            "VA/SA/RT faults are injected with ac_unit_enabled=False: "
            "allocation errors go undetected, causing stranded wormholes "
            "and packet loss (the Section 4.3 ablation)"
        ),
        hint="intentional for the ablation; otherwise enable ac_unit_enabled",
    )


@rule("NOC013", "permanent faults need a routing function that can reroute")
def _noc013_permanent_routing(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None:
        return
    # Wear-out escalation produces the same hard deaths a schedule does.
    escalates = bool(cfg.faults.intermittent) and cfg.faults.wear_out is not None
    if not cfg.faults.permanent and not escalates:
        return
    if cfg.noc.routing in (
        RoutingAlgorithm.XY,
        RoutingAlgorithm.FT_TABLE,
        RoutingAlgorithm.SOURCE,
    ):
        # XY is substituted with fault-aware table routing at run time;
        # source-routed packets carry their own (caller-chosen) paths.
        return
    cause = (
        "a permanent-fault schedule is configured"
        if cfg.faults.permanent
        else "wear-out escalation can kill intermittent sites"
    )
    yield Diagnostic(
        rule_id="NOC013",
        severity=Severity.WARNING,
        message=(
            f"{cause} but routing "
            f"'{cfg.noc.routing.value}' cannot reroute around dead "
            "components: packets whose paths cross them will be dropped"
        ),
        hint="use xy or ft_table routing for fault-aware rerouting",
    )


@rule("NOC014", "a cycle-0 permanent schedule must not partition the mesh")
def _noc014_partition_at_start(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None or not cfg.faults.permanent:
        return
    # Deferred import: repro.analysis.verify builds on this module's
    # neighbours (cdg, config); keep the rule catalogue import-light.
    from repro.analysis.verify import both_alive_pairs, topology_of

    at_start = [f for f in cfg.faults.permanent if f.cycle == 0]
    dead_links = {
        (f.node, f.direction)
        for f in at_start
        if f.kind == "link" and f.direction is not None
    }
    if cfg.noc.num_vcs == 1:
        # A dead VC is the whole link when it is the only VC.
        dead_links |= {
            (f.node, f.direction)
            for f in at_start
            if f.kind == "vc" and f.direction is not None
        }
    dead_routers = {f.node for f in at_start if f.kind == "router"}
    if not dead_links and not dead_routers:
        return
    topology = topology_of(cfg)
    alive = [n for n in topology.nodes() if n not in dead_routers]
    reachable = both_alive_pairs(topology, dead_links, dead_routers)
    severed = len(alive) * (len(alive) - 1) - len(reachable)
    if severed <= 0:
        return
    example = min(
        (src, dst)
        for src in alive
        for dst in alive
        if src != dst and (src, dst) not in reachable
    )
    yield Diagnostic(
        rule_id="NOC014",
        severity=Severity.WARNING,
        message=(
            f"the cycle-0 permanent schedule partitions the "
            f"{cfg.noc.shape_text} {cfg.noc.topology}: "
            f"{severed} of {len(alive) * (len(alive) - 1)} surviving "
            f"router pairs can never communicate (e.g. "
            f"{example[0]}->{example[1]}); their traffic is dropped as "
            "unroutable from the first cycle"
        ),
        hint=(
            "remove a kill to keep the surviving routers connected, or "
            "accept that cross-partition messages count as lost"
        ),
    )


@rule("NOC015", "long intermittent bursts defeat HBH retransmission")
def _noc015_burst_outlasts_retx(ctx: LintContext) -> Iterable[Diagnostic]:
    cfg = ctx.config
    if cfg is None or not cfg.faults.intermittent:
        return
    if cfg.noc.link_protection is not LinkProtection.HBH:
        return
    # A retransmission round trip needs at least MIN_RETX_DEPTH cycles
    # (traversal + check + NACK propagation), so the receiver's give-up
    # clock runs out max_nack_retries * MIN_RETX_DEPTH cycles after the
    # first corrupt arrival.  A burst whose expected on-window covers that
    # whole span corrupts every retry too: give-up is not a tail risk but
    # the expected outcome for any flit caught at the window's start.
    giveup_window = cfg.noc.max_nack_retries * MIN_RETX_DEPTH
    for fault in cfg.faults.intermittent:
        if fault.rate < 0.5 or fault.mean_on < giveup_window:
            continue
        yield Diagnostic(
            rule_id="NOC015",
            severity=Severity.WARNING,
            message=(
                f"intermittent site {fault.node}:{fault.direction.name.lower()}"
                f" bursts for ~{fault.mean_on:g} cycles at strike rate "
                f"{fault.rate:g} — longer than the HBH give-up window of "
                f"{giveup_window} cycles, so flits caught early in a burst "
                "exhaust every retry and are accepted corrupt "
                "(retransmission_giveups)"
            ),
            hint=(
                "shorten mean_on below the give-up window, raise "
                "max_nack_retries, or protect the path with e2e/fec "
                "instead of hbh"
            ),
            witness=(
                f"retry timeline at {fault.node}:"
                f"{fault.direction.name.lower()}:",
                "corrupt arrival at burst cycle 0",
                f"-> {cfg.noc.max_nack_retries} NACK rounds x "
                f">={MIN_RETX_DEPTH} cycles each = give-up by burst cycle "
                f"{giveup_window}",
                f"-> on-window still open for ~{fault.mean_on:g} cycles "
                f"(strike rate {fault.rate:g} corrupts each replay in turn)",
            ),
        )


@rule("NOC016", "checkpoint interval never fires before the run ends")
def _noc016_checkpoint_interval_exceeds_run(
    ctx: LintContext,
) -> Iterable[Diagnostic]:
    interval = ctx.data.get("checkpoint_interval")
    max_cycles = ctx.workload("max_cycles")
    if not isinstance(interval, int) or not isinstance(max_cycles, int):
        return
    if interval < max_cycles:
        return
    # The first checkpoint would fire at cycle `interval`, which the run
    # can never reach: the checkpoint file stays empty, and every
    # supervised retry restarts from cycle 0 — checkpointing is configured
    # but inert (docs/CAMPAIGNS.md).
    yield Diagnostic(
        rule_id="NOC016",
        severity=Severity.WARNING,
        message=(
            f"checkpoint_interval {interval} >= max_cycles {max_cycles}: "
            "the run ends before the first checkpoint is ever written, so "
            "retries cannot resume and always restart from cycle 0"
        ),
        hint=(
            "lower checkpoint_interval well below the workload's "
            "max_cycles (a few checkpoints per attempt), or drop "
            "checkpointing if resume-on-retry is not wanted"
        ),
        witness=(
            f"first checkpoint due at cycle {interval}",
            f"-> run terminates by cycle {max_cycles}",
            "-> checkpoint never written; retry resumes from nothing",
        ),
    )
