"""The config linter: rule catalogue + CDG pass over one or many configs.

Entry points:

* :func:`lint_config` — lint an in-process :class:`SimulationConfig`
  (used by campaigns before burning simulation cycles).
* :func:`lint_dict` — lint a raw serialized config dict; range errors the
  constructors would raise become ``NOC000`` diagnostics instead of
  tracebacks.
* :func:`lint_path` / :func:`lint_paths` — lint JSON config files or
  directories of them (the ``repro lint`` CLI).

The channel-dependency-graph verdict is memoized per (topology, size,
routing) because campaign grids lint hundreds of variants that share a
platform.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.analysis.cdg import CDGVerdict, verify_deadlock_freedom
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.rules import LintContext, run_rules
from repro.config import SimulationConfig
from repro.noc.routing import resolve_routing_function
from repro.noc.topology import make_topology
from repro.serialization import config_from_dict, config_to_dict
from repro.types import RoutingAlgorithm

#: (topology name, shape, routing value, permanent schedule) -> verdict.
_CDG_CACHE: Dict[Tuple[object, ...], CDGVerdict] = {}


def cdg_verdict_for(config: SimulationConfig) -> Optional[CDGVerdict]:
    """The (memoized) CDG verdict for a config's platform.

    Returns None for source routing, which has no static routing relation.
    When the config schedules permanent faults, the verdict covers the
    *fully degraded* topology — every scheduled link/router death applied —
    under the fault-aware table routing the simulator will substitute, so a
    clean verdict certifies the reconfigured routing deadlock-free.
    """
    from repro.noc.routing import FaultAwareRouting

    noc = config.noc
    if noc.routing is RoutingAlgorithm.SOURCE:
        return None
    schedule = config.faults.permanent
    key: Tuple[object, ...] = (
        noc.topology,
        noc.shape,
        noc.routing.value,
        schedule,
    )
    verdict = _CDG_CACHE.get(key)
    if verdict is None:
        topology = make_topology(noc.topology, noc.shape, noc.link_latency)
        routing_fn = resolve_routing_function(noc.routing, topology)
        if schedule and noc.routing in (
            RoutingAlgorithm.XY,
            RoutingAlgorithm.FT_TABLE,
        ):
            # Mirror Network.__init__: these platforms run fault-aware
            # table routing, so verify what will actually execute once the
            # whole schedule has taken effect.
            if not isinstance(routing_fn, FaultAwareRouting):
                routing_fn = FaultAwareRouting(topology)
            dead_links = {
                (f.node, f.direction)
                for f in schedule
                if f.kind == "link" and f.direction is not None
            }
            if noc.num_vcs == 1:
                # A dead VC is the whole link when it is the only VC.
                dead_links |= {
                    (f.node, f.direction)
                    for f in schedule
                    if f.kind == "vc" and f.direction is not None
                }
            dead_routers = {f.node for f in schedule if f.kind == "router"}
            routing_fn.rebuild(dead_links, dead_routers)
        verdict = verify_deadlock_freedom(topology, routing_fn, noc.num_vcs)
        _CDG_CACHE[key] = verdict
    return verdict


def lint_config(
    config: SimulationConfig,
    *,
    cdg: bool = True,
    source: Optional[str] = None,
) -> DiagnosticReport:
    """Run every lint pass against a constructed config."""
    ctx = LintContext(
        data=config_to_dict(config),
        config=config,
        cdg=cdg_verdict_for(config) if cdg else None,
    )
    report = DiagnosticReport(run_rules(ctx))
    return report.with_source(source) if source else report


def lint_dict(
    data: Mapping[str, Any],
    *,
    cdg: bool = True,
    source: Optional[str] = None,
) -> DiagnosticReport:
    """Lint a raw serialized config dict.

    Construction failures are reported as ``NOC000`` (the config is not even
    representable) and the raw-dict rules still run, so a file with e.g. a
    too-shallow retransmission buffer gets the specific ``NOC002`` alongside
    the constructor's complaint.
    """
    config: Optional[SimulationConfig] = None
    failure: Optional[Diagnostic] = None
    try:
        with warnings.catch_warnings():
            # Construction-time advisories (e.g. the Eq. 1 warning) would be
            # duplicates here: the rules report them with ids and hints.
            warnings.simplefilter("ignore")
            config = config_from_dict(dict(data))
    except (ValueError, TypeError, KeyError) as exc:
        failure = Diagnostic(
            rule_id="NOC000",
            severity=Severity.ERROR,
            message=f"config rejected by constructors: {exc}",
            hint="fix the field, then re-lint for semantic rules",
        )
    ctx = LintContext(
        data=data,
        config=config,
        cdg=cdg_verdict_for(config) if (cdg and config is not None) else None,
    )
    report = DiagnosticReport()
    if failure is not None:
        report.add(failure)
    report.extend(run_rules(ctx))
    return report.with_source(source) if source else report


def lint_path(path: Union[str, Path], *, cdg: bool = True) -> DiagnosticReport:
    """Lint one JSON config file, or every ``*.json`` under a directory."""
    return lint_paths([path], cdg=cdg)


def lint_paths(
    paths: Iterable[Union[str, Path]], *, cdg: bool = True
) -> DiagnosticReport:
    """Lint many files/directories into one combined report."""
    report = DiagnosticReport()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(path.rglob("*.json"))
            if not files:
                report.add(
                    Diagnostic(
                        rule_id="NOC000",
                        severity=Severity.WARNING,
                        message="directory contains no *.json config files",
                        source=str(path),
                    )
                )
            for file in files:
                report.extend(_lint_file(file, cdg=cdg))
        else:
            report.extend(_lint_file(path, cdg=cdg))
    return report


def _lint_file(path: Path, *, cdg: bool) -> DiagnosticReport:
    source = str(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        return DiagnosticReport(
            [
                Diagnostic(
                    rule_id="NOC000",
                    severity=Severity.ERROR,
                    message=f"cannot read config file: {exc}",
                    source=source,
                )
            ]
        )
    except json.JSONDecodeError as exc:
        return DiagnosticReport(
            [
                Diagnostic(
                    rule_id="NOC000",
                    severity=Severity.ERROR,
                    message=f"invalid JSON: {exc}",
                    source=source,
                )
            ]
        )
    if not isinstance(data, dict):
        return DiagnosticReport(
            [
                Diagnostic(
                    rule_id="NOC000",
                    severity=Severity.ERROR,
                    message="top-level JSON value must be an object",
                    source=source,
                )
            ]
        )
    return lint_dict(data, cdg=cdg, source=source)
