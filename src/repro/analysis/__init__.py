"""Static analysis and run-time invariant checking — the "NoC linter".

Three passes, all reporting through one diagnostic format
(:mod:`repro.analysis.diagnostics`):

* **CDG pass** (:mod:`repro.analysis.cdg`) — builds the channel-dependency
  graph of a (topology, routing function) pair and proves deadlock freedom
  or produces a concrete witness cycle.
* **Config lint pass** (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.linter`) — the ``NOC0xx`` rule catalogue over
  :class:`~repro.config.SimulationConfig` objects, raw dicts and JSON files;
  wired into ``repro lint`` and campaign startup.
* **Invariant sanitizer** (:mod:`repro.analysis.sanitizer`) — the opt-in
  per-cycle ``SIM1xx`` checks over a live network.
"""

from repro.analysis.cdg import (
    CDGVerdict,
    Channel,
    ChannelDependencyGraph,
    verify_deadlock_freedom,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.linter import (
    cdg_verdict_for,
    lint_config,
    lint_dict,
    lint_path,
    lint_paths,
)
from repro.analysis.rules import LintContext, iter_rules, rule_catalogue
from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolationError

__all__ = [
    "CDGVerdict",
    "Channel",
    "ChannelDependencyGraph",
    "Diagnostic",
    "DiagnosticReport",
    "InvariantSanitizer",
    "InvariantViolationError",
    "LintContext",
    "Severity",
    "cdg_verdict_for",
    "iter_rules",
    "lint_config",
    "lint_dict",
    "lint_path",
    "lint_paths",
    "rule_catalogue",
    "verify_deadlock_freedom",
]
