"""Static routing certification — the ``repro verify`` engine.

Given a (topology, routing function) pair this module *proves*, without
simulating a single cycle:

* **Connectivity** — every expected ``(src, dst)`` pair is guaranteed
  delivery, enumerated exhaustively.  "Guaranteed" is the adversarial
  reading: an adaptive routing function must deliver no matter which
  candidate the allocators happen to pick at every hop.
* **Livelock-freedom** — route traversal is loop-free.  The proof object is
  a *progress metric*: for every certified state we compute the longest
  remaining route (``max_route_length`` is its maximum), and every legal
  hop strictly decreases it, so no packet can revisit a routing state.
  When the proof fails, a concrete witness cycle of routing states is
  reported.
* **Deadlock-freedom** — via the channel-dependency graph
  (:mod:`repro.analysis.cdg`), generalized over the
  :class:`~repro.noc.topology.PortGraph` surface so meshes, tori and
  arbitrary :class:`~repro.noc.topology.GraphTopology` instances verify
  through the same construction.
* **k-fault robustness** — exhaustive single-link-kill and seeded-sample
  multi-kill sweeps re-certify the :class:`FaultAwareRouting` rebuild for
  every degraded topology, so "reconfiguration stays connected and
  deadlock-free" is a checked artifact, not a hope.

The traversal pass works on the *routing-state graph*: one state per
``(node, arrival port)`` for port-aware table routing, one per node
otherwise, expanded per destination.  A state is **certified** iff all of
its successor states are certified (delivery at the destination is the base
case) — computed as a reverse-worklist fixpoint, which simultaneously
yields the progress metric.  States that are not certified either strand
packets (no legal continuation: counted as ``stuck``) or sit on/upstream of
a cycle (the livelock witness).

``repro verify`` exposes this per config; :func:`build_standard_certificate`
pins the repo's standard platforms into the ``CERT_routing.json`` artifact
(regenerated and diffed in CI by ``tools/cert_record.py``) so resilience
regressions are as visible as performance regressions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from random import Random
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.cdg import CDGVerdict, verify_deadlock_freedom
from repro.config import SimulationConfig
from repro.noc.flit import Flit
from repro.noc.routing import (
    FaultAwareRouting,
    RoutingFunction,
    SourceRouting,
    resolve_routing_function,
)
from repro.noc.topology import (
    MeshTopology,
    PortGraph,
    TorusTopology,
    make_topology,
)
from repro.types import Direction, FlitType, RoutingAlgorithm

#: An ordered (src, dst) pair of node ids.
Pair = Tuple[Any, Any]

#: A routing state: (node, arrival port).  The port slot is
#: ``Direction.LOCAL`` at injection for port-aware functions and ``None``
#: throughout for functions that route on (node, dst) alone.
State = Tuple[Any, Any]

#: A directed channel (node, out port) — matches ``FaultAwareRouting``.
Chan = Tuple[Any, Any]

#: How many witnesses of each kind a verdict carries (full counts are
#: always reported; the samples keep artifacts reviewable).
_SAMPLE_CAP = 12

#: Seed for the standard multi-kill sample sweeps (the paper's DSN year).
STANDARD_SWEEP_SEED = 2006


def _probe_header(dst: Any) -> Flit:
    """A minimal header flit for interrogating a routing function."""
    return Flit(-1, 0, FlitType.HEAD, -1, dst)


def _node_text(topology: PortGraph, node: Any) -> str:
    coordinates_of = getattr(topology, "coordinates_of", None)
    if coordinates_of is not None:
        c = coordinates_of(node)
        return f"({c.x},{c.y})"
    return str(node)


def _state_text(topology: PortGraph, state: State) -> str:
    node, in_port = state
    where = _node_text(topology, node)
    if in_port is None:
        return where
    port = getattr(in_port, "name", None) or str(in_port)
    return f"{where} in:{port}"


def _pair_text(topology: PortGraph, pair: Pair) -> str:
    return f"{_node_text(topology, pair[0])}->{_node_text(topology, pair[1])}"


def _chan_text(topology: PortGraph, chan: Chan) -> str:
    port = getattr(chan[1], "name", None) or str(chan[1])
    return f"{_node_text(topology, chan[0])}:{port.lower()}"


@dataclass(frozen=True)
class TraversalVerdict:
    """Outcome of the exhaustive route-traversal pass.

    ``connected`` covers exactly the ``expected_pairs`` the caller asked
    about (all ordered pairs by default; the pairs the surviving topology
    can physically serve during fault sweeps).  ``max_route_length`` is the
    maximum of the progress metric over certified injection states: the
    longest route any delivered packet can take, hence a hard hop bound.
    """

    connected: bool
    livelock_free: bool
    delivered_pairs: int
    expected_pairs: int
    total_pairs: int
    max_route_length: int
    #: Pairs delivered beyond the expected set: best-effort routes over
    #: half-alive (one-way) channels.  Informational, not certified.
    extra_pairs: int = 0
    missing_pairs: Tuple[str, ...] = ()
    stuck_states: Tuple[str, ...] = ()
    livelock_witness: Tuple[str, ...] = ()
    progress_metric: str = "longest-remaining-route"

    def to_dict(self) -> Dict[str, object]:
        return {
            "connected": self.connected,
            "livelock_free": self.livelock_free,
            "delivered_pairs": self.delivered_pairs,
            "expected_pairs": self.expected_pairs,
            "total_pairs": self.total_pairs,
            "extra_pairs": self.extra_pairs,
            "max_route_length": self.max_route_length,
            "progress_metric": self.progress_metric,
            "missing_pairs": list(self.missing_pairs),
            "stuck_states": list(self.stuck_states),
            "livelock_witness": list(self.livelock_witness),
        }


@dataclass(frozen=True)
class RoutingCertificate:
    """The combined static certificate of one (topology, routing) pair."""

    traversal: TraversalVerdict
    cdg: CDGVerdict

    @property
    def connected(self) -> bool:
        return self.traversal.connected

    @property
    def livelock_free(self) -> bool:
        return self.traversal.livelock_free

    @property
    def deadlock_free(self) -> bool:
        return self.cdg.deadlock_free

    @property
    def certified(self) -> bool:
        return self.connected and self.livelock_free and self.deadlock_free

    def to_dict(self) -> Dict[str, object]:
        out = self.traversal.to_dict()
        out.update(self.cdg.to_dict())
        out["certified"] = self.certified
        return out


def certify_traversal(
    topology: PortGraph,
    routing_fn: RoutingFunction,
    expected_pairs: Optional[Iterable[Pair]] = None,
) -> TraversalVerdict:
    """Exhaustively certify delivery for every (src, dst) pair.

    Raises :class:`ValueError` for source routing (routes live in packets,
    not in a statically analyzable function), exactly like the CDG pass.
    """
    if isinstance(routing_fn, SourceRouting):
        raise ValueError(
            "source routing has no static routing relation to certify"
        )
    nodes = sorted(topology.nodes())
    total_pairs = len(nodes) * (len(nodes) - 1)
    if expected_pairs is None:
        expected: Set[Pair] = {
            (src, dst) for dst in nodes for src in nodes if src != dst
        }
    else:
        expected = set(expected_pairs)
    port_aware = bool(getattr(routing_fn, "port_aware", False))

    delivered: Set[Pair] = set()
    missing: List[Pair] = []
    stuck: List[str] = []
    witness: List[str] = []
    stuck_count = 0
    max_route_length = 0

    for dst in nodes:
        result = _certify_destination(topology, routing_fn, dst, port_aware)
        reached, dst_stuck, dst_witness, dst_height = result
        delivered.update((src, dst) for src in reached)
        stuck_count += len(dst_stuck)
        for state in dst_stuck:
            if len(stuck) < _SAMPLE_CAP:
                stuck.append(
                    f"dst {_node_text(topology, dst)}: "
                    f"{_state_text(topology, state)}"
                )
        if dst_witness and not witness:
            witness = [_state_text(topology, s) for s in dst_witness]
            witness.append(f"(cycle; dst {_node_text(topology, dst)})")
        max_route_length = max(max_route_length, dst_height)

    for pair in sorted(expected):
        if pair not in delivered and len(missing) < _SAMPLE_CAP:
            missing.append(pair)
    connected = expected <= delivered
    return TraversalVerdict(
        connected=connected,
        livelock_free=not witness,
        delivered_pairs=len(delivered & expected),
        expected_pairs=len(expected),
        total_pairs=total_pairs,
        extra_pairs=len(delivered - expected),
        max_route_length=max_route_length,
        missing_pairs=tuple(_pair_text(topology, p) for p in missing),
        stuck_states=tuple(stuck),
        livelock_witness=tuple(witness),
    )


def certified_pairs(
    topology: PortGraph, routing_fn: RoutingFunction
) -> FrozenSet[Pair]:
    """The exact set of (src, dst) pairs certified guaranteed-delivery.

    The pair-level companion of :func:`certify_traversal`, used by the
    simulation cross-check tests: every certified pair must deliver in the
    simulator, every uncertified pair must not (be dropped or refused).
    """
    if isinstance(routing_fn, SourceRouting):
        raise ValueError(
            "source routing has no static routing relation to certify"
        )
    port_aware = bool(getattr(routing_fn, "port_aware", False))
    out: Set[Pair] = set()
    for dst in sorted(topology.nodes()):
        reached, _, _, _ = _certify_destination(
            topology, routing_fn, dst, port_aware
        )
        out.update((src, dst) for src in reached)
    return frozenset(out)


def _certify_destination(
    topology: PortGraph,
    routing_fn: RoutingFunction,
    dst: Any,
    port_aware: bool,
) -> Tuple[Set[Any], List[State], List[State], int]:
    """One destination's traversal: (delivering srcs, stuck states,
    livelock witness cycle, max certified route length)."""
    probe = _probe_header(dst)

    def successors(state: State) -> Optional[List[State]]:
        """Successor states, or None when the state itself misroutes
        (ejects away from dst / routes off a missing link)."""
        node, in_port = state
        if port_aware:
            dirs = routing_fn.candidates_from(  # type: ignore[attr-defined]
                topology, node, in_port, probe
            )
        else:
            dirs = routing_fn.candidates(topology, node, probe)
        out: List[State] = []
        for d in dirs:
            if d is Direction.LOCAL:
                # Ejecting anywhere but dst is a misroute.
                return None if node != dst else out
            neighbor = topology.neighbor(node, d)
            if neighbor is None:
                return None
            arrival = topology.arrival_port(node, d) if port_aware else None
            out.append((neighbor, arrival))
        return out

    # Forward reachability from every injection state.
    injection: Dict[Any, State] = {
        src: (src, Direction.LOCAL if port_aware else None)
        for src in topology.nodes()
        if src != dst
    }
    succ: Dict[State, Optional[List[State]]] = {}
    order: List[State] = []
    frontier: List[State] = list(injection.values())
    seen: Set[State] = set(frontier)
    while frontier:
        state = frontier.pop()
        order.append(state)
        if state[0] == dst:
            succ[state] = []
            continue
        nxt = successors(state)
        succ[state] = nxt
        for n in nxt or ():
            if n not in seen:
                seen.add(n)
                frontier.append(n)

    # Certified fixpoint (reverse worklist): a state is certified when all
    # of its successors are; arrival at dst is the base case.  Heights are
    # exact longest-remaining-route values: a state's height is final when
    # it is certified because every successor was certified first.
    preds: Dict[State, List[State]] = {}
    remaining: Dict[State, int] = {}
    queue: deque = deque()
    stuck: List[State] = []
    for state in order:
        if state[0] == dst:
            queue.append(state)
            continue
        nxt = succ[state]
        if not nxt:  # None (misroute) or [] (no legal continuation)
            stuck.append(state)
            continue
        remaining[state] = len(nxt)
        for n in nxt:
            preds.setdefault(n, []).append(state)
    certified: Set[State] = set()
    height: Dict[State, int] = {}
    while queue:
        state = queue.popleft()
        if state in certified:
            continue
        certified.add(state)
        nxt = succ[state]
        height[state] = (
            0 if state[0] == dst else 1 + max(height[n] for n in nxt or ())
        )
        for p in preds.get(state, ()):
            remaining[p] -= 1
            if remaining[p] == 0:
                queue.append(p)

    reached = {
        src for src, state in injection.items() if state in certified
    }
    max_height = max(
        (height[state] for state in injection.values() if state in certified),
        default=0,
    )
    witness = _find_state_cycle(order, succ, certified)
    return reached, stuck, witness, max_height


def _find_state_cycle(
    order: Sequence[State],
    succ: Dict[State, Optional[List[State]]],
    certified: Set[State],
) -> List[State]:
    """A cycle among uncertified states, if one exists.

    Edges into certified states cannot close a cycle (certified states
    provably terminate), so the search runs on the uncertified residue.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[State, int] = {}
    for root in order:
        if root in certified or colour.get(root, WHITE) != WHITE:
            continue
        path: List[State] = [root]
        stack: List[Tuple[State, List[State]]] = [
            (root, _uncertified_successors(root, succ, certified))
        ]
        colour[root] = GREY
        while stack:
            state, successors = stack[-1]
            advanced = False
            while successors:
                nxt = successors.pop(0)
                if colour.get(nxt, WHITE) == GREY:
                    return path[path.index(nxt):]
                if colour.get(nxt, WHITE) == WHITE:
                    colour[nxt] = GREY
                    path.append(nxt)
                    stack.append(
                        (nxt, _uncertified_successors(nxt, succ, certified))
                    )
                    advanced = True
                    break
            if not advanced:
                colour[state] = BLACK
                path.pop()
                stack.pop()
    return []


def _uncertified_successors(
    state: State,
    succ: Dict[State, Optional[List[State]]],
    certified: Set[State],
) -> List[State]:
    return [n for n in succ.get(state) or () if n not in certified]


def certify_routing(
    topology: PortGraph,
    routing_fn: RoutingFunction,
    *,
    num_vcs: int = 1,
    expected_pairs: Optional[Iterable[Pair]] = None,
) -> RoutingCertificate:
    """The full static certificate: traversal pass + CDG pass."""
    traversal = certify_traversal(topology, routing_fn, expected_pairs)
    cdg = verify_deadlock_freedom(topology, routing_fn, num_vcs)
    return RoutingCertificate(traversal=traversal, cdg=cdg)


# ---------------------------------------------------------------------------
# Fault sweeps
# ---------------------------------------------------------------------------


def directed_channels(topology: PortGraph) -> List[Chan]:
    """Every directed inter-router channel, in deterministic order."""
    return [
        (node, port)
        for node in sorted(topology.nodes())
        for port in topology.connected_directions(node)
    ]


def both_alive_pairs(
    topology: PortGraph,
    dead_links: Iterable[Chan] = (),
    dead_routers: Iterable[Any] = (),
) -> FrozenSet[Pair]:
    """The ordered pairs the degraded topology is *expected* to serve.

    These are pairs connected in the undirected graph whose edges survive
    in **both** directions — exactly the pairs
    :class:`~repro.noc.routing.FaultAwareRouting` guarantees routable
    (up* to the component root, then down*).  Pairs joined only by one-way
    channels are best-effort and excluded from the connectivity criterion.
    """
    dead_link_set = set(dead_links)
    dead_router_set = set(dead_routers)
    alive: Set[Chan] = set()
    for node in topology.nodes():
        if node in dead_router_set:
            continue
        for port in topology.connected_directions(node):
            neighbor = topology.neighbor(node, port)
            if neighbor is None or neighbor in dead_router_set:
                continue
            if (node, port) not in dead_link_set:
                alive.add((node, port))
    undirected: Dict[Any, List[Any]] = {}
    for node, port in sorted(alive):
        neighbor = topology.neighbor(node, port)
        back = topology.arrival_port(node, port)
        if back is not None and (neighbor, back) in alive:
            undirected.setdefault(node, []).append(neighbor)
    component: Dict[Any, int] = {}
    for root in sorted(topology.nodes()):
        if root in component or root in dead_router_set:
            continue
        label = len(component)
        component[root] = label
        frontier = deque([root])
        while frontier:
            node = frontier.popleft()
            for neighbor in undirected.get(node, ()):
                if neighbor not in component:
                    component[neighbor] = label
                    frontier.append(neighbor)
    members: Dict[int, List[Any]] = {}
    for node in sorted(component):
        members.setdefault(component[node], []).append(node)
    pairs: Set[Pair] = set()
    for group in members.values():
        pairs.update((a, b) for a in group for b in group if a != b)
    return frozenset(pairs)


@dataclass(frozen=True)
class FaultSweepVerdict:
    """Aggregate certificate over a family of degraded topologies."""

    kind: str
    kills_per_trial: int
    trials: int
    all_connected: bool
    all_livelock_free: bool
    all_deadlock_free: bool
    min_delivered_fraction: float
    failures: Tuple[str, ...] = ()
    seed: Optional[int] = None

    @property
    def certified(self) -> bool:
        return (
            self.all_connected
            and self.all_livelock_free
            and self.all_deadlock_free
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "kills_per_trial": self.kills_per_trial,
            "trials": self.trials,
            "all_connected": self.all_connected,
            "all_livelock_free": self.all_livelock_free,
            "all_deadlock_free": self.all_deadlock_free,
            "min_delivered_fraction": round(self.min_delivered_fraction, 6),
            "certified": self.certified,
            "failures": list(self.failures),
        }
        if self.seed is not None:
            out["seed"] = self.seed
        return out


def certify_fault_trial(
    topology: PortGraph,
    dead_links: Sequence[Chan],
    *,
    num_vcs: int = 1,
) -> RoutingCertificate:
    """Certify the FaultAwareRouting rebuild for one kill set."""
    routing_fn = FaultAwareRouting(topology, dead_links=dead_links)
    expected = both_alive_pairs(topology, dead_links)
    return certify_routing(
        topology, routing_fn, num_vcs=num_vcs, expected_pairs=expected
    )


def _sweep(
    topology: PortGraph,
    kill_sets: Sequence[Sequence[Chan]],
    kind: str,
    kills_per_trial: int,
    *,
    num_vcs: int = 1,
    seed: Optional[int] = None,
) -> FaultSweepVerdict:
    all_connected = True
    all_livelock_free = True
    all_deadlock_free = True
    min_fraction = 1.0
    failures: List[str] = []
    for dead_links in kill_sets:
        cert = certify_fault_trial(topology, dead_links, num_vcs=num_vcs)
        expected = cert.traversal.expected_pairs
        # Fraction of *expected* pairs actually certified deliverable.
        fraction = (
            1.0 if expected == 0
            else cert.traversal.delivered_pairs / expected
        )
        min_fraction = min(min_fraction, fraction)
        all_connected &= cert.connected
        all_livelock_free &= cert.livelock_free
        all_deadlock_free &= cert.deadlock_free
        if not cert.certified and len(failures) < _SAMPLE_CAP:
            kills = "+".join(_chan_text(topology, c) for c in dead_links)
            problems = []
            if not cert.connected:
                problems.append(
                    f"disconnected ({cert.traversal.missing_pairs[:3]})"
                )
            if not cert.livelock_free:
                problems.append("livelock")
            if not cert.deadlock_free:
                problems.append("deadlock")
            failures.append(f"kill {kills}: {', '.join(problems)}")
    return FaultSweepVerdict(
        kind=kind,
        kills_per_trial=kills_per_trial,
        trials=len(kill_sets),
        all_connected=all_connected,
        all_livelock_free=all_livelock_free,
        all_deadlock_free=all_deadlock_free,
        min_delivered_fraction=min_fraction,
        failures=tuple(failures),
        seed=seed,
    )


def sweep_single_link_kills(
    topology: PortGraph, *, num_vcs: int = 1
) -> FaultSweepVerdict:
    """Exhaustive robustness sweep: every directed channel killed alone."""
    kill_sets = [[chan] for chan in directed_channels(topology)]
    return _sweep(
        topology, kill_sets, "single-link-exhaustive", 1, num_vcs=num_vcs
    )


def sweep_multi_link_kills(
    topology: PortGraph,
    kills: int,
    trials: int,
    seed: int,
    *,
    num_vcs: int = 1,
) -> FaultSweepVerdict:
    """Seeded-sample robustness sweep: ``trials`` random ``kills``-sized
    kill sets (reproducible for a given seed)."""
    channels = directed_channels(topology)
    rng = Random(seed)
    kill_sets = [
        sorted(rng.sample(channels, min(kills, len(channels))))
        for _ in range(trials)
    ]
    return _sweep(
        topology,
        kill_sets,
        "multi-link-sample",
        kills,
        num_vcs=num_vcs,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Config-level certification and the standard artifact
# ---------------------------------------------------------------------------


def static_routing_for(
    config: SimulationConfig, topology: PortGraph
) -> Tuple[RoutingFunction, Optional[FrozenSet[Pair]]]:
    """The routing function the simulator will statically settle into,
    with every scheduled permanent fault applied, plus the expected pairs
    (None means "all pairs" — no permanent degradation).

    Mirrors ``Network.__init__``: XY and FT_TABLE platforms substitute
    fault-aware table routing when a permanent schedule is present.
    """
    noc = config.noc
    routing_fn = resolve_routing_function(noc.routing, topology)
    schedule = config.faults.permanent
    if not schedule or noc.routing not in (
        RoutingAlgorithm.XY,
        RoutingAlgorithm.FT_TABLE,
    ):
        return routing_fn, None
    if not isinstance(routing_fn, FaultAwareRouting):
        routing_fn = FaultAwareRouting(topology)
    dead_links = {
        (f.node, f.direction)
        for f in schedule
        if f.kind == "link" and f.direction is not None
    }
    if noc.num_vcs == 1:
        # A dead VC is the whole link when it is the only VC.
        dead_links |= {
            (f.node, f.direction)
            for f in schedule
            if f.kind == "vc" and f.direction is not None
        }
    dead_routers = {f.node for f in schedule if f.kind == "router"}
    routing_fn.rebuild(dead_links, dead_routers)
    expected = both_alive_pairs(topology, dead_links, dead_routers)
    return routing_fn, expected


def topology_of(config: SimulationConfig) -> MeshTopology:
    """The topology instance a config describes."""
    noc = config.noc
    return make_topology(noc.topology, noc.shape, noc.link_latency)


def certify_config(
    config: SimulationConfig,
    *,
    single_link_kills: bool = False,
    multi_kills: Sequence[int] = (),
    samples: int = 12,
    seed: int = STANDARD_SWEEP_SEED,
    name: Optional[str] = None,
) -> Dict[str, object]:
    """Certify one config; returns the JSON-ready certificate entry.

    The base certificate covers the routing the simulator will actually
    run once the config's whole permanent-fault schedule has taken effect.
    ``single_link_kills``/``multi_kills`` add FaultAwareRouting robustness
    sweeps on top (independent of the schedule — they certify the rebuild
    machinery itself).
    """
    noc = config.noc
    topology = topology_of(config)
    routing_fn, expected = static_routing_for(config, topology)
    cert = certify_routing(
        topology,
        routing_fn,
        num_vcs=noc.num_vcs,
        expected_pairs=expected,
    )
    platform: Dict[str, object] = {
        "topology": noc.topology,
        "routing": noc.routing.value,
        "num_vcs": noc.num_vcs,
        "permanent_faults": config.faults.permanent.to_dicts(),
    }
    # Same normalization as the config serializer: plain 2D unit-latency
    # platforms keep the historical width/height keys (so the committed
    # CERT artifact stays byte-stable); generalized platforms carry shape
    # (and link_latency).
    if noc.ndim == 2 and noc.max_link_latency == 1:
        platform["width"], platform["height"] = noc.shape
    else:
        platform["shape"] = list(noc.shape)
        latency = noc.link_latency
        platform["link_latency"] = (
            latency if isinstance(latency, int) else list(latency)
        )
    entry: Dict[str, object] = {
        "platform": platform,
        "routing": cert.to_dict(),
    }
    if name is not None:
        entry["name"] = name
    if single_link_kills:
        entry["single_link_kills"] = sweep_single_link_kills(
            topology, num_vcs=noc.num_vcs
        ).to_dict()
    if multi_kills:
        entry["multi_link_kills"] = [
            sweep_multi_link_kills(
                topology, k, samples, seed, num_vcs=noc.num_vcs
            ).to_dict()
            for k in multi_kills
        ]
    return entry


#: The pinned platforms of the ``CERT_routing.json`` artifact.  ``expect``
#: states the properties the repo *relies on*; ``tools/cert_record.py
#: --check`` fails when a regeneration breaks one, independently of the
#: file diff.
STANDARD_TARGETS: Tuple[Dict[str, Any], ...] = (
    {
        "name": "mesh5x5_xy",
        "noc": {"shape": (5, 5), "routing": "xy"},
        "expect": {"certified": True},
    },
    {
        "name": "mesh5x5_west_first",
        "noc": {"shape": (5, 5), "routing": "west_first"},
        "expect": {"certified": True},
    },
    {
        "name": "mesh5x5_ft_table",
        "noc": {"shape": (5, 5), "routing": "ft_table"},
        "single_link_kills": True,
        "multi_kills": (2, 3),
        "expect": {
            "certified": True,
            "single_link_kills_certified": True,
            "multi_link_kills_certified": True,
        },
    },
    {
        "name": "mesh8x8_xy",
        "noc": {"shape": (8, 8), "routing": "xy"},
        "expect": {"certified": True},
    },
    {
        "name": "mesh8x8_west_first",
        "noc": {"shape": (8, 8), "routing": "west_first"},
        "expect": {"certified": True},
    },
    {
        "name": "torus5x5_xy",
        "noc": {"shape": (5, 5), "topology": "torus", "routing": "xy"},
        # The known negative: torus XY closes wrap cycles; the artifact
        # pins the witness so the flag can never silently disappear.
        "expect": {"certified": False, "deadlock_free": False},
    },
    {
        "name": "mesh3x3x3_dor",
        # The pinned 3D stack: dimension-ordered routing over 7-port
        # routers with 2-cycle TSVs, plus the single-TSV/planar-link kill
        # robustness sweep of the fault-aware rebuild.
        "noc": {
            "shape": (3, 3, 3),
            "topology": "mesh3d",
            "routing": "xy",
            "link_latency": (1, 1, 2),
            "retx_buffer_depth": 5,
        },
        "single_link_kills": True,
        "expect": {
            "certified": True,
            "single_link_kills_certified": True,
        },
    },
)

#: Bumped when the certificate schema changes shape incompatibly.
CERT_VERSION = 1


def _target_config(target: Dict[str, Any]) -> SimulationConfig:
    from repro.config import NoCConfig

    noc = dict(target["noc"])
    noc.setdefault("num_vcs", 3)
    noc["routing"] = RoutingAlgorithm(noc["routing"])
    return SimulationConfig(noc=NoCConfig(**noc))


def check_expectations(entry: Dict[str, Any], expect: Dict[str, Any]) -> List[str]:
    """Expectation violations of one certificate entry (empty = ok)."""
    routing = entry.get("routing", {})
    problems: List[str] = []
    for key, wanted in sorted(expect.items()):
        if key == "single_link_kills_certified":
            actual = entry.get("single_link_kills", {}).get("certified")
        elif key == "multi_link_kills_certified":
            sweeps = entry.get("multi_link_kills", [])
            actual = bool(sweeps) and all(s.get("certified") for s in sweeps)
        else:
            actual = routing.get(key)
        if actual != wanted:
            problems.append(
                f"{entry.get('name', '?')}: expected {key}={wanted}, got {actual}"
            )
    return problems


def build_standard_certificate() -> Dict[str, object]:
    """Regenerate the full ``CERT_routing.json`` payload (deterministic:
    no timestamps, fixed seeds, sorted traversal orders)."""
    targets: List[Dict[str, object]] = []
    for target in STANDARD_TARGETS:
        entry = certify_config(
            _target_config(target),
            single_link_kills=bool(target.get("single_link_kills")),
            multi_kills=tuple(target.get("multi_kills", ())),
            seed=STANDARD_SWEEP_SEED,
            name=str(target["name"]),
        )
        entry["expect"] = dict(target["expect"])
        targets.append(entry)
    return {
        "schema": "repro/v1",
        "artifact": "CERT_routing",
        "cert_version": CERT_VERSION,
        "sweep_seed": STANDARD_SWEEP_SEED,
        "targets": targets,
    }
