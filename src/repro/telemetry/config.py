"""Telemetry configuration.

Kept free of any :mod:`repro.config` import: ``SimulationConfig`` embeds a
:class:`TelemetryConfig`, so this module must sit below it in the import
graph (the same arrangement :mod:`repro.faults.permanent` uses for
``FaultConfig.permanent``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class TelemetryConfig:
    """What the telemetry layer records, and how much it may retain.

    Parameters
    ----------
    enabled:
        Master switch.  When False the network carries no bus at all
        (``Network.telemetry is None``) and no callback fires anywhere —
        the zero-cost-when-disabled guarantee the benchmark floors rely on.
    metrics_interval:
        Cycles between time-series samples.  Every ``metrics_interval``-th
        cycle the bus walks the network once and appends one sample per
        (metric, component) series.
    series_capacity:
        Ring-buffer depth per series: only the most recent
        ``series_capacity`` samples of each series are retained.
    max_events:
        Hard cap on retained events.  Once reached, further events are
        dropped (newest-dropped, counted in ``dropped_events``) so a
        saturation run cannot grow memory without bound.  The flight
        recorder keeps running regardless.
    flight_recorder_depth:
        Length of the last-K-events flight recorder ring used for
        forensics dumps on deadlock detection or sanitizer violations.
    events:
        Record discrete events (flit drops, NACKs, probes, faults, ...).
    series:
        Record sampled time-series (utilization, occupancy, rates, ...).
    """

    enabled: bool = False
    metrics_interval: int = 100
    series_capacity: int = 512
    max_events: int = 100_000
    flight_recorder_depth: int = 256
    events: bool = True
    series: bool = True

    def __post_init__(self) -> None:
        if self.metrics_interval < 1:
            raise ValueError("metrics_interval must be at least one cycle")
        if self.series_capacity < 1:
            raise ValueError("series_capacity must be positive")
        if self.max_events < 1:
            raise ValueError("max_events must be positive")
        if self.flight_recorder_depth < 1:
            raise ValueError("flight_recorder_depth must be positive")

    def replace(self, **changes: object) -> "TelemetryConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "TelemetryConfig":
        """Inverse of :meth:`to_dict`; ``None``/missing keys take defaults
        so configs serialized before the telemetry layer still load."""
        if not data:
            return cls()
        return cls(
            enabled=data.get("enabled", False),
            metrics_interval=data.get("metrics_interval", 100),
            series_capacity=data.get("series_capacity", 512),
            max_events=data.get("max_events", 100_000),
            flight_recorder_depth=data.get("flight_recorder_depth", 256),
            events=data.get("events", True),
            series=data.get("series", True),
        )
