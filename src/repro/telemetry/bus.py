"""The telemetry event bus and per-component time-series sampler.

One :class:`TelemetryBus` serves a whole network.  Components *publish*
structured events at the sites where the corresponding state change happens
(a NACK sent, a flit replayed, a probe launched, a permanent fault struck);
the network calls :meth:`TelemetryBus.on_cycle_end` once per cycle, and
every ``metrics_interval`` cycles the bus samples per-component gauges into
bounded ring buffers.

Determinism: the bus draws no randomness and publishes only from state
changes that are themselves bit-for-bit identical between the two cycle
loops (see ``docs/PERFORMANCE.md``), so with telemetry enabled the
activity-driven and full loops produce *identical* event streams and
samples — ``tests/noc/test_fast_path_equivalence.py`` enforces this.

When telemetry is disabled no bus exists at all (``Network.telemetry is
None``); every publish site is guarded by a single ``is not None`` check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Tuple

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.report import TelemetryReport

#: Every event kind the simulator publishes.  ``tools/validate_telemetry.py``
#: and the NDJSON validator reject lines naming anything else, so additions
#: here must ride with a docs/OBSERVABILITY.md taxonomy entry.
EVENT_KINDS = frozenset(
    {
        "flit_drop",  # receiver discarded a flit (reason in data)
        "flit_replay",  # NACK rollback queued flits for retransmission
        "nack",  # receiver sent a NACK (kind: link|route)
        "retransmission_giveup",  # corrupt flit accepted after max retries
        "vc_alloc_fail",  # VA requesters left without a grant this cycle
        "probe_launch",  # Rule-1 deadlock probe sent
        "probe_return",  # own probe returned (deadlock: true|false)
        "deadlock_recovery",  # a router entered recovery mode
        "permanent_fault",  # a scheduled hard fault took effect
        "reroute",  # fault-aware routing tables rebuilt
        "transient_fault",  # the injector landed an upset (site in data)
        "burst_start",  # an intermittent site's on-window opened
        "burst_end",  # an intermittent site's on-window closed
        "wear_out_escalation",  # accumulated stress turned a site hard-dead
        "packet_lost",  # a packet reached a terminal loss
        "trace_sighting",  # PacketTracer observation (opt-in, very chatty)
        "sanitizer_violation",  # SIM1xx invariant check failed
    }
)

#: Metrics the sampler emits, with their component-key shape.
SERIES_METRICS = {
    "link_utilization": "link",  # component "<src>:<dir>", flits/cycle
    "vc_occupancy": "router",  # component "<node>", buffered flits
    "retx_pressure": "router",  # component "<node>", occupied/capacity
    "injection_rate": "ni",  # component "<node>", flits/cycle
    "ejection_rate": "ni",  # component "<node>", flits/cycle
    "in_flight_flits": "global",  # component "global"
    "delivered_packets": "global",
    "lost_packets": "global",
    "ctr_flits_retransmitted": "global",  # cumulative stats counter
    "ctr_flits_dropped": "global",
}


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured event on the shared simulation timeline."""

    cycle: int
    kind: str
    node: int = -1
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": "event",
            "cycle": self.cycle,
            "kind": self.kind,
            "node": self.node,
        }
        if self.data:
            out["data"] = self.data
        return out


class _NetworkSampler:
    """Snapshots per-component gauges; pure reads, no state changes."""

    def __init__(self, network: Any):
        self.network = network
        self._mesh_links = [
            link for link in network.links if not link.is_local
        ]
        self._last_traversals = [0] * len(self._mesh_links)
        n = network.topology.num_nodes
        self._last_sent = [0] * n
        self._last_ejected = [0] * n

    def sample(self, record, cycle: int, interval: float) -> None:
        """Append one sample per series; ``record(metric, component, cycle,
        value)`` is the bus's ring-buffer writer."""
        net = self.network
        for i, link in enumerate(self._mesh_links):
            total = link.flit_traversals
            record(
                "link_utilization",
                link.telemetry_id,
                cycle,
                (total - self._last_traversals[i]) / interval,
            )
            self._last_traversals[i] = total
        for router in net.routers:
            node = str(router.node)
            record("vc_occupancy", node, cycle, float(router.buffered_flits))
            capacity = router.retx_capacity
            pressure = router.retx_occupancy / capacity if capacity else 0.0
            record("retx_pressure", node, cycle, pressure)
        for ni in net.interfaces:
            node = str(ni.node)
            sent = ni.flits_sent
            record(
                "injection_rate",
                node,
                cycle,
                (sent - self._last_sent[ni.node]) / interval,
            )
            self._last_sent[ni.node] = sent
            ejected = ni.flits_ejected
            record(
                "ejection_rate",
                node,
                cycle,
                (ejected - self._last_ejected[ni.node]) / interval,
            )
            self._last_ejected[ni.node] = ejected
        record("in_flight_flits", "global", cycle, float(net.in_flight_flits))
        record("delivered_packets", "global", cycle, float(net.delivered))
        record("lost_packets", "global", cycle, float(net.lost))
        counters = net.stats.snapshot(("flits_retransmitted", "flits_dropped"))
        record(
            "ctr_flits_retransmitted",
            "global",
            cycle,
            float(counters["flits_retransmitted"]),
        )
        record(
            "ctr_flits_dropped", "global", cycle, float(counters["flits_dropped"])
        )


class TelemetryBus:
    """Collects events and sampled series for one simulation run."""

    def __init__(self, config: TelemetryConfig):
        self.config = config
        self.events: List[TelemetryEvent] = []
        self.dropped_events = 0
        #: Last-K-events ring for forensics; always on, even past the
        #: ``max_events`` cap, so the *end* of a pathological run is kept.
        self.flight: Deque[TelemetryEvent] = deque(
            maxlen=config.flight_recorder_depth
        )
        #: Flight-recorder snapshots taken when a deadlock was detected
        #: (bounded; the first few deadlocks are the interesting ones).
        self.deadlock_snapshots: List[Tuple[int, List[TelemetryEvent]]] = []
        self._max_snapshots = 4
        self._series: Dict[Tuple[str, str], Deque[Tuple[int, float]]] = {}
        self._series_capacity = config.series_capacity
        self._events_on = config.events
        self._series_on = config.series
        self._interval = config.metrics_interval
        self._sampler: Any = None

    # -- publishing ---------------------------------------------------------

    def publish(self, cycle: int, kind: str, node: int = -1, /, **data: Any) -> None:
        """Record one event.  ``data`` values must be JSON-safe scalars.

        The first three parameters are positional-only so that ``data`` may
        itself carry keys named ``kind`` or ``node`` (e.g. a NACK's
        ``kind="link"``)."""
        if not self._events_on:
            return
        event = TelemetryEvent(cycle, kind, node, data)
        self.flight.append(event)
        if len(self.events) < self.config.max_events:
            self.events.append(event)
        else:
            self.dropped_events += 1
        if (
            kind == "probe_return"
            and data.get("deadlock")
            and len(self.deadlock_snapshots) < self._max_snapshots
        ):
            self.deadlock_snapshots.append((cycle, list(self.flight)))

    def flight_dicts(self) -> List[Dict[str, Any]]:
        """The flight recorder's current contents, JSON-safe (oldest first)."""
        return [event.to_dict() for event in self.flight]

    # -- sampling -----------------------------------------------------------

    def attach(self, network: Any) -> None:
        """Bind the sampler to a fully wired network (called once by
        ``Network.__init__`` after links and interfaces exist).

        A network carrying a batched kernel gets the kernel's own sampler,
        which reads the flat arrays but emits byte-identical series
        (``repro.noc.kernel.KernelSampler``)."""
        if self._series_on:
            kernel = getattr(network, "kernel", None)
            if kernel is not None:
                self._sampler = kernel.make_sampler()
            else:
                self._sampler = _NetworkSampler(network)

    def on_cycle_end(self, network: Any) -> None:
        """Called by both cycle loops at the end of every cycle (before the
        cycle counter increments)."""
        sampler = self._sampler
        if sampler is None:
            return
        cycle = network.cycle + 1
        if cycle % self._interval == 0:
            sampler.sample(self._record, cycle, float(self._interval))

    def _record(self, metric: str, component: str, cycle: int, value: float) -> None:
        key = (metric, component)
        ring = self._series.get(key)
        if ring is None:
            ring = deque(maxlen=self._series_capacity)
            self._series[key] = ring
        ring.append((cycle, value))

    # -- reporting ----------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return sum(len(ring) for ring in self._series.values())

    def build_report(self, network: Any) -> TelemetryReport:
        """Freeze the collected telemetry into a :class:`TelemetryReport`."""
        return TelemetryReport(
            width=network.topology.width,
            height=network.topology.height,
            shape=tuple(network.topology.shape),
            metrics_interval=self._interval,
            events=list(self.events),
            dropped_events=self.dropped_events,
            series={key: list(ring) for key, ring in self._series.items()},
            flight_record=list(self.flight),
            deadlock_snapshots=[
                (cycle, list(events)) for cycle, events in self.deadlock_snapshots
            ],
        )
