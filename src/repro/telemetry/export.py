"""NDJSON export and validation of telemetry streams.

Format (one JSON object per line, keys sorted, compact separators):

* line 1 — the ``repro/v1`` envelope header::

      {"schema": "repro/v1", "command": "telemetry",
       "config": {...} | null, "result": {<report summary>}}

* then one line per retained event::

      {"type": "event", "cycle": C, "kind": K, "node": N, "data": {...}}

* then one line per time-series sample, grouped by sorted
  (metric, component) key::

      {"type": "sample", "cycle": C, "metric": M, "component": X, "value": V}

Everything is deterministic for a seeded run (no timestamps, no floats
beyond what the simulator itself computed), so a committed golden file can
assert the whole stream byte-for-byte across Python versions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.telemetry.report import TelemetryReport

#: Versioned schema tag shared with the CLI's ``--json`` envelopes.
SCHEMA_VERSION = "repro/v1"


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def ndjson_lines(
    report: TelemetryReport, config: Optional[Dict[str, Any]] = None
) -> Iterator[str]:
    """Yield the NDJSON lines for a report (no trailing newlines)."""
    yield _dumps(
        {
            "schema": SCHEMA_VERSION,
            "command": "telemetry",
            "config": config,
            "result": report.summary(),
        }
    )
    for event in report.events:
        yield _dumps(event.to_dict())
    for metric, component in sorted(report.series):
        for cycle, value in report.series[(metric, component)]:
            yield _dumps(
                {
                    "type": "sample",
                    "cycle": cycle,
                    "metric": metric,
                    "component": component,
                    "value": value,
                }
            )


def write_ndjson(
    report: TelemetryReport,
    path: str,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write a report's NDJSON stream to ``path``; returns the summary."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in ndjson_lines(report, config):
            handle.write(line)
            handle.write("\n")
    return report.summary()


def validate_ndjson_lines(lines: Iterable[str]) -> List[str]:
    """Validate an NDJSON stream against the event/sample schema.

    Returns a list of human-readable problems (empty means valid).  Used by
    the golden-file tests and ``tools/validate_telemetry.py`` (the CI
    telemetry smoke job).
    """
    from repro.telemetry.bus import EVENT_KINDS

    problems: List[str] = []
    count = 0
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        count += 1
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"line {lineno}: expected a JSON object")
            continue
        if count == 1:
            if obj.get("schema") != SCHEMA_VERSION:
                problems.append(
                    f"line {lineno}: header schema is {obj.get('schema')!r}, "
                    f"expected {SCHEMA_VERSION!r}"
                )
            if obj.get("command") != "telemetry":
                problems.append(f"line {lineno}: header command must be 'telemetry'")
            if not isinstance(obj.get("result"), dict):
                problems.append(f"line {lineno}: header is missing its result summary")
            continue
        kind = obj.get("type")
        if kind == "event":
            if obj.get("kind") not in EVENT_KINDS:
                problems.append(
                    f"line {lineno}: unknown event kind {obj.get('kind')!r}"
                )
            if not isinstance(obj.get("cycle"), int) or obj["cycle"] < 0:
                problems.append(f"line {lineno}: event cycle must be a non-negative int")
            if not isinstance(obj.get("node"), int):
                problems.append(f"line {lineno}: event node must be an int")
            if "data" in obj and not isinstance(obj["data"], dict):
                problems.append(f"line {lineno}: event data must be an object")
        elif kind == "sample":
            if not isinstance(obj.get("metric"), str):
                problems.append(f"line {lineno}: sample metric must be a string")
            if not isinstance(obj.get("component"), str):
                problems.append(f"line {lineno}: sample component must be a string")
            if not isinstance(obj.get("cycle"), int) or obj["cycle"] < 0:
                problems.append(f"line {lineno}: sample cycle must be a non-negative int")
            if not isinstance(obj.get("value"), (int, float)) or isinstance(
                obj.get("value"), bool
            ):
                problems.append(f"line {lineno}: sample value must be a number")
        else:
            problems.append(f"line {lineno}: unknown line type {kind!r}")
    if count == 0:
        problems.append("stream is empty (expected at least a header line)")
    return problems
