"""Run-time observability: event bus, time-series sampling, NDJSON export.

The simulator's fault-tolerance story (NACK storms, retransmission replays,
probe circulation, buffer absorption) is dynamic, but end-of-run counters
flatten all of it.  This package records the dynamics:

* :class:`TelemetryBus` — components publish structured events (flit drops
  and replays, NACKs, VC-allocation failures, probe launches/returns,
  permanent-fault strikes, reroutes) and a per-cycle hook samples
  per-component gauges (link utilization, VC occupancy, injection/ejection
  rates, retransmission-buffer pressure) every ``metrics_interval`` cycles
  into bounded ring buffers.
* :class:`TelemetryReport` — the frozen outcome attached to
  :class:`~repro.noc.simulator.SimulationResult`, with series/heatmap
  accessors and the last-K-events flight recorder.
* :mod:`repro.telemetry.export` — deterministic NDJSON export plus the line
  validator CI's telemetry smoke job runs.

Enable via ``SimulationConfig(telemetry=TelemetryConfig(enabled=True))`` or
``repro run --telemetry out.ndjson``.  Disabled (the default), no bus
exists and no callback fires — see docs/OBSERVABILITY.md.
"""

from repro.telemetry.bus import EVENT_KINDS, SERIES_METRICS, TelemetryBus, TelemetryEvent
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.export import (
    SCHEMA_VERSION,
    ndjson_lines,
    validate_ndjson_lines,
    write_ndjson,
)
from repro.telemetry.report import TelemetryReport

__all__ = [
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "SERIES_METRICS",
    "TelemetryBus",
    "TelemetryConfig",
    "TelemetryEvent",
    "TelemetryReport",
    "ndjson_lines",
    "validate_ndjson_lines",
    "write_ndjson",
]
