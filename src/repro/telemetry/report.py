"""The frozen outcome of a telemetry-enabled run.

A :class:`TelemetryReport` is what a :class:`~repro.telemetry.bus.TelemetryBus`
hands to :class:`~repro.noc.simulator.SimulationResult` when the run ends:
the retained event list, every sampled (metric, component) series, the
flight-recorder tail and any deadlock snapshots — plus the accessors the
report/chart layer consumes (per-node heatmaps, series extraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.telemetry.bus import TelemetryEvent


@dataclass
class TelemetryReport:
    """Events + time-series collected over one run (see module docstring)."""

    width: int
    height: int
    metrics_interval: int
    #: Full mesh extents; defaults to ``(width, height)`` for 2D reports.
    shape: Tuple[int, ...] = ()
    events: List["TelemetryEvent"] = field(default_factory=list)
    dropped_events: int = 0
    #: ``(metric, component) -> [(cycle, value), ...]`` (cycle-ordered).
    series: Dict[Tuple[str, str], List[Tuple[int, float]]] = field(
        default_factory=dict
    )
    flight_record: List["TelemetryEvent"] = field(default_factory=list)
    deadlock_snapshots: List[Tuple[int, List["TelemetryEvent"]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        if not self.shape:
            self.shape = (self.width, self.height)

    @property
    def depth(self) -> int:
        """Number of z layers (1 for 2D reports)."""
        return self.shape[2] if len(self.shape) > 2 else 1

    # -- events -------------------------------------------------------------

    def events_of(self, kind: str) -> List["TelemetryEvent"]:
        return [event for event in self.events if event.kind == kind]

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- series -------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return sum(len(points) for points in self.series.values())

    def series_keys(self) -> List[Tuple[str, str]]:
        return sorted(self.series)

    def metrics(self) -> List[str]:
        return sorted({metric for metric, _ in self.series})

    def components(self, metric: str) -> List[str]:
        return sorted(
            component for m, component in self.series if m == metric
        )

    def get_series(self, metric: str, component: str = "global") -> List[Tuple[int, float]]:
        return list(self.series.get((metric, component), []))

    def last(self, metric: str, component: str = "global") -> float:
        points = self.series.get((metric, component))
        return points[-1][1] if points else 0.0

    # -- heatmaps -----------------------------------------------------------

    def heatmap(
        self, metric: str, reduce: str = "mean", layer: int = 0
    ) -> List[List[float]]:
        """Reduce a metric to one value per node, as a height x width grid.

        Component keys are ``"<node>"`` or ``"<node>:<dir>"``; link metrics
        therefore aggregate over a node's outgoing links.  ``reduce`` picks
        the per-series reduction: ``"mean"``, ``"max"`` or ``"last"``.
        On 3D meshes ``layer`` selects the z slice to render (each call
        returns one height x width layer).
        """
        if reduce not in ("mean", "max", "last"):
            raise ValueError(f"unknown reduction {reduce!r}")
        if not 0 <= layer < self.depth:
            raise ValueError(
                f"layer {layer} outside the {self.depth}-layer mesh"
            )
        per_node: Dict[int, List[float]] = {}
        for (m, component), points in self.series.items():
            if m != metric or not points:
                continue
            head = component.split(":", 1)[0]
            if not head.isdigit():
                continue  # global series have no node placement
            values = [value for _, value in points]
            if reduce == "mean":
                reduced = sum(values) / len(values)
            elif reduce == "max":
                reduced = max(values)
            else:
                reduced = values[-1]
            per_node.setdefault(int(head), []).append(reduced)
        grid = [[0.0] * self.width for _ in range(self.height)]
        for node, values in per_node.items():
            rest, col = divmod(node, self.width)
            z, row = divmod(rest, self.height)
            if z == layer and 0 <= row < self.height:
                grid[row][col] = sum(values) / len(values)
        return grid

    # -- summary ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Headline counts for envelopes and NDJSON headers."""
        return {
            "events": len(self.events),
            "dropped_events": self.dropped_events,
            "samples": self.num_samples,
            "series": len(self.series),
            "metrics_interval": self.metrics_interval,
            "event_counts": self.event_counts(),
            "deadlock_snapshots": len(self.deadlock_snapshots),
        }
