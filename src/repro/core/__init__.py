"""The paper's fault-tolerance mechanisms.

* :mod:`repro.core.retransmission` — the Figure 3 transmission /
  retransmission buffer architecture (barrel-shift replay window, rollback
  queue, recovery-mode absorption) and the per-output-VC channel state.
* :mod:`repro.core.allocation_comparator` — the Figure 12 AC unit.
* :mod:`repro.core.deadlock` — probe-based detection (Rules 1-4), the
  recovery controller and the Eq. 1 buffer-sizing theorem.
* :mod:`repro.core.logic_recovery` — the Section 4 recovery-latency model
  for each pipeline depth.
* :mod:`repro.core.schemes` — link-protection policy objects (HBH / E2E /
  FEC) applied at link arrival and at the destination NI.
"""

from repro.core.allocation_comparator import AllocationComparator, AllocationError
from repro.core.deadlock import (
    DeadlockController,
    ProbeDecision,
    buffer_lower_bound,
    minimum_total_buffer,
)
from repro.core.logic_recovery import recovery_latency
from repro.core.retransmission import OutputChannel, RetransmissionBuffer

__all__ = [
    "AllocationComparator",
    "AllocationError",
    "DeadlockController",
    "OutputChannel",
    "ProbeDecision",
    "RetransmissionBuffer",
    "buffer_lower_bound",
    "minimum_total_buffer",
    "recovery_latency",
]
