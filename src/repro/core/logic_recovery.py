"""Recovery-latency model for intra-router logic errors (Section 4).

The paper analyses, for each router component and each pipeline depth, how
many cycles an AC-detected (or neighbour-detected) soft error costs.  This
module encodes that analysis as a small queryable model; the simulator's
observed per-event penalties are validated against it in the tests, and the
Section 4 ablation benches use it to predict latency overheads analytically.

Summary of the paper's analysis (n = pipeline stages):

====================  ==========================  =======================
error                 detection                   recovery latency
====================  ==========================  =======================
VA error              AC unit, same cycle          1 cycle (all n; in a
                      as crossbar traversal        4-stage router the AC
                      (n <= 3) or end of           acts before traversal,
                      stage 3 (n = 4)              so nothing was sent)
SA error              AC unit                      1 cycle (all n)
RT error, caught      VA state table               1 cycle re-route
locally (blocked
/edge direction)
RT error, caught at   next router's legality       1 + n cycles
next router (func-    check, NACK back             (NACK + re-route and
tional wrong path,                                 retransmission through
deterministic)                                     the n-stage pipe)
RT error w/ look-     next router's VA,            3 cycles (2-stage),
ahead routing         NACK back                    2 cycles (1-stage)
crossbar upset        per-hop ECC                  0 (single-bit corrected)
                                                   or an HBH round (hybrid)
SA collision w/o AC   ECC at next router           2 cycles (NACK +
(case c)                                           retransmission)
====================  ==========================  =======================
"""

from __future__ import annotations

from typing import Dict, Tuple

_RECOVERY_TABLE: Dict[Tuple[str, str], object] = {
    ("va", "ac"): 1,
    ("sa", "ac"): 1,
    ("rt", "local"): 1,
    ("rt", "remote"): "1+n",
    ("rt", "lookahead"): "1+n",
    ("sa", "ecc"): 2,
    ("crossbar", "ecc"): 0,
}


def recovery_latency(component: str, detection: str, pipeline_stages: int) -> int:
    """Cycles of latency overhead for one corrected logic error.

    Parameters
    ----------
    component:
        ``"va"``, ``"sa"``, ``"rt"`` or ``"crossbar"``.
    detection:
        * ``"ac"`` — caught by the Allocation Comparator (VA/SA errors);
        * ``"local"`` — RT misroute to a blocked/edge direction, caught by
          the local VA state table;
        * ``"remote"`` — RT misroute to a functional wrong path, caught by
          the next router and NACKed back;
        * ``"lookahead"`` — RT error under look-ahead routing, caught by
          the next router's VA (the paper's 2-stage/1-stage analysis);
        * ``"ecc"`` — caught by the per-hop error detection code (crossbar
          upsets; SA collisions when the AC is disabled).
    pipeline_stages:
        Router pipeline depth ``n`` (1-4).

    Notes
    -----
    For ``("rt", "lookahead")`` the paper quotes 3 cycles for a 2-stage
    router (NACK + new routing + retransmission) and 2 cycles for a
    single-stage router (NACK + combined routing/retransmission); both equal
    ``1 + n``, so the table folds them together.
    """
    if pipeline_stages not in (1, 2, 3, 4):
        raise ValueError("pipeline_stages must be 1..4")
    key = (component, detection)
    if key not in _RECOVERY_TABLE:
        raise KeyError(f"no recovery model for component={component!r}, detection={detection!r}")
    entry = _RECOVERY_TABLE[key]
    if entry == "1+n":
        return 1 + pipeline_stages
    return int(entry)  # type: ignore[arg-type]


def worst_case_logic_penalty(pipeline_stages: int) -> int:
    """Largest single-error penalty across all modelled components."""
    worst = 0
    for component, detection in _RECOVERY_TABLE:
        worst = max(worst, recovery_latency(component, detection, pipeline_stages))
    return worst
