"""The Allocation Comparator (AC) unit of Figure 12.

The AC is a purely combinational checker that runs in parallel with the
router pipeline (it never deepens the critical path) and performs three
comparisons each cycle:

1. **VA vs RT agreement** — every output VC the VA assigned must belong to a
   physical channel the routing function returned for that input VC
   (protects against Section 4.1 scenario 4b);
2. **VA validity/uniqueness** — no assigned output VC id may be out of range
   (scenario 1) and no output VC may be assigned to two input VCs or
   re-assigned while reserved (scenarios 2 and 3);
3. **SA validity** — every switch grant must agree with the VA state (a flit
   may only be switched to the port its packet's output VC lives on), no two
   grants may target the same output port, and no input may be granted
   multiple outputs (multicast) — Section 4.3 cases (b), (c), (d).

The unit raises an error *flag* naming the offending allocation(s); the
router invalidates those allocations from the previous clock cycle, which
costs a single cycle (Sections 4.1/4.3).  Under the paper's single-event
assumption a false positive from an upset inside the AC itself is benign:
it merely wastes one arbitration cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

#: (port, vc) identifying a virtual channel.
VCId = Tuple[int, int]


@dataclass(frozen=True)
class AllocationError:
    """One flagged allocation."""

    unit: str  # "VA" or "SA"
    requester: VCId  # the input VC whose allocation is invalidated
    reason: str


class AllocationComparator:
    """Combinational checker over the RT / VA / SA state (Figure 12)."""

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        #: Cumulative count of invalidations, split by unit.
        self.va_invalidations = 0
        self.sa_invalidations = 0

    # -- VA checks -----------------------------------------------------------

    def check_va(
        self,
        grants: Mapping[VCId, VCId],
        routing_candidates: Mapping[VCId, Sequence[int]],
        reserved: Mapping[VCId, bool],
    ) -> List[AllocationError]:
        """Check this cycle's VA grants.

        Parameters
        ----------
        grants:
            input VC -> granted output VC, as latched by the VA this cycle.
        routing_candidates:
            input VC -> output *ports* the RT unit returned (the AC's
            comparison (1) input in Figure 12).
        reserved:
            output VC -> True if it was already allocated *before* this
            cycle (comparison (2)'s "duplicate/reserved" input).
        """
        errors: List[AllocationError] = []
        seen: Dict[VCId, VCId] = {}
        for requester, (out_port, out_vc) in grants.items():
            if not (0 <= out_port < self.num_ports and 0 <= out_vc < self.num_vcs):
                errors.append(
                    AllocationError("VA", requester, f"invalid output VC ({out_port},{out_vc})")
                )
                continue
            candidates = routing_candidates.get(requester, ())
            if out_port not in candidates:
                errors.append(
                    AllocationError(
                        "VA",
                        requester,
                        f"output port {out_port} disagrees with routing function {tuple(candidates)}",
                    )
                )
                continue
            out = (out_port, out_vc)
            if reserved.get(out, False):
                errors.append(
                    AllocationError("VA", requester, f"output VC {out} already reserved")
                )
                continue
            if out in seen:
                errors.append(
                    AllocationError(
                        "VA", requester, f"output VC {out} granted twice this cycle"
                    )
                )
                errors.append(
                    AllocationError(
                        "VA", seen[out], f"output VC {out} granted twice this cycle"
                    )
                )
                continue
            seen[out] = requester
        self.va_invalidations += len(errors)
        return errors

    # -- SA checks -----------------------------------------------------------

    def check_sa(
        self,
        grants: Sequence[Tuple[VCId, int]],
        va_state: Mapping[VCId, int],
    ) -> List[AllocationError]:
        """Check this cycle's switch grants.

        Parameters
        ----------
        grants:
            (input VC, granted output port) pairs, *including* any
            erroneous duplicates/multicasts a faulted SA produced.
        va_state:
            input VC -> output port its allocated output VC lives on
            (the winning pairing recorded in the VA state table).
        """
        errors: List[AllocationError] = []
        flagged: set = set()

        def flag(requester: VCId, out_port: int, reason: str) -> None:
            key = (requester, out_port)
            if key not in flagged:
                flagged.add(key)
                errors.append(AllocationError("SA", requester, reason))

        by_output: Dict[int, List[VCId]] = {}
        by_input: Dict[VCId, List[int]] = {}
        for requester, out_port in grants:
            if not 0 <= out_port < self.num_ports:
                flag(requester, out_port, f"invalid output port {out_port}")
                continue
            expected = va_state.get(requester)
            if expected is None:
                flag(requester, out_port, "switch grant for an unallocated input VC")
                continue
            if out_port != expected:
                flag(
                    requester,
                    out_port,
                    f"flit directed to port {out_port}, VA state says {expected}",
                )
                continue
            by_output.setdefault(out_port, []).append(requester)
            by_input.setdefault(requester, []).append(out_port)

        for out_port, requesters in by_output.items():
            if len(requesters) > 1:
                for requester in requesters:
                    flag(requester, out_port, f"two flits granted output port {out_port}")
        for requester, ports in by_input.items():
            if len(ports) > 1:
                for out_port in ports:
                    flag(requester, out_port, f"multicast grant to ports {sorted(ports)}")

        self.sa_invalidations += len(errors)
        return errors
