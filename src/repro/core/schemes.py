"""Link-error handling schemes: HBH, E2E and FEC (Section 3, Figure 5).

The three schemes differ in *where* data is checked and *who* recovers:

* **HBH** (the paper's proposal): every router checks every arriving flit.
  Single-bit upsets are corrected in place by the SEC stage; uncorrectable
  upsets are dropped and NACKed, and the sender replays from its 3-deep
  retransmission buffer (a 3-cycle penalty).  The per-hop logic lives in
  :meth:`repro.noc.router.Router` (it is entangled with the sequence
  rollback machinery); this module provides the destination-side policy and
  the shared header-field corruption model.

* **E2E**: data is checked only at the destination NI.  Any uncorrectable
  corruption triggers a retransmission request back to the source, which
  replays the whole packet.  A corrupted destination field misroutes the
  packet, so the request is issued from the *wrong* destination — and a
  multi-bit corrupted source field makes the request impossible (packet
  lost), exactly the failure modes Section 3 describes.

* **FEC**: forward error correction only; the destination's SEC/DED corrects
  single-bit upsets and *detects* multi-bit ones but nothing is ever
  retransmitted.  A recoverable (single-bit) destination-field hit sends the
  packet to a wrong node, where the corrected header lets the NI forward it
  onward to the true destination ("additional network traffic"); an
  unrecoverable one loses the packet; uncorrectable payload corruption is
  delivered corrupt.

Header-field model: a link upset lands in the destination field, the source
field, or the payload with probabilities proportional to their widths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.types import Corruption, LinkProtection

if TYPE_CHECKING:  # imported for annotations only (avoids a package cycle)
    from repro.noc.flit import Flit

#: Fraction of a header flit's bits occupied by the destination address and
#: the source address respectively (6 bits each of a 64-bit flit for an
#: 8x8 network); exposed for configurability in tests.
DST_FIELD_FRACTION = 0.10
SRC_FIELD_FRACTION = 0.10


class HeaderField(enum.Enum):
    DST = "dst"
    SRC = "src"
    PAYLOAD = "payload"


def pick_header_field(rng) -> HeaderField:
    """Which field a header-flit upset lands in."""
    roll = rng.random()
    if roll < DST_FIELD_FRACTION:
        return HeaderField.DST
    if roll < DST_FIELD_FRACTION + SRC_FIELD_FRACTION:
        return HeaderField.SRC
    return HeaderField.PAYLOAD


def apply_header_upset(
    flit: Flit, severity: Corruption, field: HeaderField, num_nodes: int, rng
) -> None:
    """Mutate a header flit the way an unchecked channel upset would.

    A destination-field hit rewrites ``flit.dst`` to a random other node, so
    downstream routers genuinely steer the packet to the wrong place; the
    severity is remembered per field so the destination's SEC/DED can
    recover single-bit hits (``dst_error``/``src_error`` are the behavioural
    stand-ins for the real syndrome decode, validated against
    :class:`repro.coding.hamming.HammingSecDed`).
    """
    if field is HeaderField.DST:
        wrong = rng.randrange(num_nodes - 1)
        if wrong >= flit.dst:
            wrong += 1
        flit.dst = wrong
        flit.dst_error = _compose(flit.dst_error, severity)
    elif field is HeaderField.SRC:
        flit.src_error = _compose(flit.src_error, severity)
    else:
        flit.corrupt(severity)


def _compose(existing: Corruption, severity: Corruption) -> Corruption:
    """Two independent single-bit field hits make a double error."""
    if existing is Corruption.SINGLE and severity is Corruption.SINGLE:
        return Corruption.MULTI
    return max(existing, severity, key=lambda c: c.value)


class DeliveryAction(enum.Enum):
    """What the destination NI does with a fully received packet."""

    DELIVER = "deliver"
    DELIVER_CORRUPT = "deliver_corrupt"
    REQUEST_RETRANSMISSION = "request_retransmission"  # E2E only
    FORWARD_TO_TRUE_DST = "forward"  # misdelivered, true dst recovered
    LOST = "lost"


@dataclass(frozen=True)
class DeliveryDecision:
    action: DeliveryAction
    #: For REQUEST_RETRANSMISSION: the (possibly SEC-recovered) source node.
    source: Optional[int] = None
    #: For FORWARD_TO_TRUE_DST: the recovered true destination.
    destination: Optional[int] = None


def destination_policy(
    scheme: LinkProtection, node: int, flits: List[Flit]
) -> DeliveryDecision:
    """Destination-NI decision for a complete packet under ``scheme``.

    Everything here uses only information the NI's decoder would have: the
    per-field severity tags are what the SEC/DED syndrome computation would
    yield, and a *single*-bit field error is recoverable (the decoder
    reconstructs the true value) while a multi-bit one is only detectable.
    """
    head = flits[0]
    if head.dst != node:
        # Ejected at a node that is not even the header's destination — an
        # undetected logic fault steered the wormhole into the wrong NI.
        # The NI compares the header address against its own and forwards
        # the packet onward (it can do no better behaviourally: ``dst`` is
        # all the hardware knows).
        return DeliveryDecision(DeliveryAction.FORWARD_TO_TRUE_DST, destination=head.dst)
    misdelivered = head.true_dst != node

    if scheme is LinkProtection.HBH or scheme is LinkProtection.NONE:
        # Per-hop checking (or none at all): whatever arrives is final.
        if misdelivered:
            # Only reachable via undetected logic faults (AC-off ablations).
            if head.dst_error is Corruption.SINGLE:
                return DeliveryDecision(
                    DeliveryAction.FORWARD_TO_TRUE_DST, destination=head.true_dst
                )
            return DeliveryDecision(DeliveryAction.LOST)
        if any(f.corruption is not Corruption.NONE for f in flits):
            return DeliveryDecision(DeliveryAction.DELIVER_CORRUPT)
        return DeliveryDecision(DeliveryAction.DELIVER)

    payload_multi = any(f.corruption is Corruption.MULTI for f in flits)
    payload_single = any(f.corruption is Corruption.SINGLE for f in flits)

    if scheme is LinkProtection.FEC:
        if misdelivered:
            if head.dst_error is Corruption.SINGLE:
                # SEC recovers the true destination; forward onward.
                return DeliveryDecision(
                    DeliveryAction.FORWARD_TO_TRUE_DST, destination=head.true_dst
                )
            return DeliveryDecision(DeliveryAction.LOST)
        if payload_multi or head.dst_error is Corruption.MULTI:
            return DeliveryDecision(DeliveryAction.DELIVER_CORRUPT)
        # Single-bit upsets (including a recoverable dst hit that happened
        # to keep the packet on course) are corrected by the SEC stage.
        return DeliveryDecision(DeliveryAction.DELIVER)

    if scheme is LinkProtection.E2E:
        needs_retx = (
            misdelivered
            or payload_multi
            or payload_single
            or head.dst_error is not Corruption.NONE
        )
        # Pure retransmission scheme: *any* detected error voids the packet
        # ("the original data is checked only at the destination node") and
        # a clean copy is requested from the source.
        if not needs_retx:
            return DeliveryDecision(DeliveryAction.DELIVER)
        if head.src_error is Corruption.MULTI:
            # The request cannot be addressed: the paper's unrecoverable
            # E2E failure mode.
            return DeliveryDecision(DeliveryAction.LOST)
        return DeliveryDecision(
            DeliveryAction.REQUEST_RETRANSMISSION, source=head.src
        )

    raise ValueError(f"unknown link protection scheme: {scheme}")
