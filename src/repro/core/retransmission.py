"""The transmission/retransmission buffer architecture of Figure 3.

Every output virtual channel owns an :class:`OutputChannel`, which bundles:

* the **credit counter** toward the downstream input VC buffer (the
  "transmission buffer" seen from this side),
* the **retransmission buffer** — a barrel-shift register holding the last
  ``depth`` flits sent, so that a NACK arriving up to ``depth`` cycles after
  a transmission can be served (Section 3.1 derives depth 3: link traversal
  + error check + NACK propagation),
* the **replay queue** — flits rolled back by a NACK, awaiting
  retransmission (they bypass the crossbar through the Figure 3 mux),
* the **absorption queue** — flits moved out of the upstream transmission
  buffer during deadlock recovery ("Retransmission Buffer with unsent data"
  in Figure 10); they are first transmissions, so they wait for credits,
* the **wormhole allocation state** (which input VC currently owns this
  output VC), which the VA writes and the AC unit reads.

The barrel shifter and the two queues share the physical ``depth`` slots in
hardware; we model the replay window and the absorption queue as separate
structures but enforce the combined capacity where the paper does (a node
may absorb at most ``depth`` flits during recovery).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

if TYPE_CHECKING:  # imported for annotations only (avoids a package cycle)
    from repro.noc.flit import Flit


class RetransmissionBuffer:
    """Barrel-shift register of the last ``depth`` transmitted flits.

    Entries are ``(sequence number, flit)``; storing a sequence number that
    is already present replaces it (a retransmitted flit re-enters the back
    of the shifter, exactly as Figure 10's thick-square flits do).
    """

    __slots__ = ("depth", "duplicate", "_entries", "_shadow", "corrupted_seqs")

    def __init__(self, depth: int, duplicate: bool = False):
        if depth < 1:
            raise ValueError("retransmission buffer depth must be positive")
        self.depth = depth
        #: Section 4.5's fool-proof option: keep a duplicate copy so an
        #: upset inside the buffer itself can be recovered.
        self.duplicate = duplicate
        self._entries: Deque[Tuple[int, Flit]] = deque()
        self._shadow: Deque[Tuple[int, Flit]] = deque()
        #: Sequence numbers whose stored copy suffered an in-buffer upset
        #: (Section 4.5).  Without duplicate buffers such a copy replays
        #: corrupt, producing the paper's retransmission loop.
        self.corrupted_seqs: set = set()

    def store(self, seq: int, flit: Flit) -> None:
        """Shift a just-transmitted flit into the buffer."""
        self._remove(seq)
        self.corrupted_seqs.discard(seq)
        self._entries.append((seq, flit))
        while len(self._entries) > self.depth:
            evicted_seq = self._entries.popleft()[0]
            self.corrupted_seqs.discard(evicted_seq)
        if self.duplicate:
            self._shadow = deque(
                (s, _copy_corruption_state(f)) for s, f in self._entries
            )

    def _remove(self, seq: int) -> None:
        for i, (s, _) in enumerate(self._entries):
            if s == seq:
                del self._entries[i]
                return

    def entries_from(self, seq: int) -> List[Tuple[int, Flit]]:
        """All held flits with sequence number >= ``seq``, oldest first."""
        return sorted(
            ((s, f) for s, f in self._entries if s >= seq), key=lambda e: e[0]
        )

    def get(self, seq: int) -> Optional[Flit]:
        for s, f in self._entries:
            if s == seq:
                return f
        return None

    def restore_from_duplicate(self, seq: int) -> Optional[Flit]:
        """Fetch the shadow copy of a flit (clears buffer-upset corruption)."""
        if not self.duplicate:
            return None
        for s, f in self._shadow:
            if s == seq:
                return f
        return None

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def flits(self) -> List[Flit]:
        return [f for _, f in self._entries]

    def clear(self) -> None:
        self._entries.clear()
        self._shadow.clear()
        self.corrupted_seqs.clear()

    def __len__(self) -> int:
        return len(self._entries)


def _copy_corruption_state(flit: "Flit") -> "Flit":
    """Snapshot a flit for the duplicate buffer.

    Only the corruption tag can diverge between the copies (a buffer upset
    corrupts one copy); sharing the rest of the flit is safe because the
    simulator never mutates those fields while a flit sits in a buffer.
    """
    from copy import copy

    return copy(flit)


class OutputChannel:
    """State of one output virtual channel (see module docstring)."""

    __slots__ = (
        "port",
        "vc",
        "credits",
        "allocated_to",
        "last_owner",
        "next_seq",
        "retx",
        "replay_queue",
        "absorption_queue",
        "dead",
    )

    def __init__(self, port: int, vc: int, depth: int, duplicate: bool = False):
        self.port = port
        self.vc = vc
        self.credits = 0  # set by the router once the downstream depth is known
        #: Permanently failed (downstream VC buffer or link died); masked
        #: out of VA so no new wormhole can claim this channel.
        self.dead = False
        self.allocated_to: Optional[Tuple[int, int]] = None
        self.last_owner: Optional[Tuple[int, int]] = None
        self.next_seq = 0
        self.retx = RetransmissionBuffer(depth, duplicate=duplicate)
        #: Rolled-back flits awaiting retransmission (``(seq, flit)``).
        self.replay_queue: Deque[Tuple[int, Flit]] = deque()
        #: Recovery-mode absorbed flits awaiting their first transmission.
        self.absorption_queue: Deque[Flit] = deque()

    # -- allocation ---------------------------------------------------------

    @property
    def is_allocated(self) -> bool:
        return self.allocated_to is not None

    def allocate(self, owner: Tuple[int, int]) -> None:
        self.allocated_to = owner
        self.last_owner = owner

    def release(self) -> None:
        self.allocated_to = None

    # -- transmission -------------------------------------------------------

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def rollback(self, seq: int) -> int:
        """Queue every sent flit with sequence >= ``seq`` for replay.

        Returns the number of flits queued.  Idempotent against duplicate
        NACKs: sequences already queued are not queued twice.
        """
        queued_seqs = {s for s, _ in self.replay_queue}
        added = 0
        for s, flit in self.retx.entries_from(seq):
            if s not in queued_seqs:
                self.replay_queue.append((s, flit))
                added += 1
        self.replay_queue = deque(sorted(self.replay_queue, key=lambda e: e[0]))
        return added

    def extract_rollback_flits(self, seq: int) -> List[Flit]:
        """Remove and return sent flits with sequence >= ``seq``.

        Used by the route-NACK path (Section 4.2), where rolled-back flits
        re-enter the *input* pipeline (the route must be recomputed) instead
        of being replayed on the same output.
        """
        entries = self.retx.entries_from(seq)
        for s, _ in entries:
            self.retx._remove(s)
        # Anything already queued for replay at those sequences is stale.
        self.replay_queue = deque(
            (s, f) for s, f in self.replay_queue if s < seq
        )
        return [f for _, f in entries]

    # -- recovery-mode absorption --------------------------------------------

    @property
    def absorption_capacity(self) -> int:
        """Free slots available to absorb flits during deadlock recovery."""
        return max(
            0,
            self.retx.depth - len(self.absorption_queue) - len(self.replay_queue),
        )

    def absorb(self, flit: Flit) -> None:
        if self.absorption_capacity <= 0:
            raise OverflowError("retransmission buffer absorption overflow")
        self.absorption_queue.append(flit)

    # -- introspection ------------------------------------------------------

    @property
    def has_pending_output(self) -> bool:
        return bool(self.replay_queue) or bool(self.absorption_queue)

    @property
    def telemetry_occupancy(self) -> int:
        """Occupied slots for the telemetry pressure gauge: replay and
        absorption queues plus the barrel shifter's live window."""
        return (
            len(self.replay_queue)
            + len(self.absorption_queue)
            + self.retx.occupancy
        )

    def __repr__(self) -> str:
        return (
            f"OutputChannel(p{self.port}v{self.vc} credits={self.credits}"
            f" alloc={self.allocated_to} replay={len(self.replay_queue)}"
            f" absorb={len(self.absorption_queue)})"
        )
