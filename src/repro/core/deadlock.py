"""Deadlock detection and recovery (Section 3.2).

Three pieces:

* :func:`buffer_lower_bound` / :func:`minimum_total_buffer` — the Eq. 1
  theorem: recovery is guaranteed when the total buffering (transmission +
  retransmission) of the deadlocked nodes exceeds ``M x N``.
* :class:`DeadlockController` — one per router; implements the probing
  protocol (Rules 1-4) and the recovery-mode state machine.  It is pure
  decision logic: the router feeds it events and performs the I/O (sending
  probes over links, moving flits into retransmission buffers).
* :class:`ProbeDecision` — what the controller tells the router to do with
  an incoming probe or activation signal.

The probing protocol, quoting the paper:

  *Rule 1*: after a flit is blocked more than ``C_thres`` cycles, send a
  probe to the next node specifying the suspected VC buffer.
  *Rule 2*: a node receiving a probe forwards it (updating the VC id) if the
  named VC is also blocked there or the node is already recovering;
  otherwise it discards the probe.
  *Rule 3*: a node discards an activation signal unless it previously saw a
  probe from the same sender.
  *Rule 4*: a node that receives a valid activation while waiting for its
  own probe enters recovery immediately and discards its own probe when it
  returns.

A probe that returns to its origin proves a cyclic dependency, so there are
no false positives; the origin then sends an activation along the same path
and enters recovery itself when the activation returns.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Eq. 1 — the buffer-sizing theorem
# ---------------------------------------------------------------------------


def max_packets_per_buffer(transmission_depth: int, flits_per_packet: int) -> int:
    """``N_i = ceil(T_i / M)``: the most distinct packets that can occupy a
    transmission buffer of depth ``T_i`` with ``M``-flit packets."""
    if transmission_depth < 1 or flits_per_packet < 1:
        raise ValueError("depths and packet length must be positive")
    return math.ceil(transmission_depth / flits_per_packet)


def buffer_lower_bound(
    flits_per_packet: int,
    transmission_depths: Sequence[int],
    retransmission_depths: Sequence[int],
) -> bool:
    """Check Eq. 1: ``B2 = sum(Ti + Ri) > M x N`` with ``N = sum(ceil(Ti/M))``.

    True means the configuration satisfies the theorem's lower bound, i.e.
    every deadlock over these ``n`` nodes can be absorbed with at least one
    buffer slot left free, guaranteeing recovery.

    The paper's own examples:

    >>> buffer_lower_bound(4, [4, 4, 4], [3, 3, 3])      # Figure 10
    True
    >>> buffer_lower_bound(4, [6, 6, 6, 6], [3, 3, 3, 3])  # Figure 11
    True
    """
    if len(transmission_depths) != len(retransmission_depths):
        raise ValueError("need one (T, R) pair per deadlocked node")
    if not transmission_depths:
        raise ValueError("a deadlock involves at least one node")
    b2 = sum(transmission_depths) + sum(retransmission_depths)
    n_packets = sum(
        max_packets_per_buffer(t, flits_per_packet) for t in transmission_depths
    )
    return b2 > flits_per_packet * n_packets


def minimum_total_buffer(
    flits_per_packet: int, transmission_depths: Sequence[int]
) -> int:
    """Smallest total buffering ``B2`` that satisfies Eq. 1 (strictly)."""
    n_packets = sum(
        max_packets_per_buffer(t, flits_per_packet) for t in transmission_depths
    )
    return flits_per_packet * n_packets + 1


# ---------------------------------------------------------------------------
# The probing protocol
# ---------------------------------------------------------------------------


class ProbeAction(enum.Enum):
    FORWARD = "forward"
    DISCARD = "discard"
    DEADLOCK_DETECTED = "deadlock_detected"  # own probe returned
    ENTER_RECOVERY = "enter_recovery"  # valid activation accepted


@dataclass(frozen=True)
class ProbeDecision:
    action: ProbeAction
    #: For FORWARD: the output port / VC the signal continues on.
    out_port: Optional[int] = None
    out_vc: Optional[int] = None
    #: For ENTER_RECOVERY on a non-origin node: also forward the activation.
    forward_out_port: Optional[int] = None
    forward_out_vc: Optional[int] = None


class DeadlockController:
    """Per-router deadlock detection/recovery state machine."""

    #: A probe is considered lost (and may be re-sent) after this many
    #: cycles without returning.
    PROBE_TIMEOUT_FACTOR = 4

    def __init__(
        self,
        node: int,
        threshold: int,
        recovery_duration: Optional[int] = None,
        probe_memory: Optional[int] = None,
    ):
        if threshold < 1:
            raise ValueError("C_thres must be at least one cycle")
        self.node = node
        self.threshold = threshold
        self.recovery_duration = (
            recovery_duration if recovery_duration is not None else 4 * threshold + 16
        )
        #: How long a seen probe origin stays valid for Rule 3.
        self.probe_memory = probe_memory if probe_memory is not None else 8 * threshold
        self._seen_probes: Dict[int, int] = {}
        self._recovery_until = -1
        self._probe_outstanding_since: Optional[int] = None
        self._discard_own_probe = False
        #: Telemetry publish function (``TelemetryBus.publish``), wired by
        #: the Network; called as ``hook(cycle, kind, node, **data)``.
        self.telemetry_hook = None
        # Counters (surfaced into the run statistics by the router).
        self.probes_sent = 0
        self.probes_discarded = 0
        self.deadlocks_detected = 0
        self.activations = 0

    # -- recovery mode -------------------------------------------------------

    def in_recovery(self, cycle: int) -> bool:
        return cycle < self._recovery_until

    def enter_recovery(self, cycle: int) -> None:
        self._recovery_until = max(
            self._recovery_until, cycle + self.recovery_duration
        )
        self.activations += 1
        if self.telemetry_hook is not None:
            self.telemetry_hook(
                cycle, "deadlock_recovery", self.node, until=self._recovery_until
            )

    # -- Rule 1: launching probes ---------------------------------------------

    def should_probe(self, cycle: int, blocked_cycles: int) -> bool:
        """Whether a VC blocked for ``blocked_cycles`` should launch a probe."""
        if blocked_cycles <= self.threshold:
            return False
        if self.in_recovery(cycle):
            return False  # recovery already under way here
        if self._probe_outstanding_since is not None:
            timeout = self.PROBE_TIMEOUT_FACTOR * max(self.threshold, 16)
            if cycle - self._probe_outstanding_since < timeout:
                return False  # Rule 1 allows one outstanding probe
            # The old probe is presumed lost/discarded.
            self._probe_outstanding_since = None
            self._discard_own_probe = False
        return True

    def note_probe_sent(self, cycle: int) -> None:
        self._probe_outstanding_since = cycle
        self._discard_own_probe = False
        self.probes_sent += 1

    # -- Rules 2-4: receiving signals -----------------------------------------

    def on_probe(
        self,
        cycle: int,
        origin: int,
        target_blocked: bool,
        target_route: Optional[Tuple[int, int]],
    ) -> ProbeDecision:
        """Handle an arriving probe naming one of our input VCs.

        Parameters
        ----------
        origin:
            The Rule-1 sender of the probe.
        target_blocked:
            Whether the named VC buffer is blocked here (or this node is in
            recovery mode) — the Rule 2 condition.
        target_route:
            The (output port, output VC) the named VC's packet holds, i.e.
            where a forwarded probe continues; None if the VC holds no
            routed packet.
        """
        self._expire_seen(cycle)
        if origin == self.node:
            # Our own probe came back around the cycle.
            self._probe_outstanding_since = None
            if self._discard_own_probe:
                # Rule 4: another node's activation already started recovery.
                self._discard_own_probe = False
                self.probes_discarded += 1
                if self.telemetry_hook is not None:
                    self.telemetry_hook(
                        cycle, "probe_return", self.node, deadlock=False
                    )
                return ProbeDecision(ProbeAction.DISCARD)
            self.deadlocks_detected += 1
            if self.telemetry_hook is not None:
                self.telemetry_hook(
                    cycle, "probe_return", self.node, deadlock=True
                )
            return ProbeDecision(ProbeAction.DEADLOCK_DETECTED)
        if (target_blocked or self.in_recovery(cycle)) and target_route is not None:
            self._seen_probes[origin] = cycle
            return ProbeDecision(
                ProbeAction.FORWARD, out_port=target_route[0], out_vc=target_route[1]
            )
        self.probes_discarded += 1
        return ProbeDecision(ProbeAction.DISCARD)

    def on_activation(
        self,
        cycle: int,
        origin: int,
        target_route: Optional[Tuple[int, int]],
    ) -> ProbeDecision:
        """Handle an arriving activation signal."""
        self._expire_seen(cycle)
        if origin == self.node:
            # Our activation completed the loop: we switch over last
            # ("the sender node switches ... after the activation returns").
            self.enter_recovery(cycle)
            return ProbeDecision(ProbeAction.ENTER_RECOVERY)
        if origin not in self._seen_probes:
            # Rule 3.
            self.probes_discarded += 1
            return ProbeDecision(ProbeAction.DISCARD)
        # Rule 4.
        if self._probe_outstanding_since is not None:
            self._discard_own_probe = True
        self.enter_recovery(cycle)
        if target_route is None:
            return ProbeDecision(ProbeAction.ENTER_RECOVERY)
        return ProbeDecision(
            ProbeAction.ENTER_RECOVERY,
            forward_out_port=target_route[0],
            forward_out_vc=target_route[1],
        )

    def _expire_seen(self, cycle: int) -> None:
        expired = [
            origin
            for origin, seen in self._seen_probes.items()
            if cycle - seen > self.probe_memory
        ]
        for origin in expired:
            del self._seen_probes[origin]
