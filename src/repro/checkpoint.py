"""Crash-safe checkpoint/resume for simulations.

A checkpoint is a complete, versioned snapshot of a mid-run
:class:`~repro.noc.simulator.Simulator` — every router's VC buffers and
pipeline registers, the retransmission barrel buffers, link delay lines
and wake sets, NI queues and ``e2e_copies``, the scheduled-event heap,
permanent-fault cursors, probe/deadlock state, both RNGs (traffic and
fault injection), stats counters and telemetry rings.  Resuming from a
checkpoint continues the run **bit-for-bit**: the final result, every
counter and the NDJSON telemetry stream are identical to an uninterrupted
run on both cycle loops (``tests/noc/test_checkpoint.py`` is the oracle,
docs/CHECKPOINTING.md the design note).

File format (magic + versioned JSON header + pickle payload + checksum)::

    REPRO-CKPT\\n
    {"schema": "repro/v1", "checkpoint_version": 1, "cycle": ..., ...}\\n
    <pickle bytes>

The header is readable without unpickling (:func:`read_checkpoint_header`)
and carries a SHA-256 of the payload, so a torn or corrupted file is
rejected with :class:`CheckpointError` instead of resuming from garbage.
Writes are atomic (temp file + fsync + rename): a crash mid-write leaves
the previous checkpoint intact.

Security note: the payload is a pickle and is only integrity-checked, not
authenticated — load checkpoints you wrote yourself, like any pickle.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.noc.simulator import Simulator
from repro.serialization import config_to_dict
from repro.telemetry.export import SCHEMA_VERSION

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_checkpoint",
    "read_checkpoint_header",
    "resume_from",
    "save_checkpoint",
]

MAGIC = b"REPRO-CKPT\n"

#: Bumped whenever the pickled object graph changes shape incompatibly.
#: Loaders accept exactly their own version — see docs/CHECKPOINTING.md
#: for the compatibility policy.
CHECKPOINT_VERSION = 1

#: Pinned so checkpoints written by newer Pythons stay readable by the
#: oldest supported interpreter (3.9 < protocol 5's default adoption).
PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, corrupt or incompatible."""


def save_checkpoint(sim: Simulator, path: Union[str, Path]) -> Path:
    """Atomically snapshot ``sim`` to ``path``.

    The simulator must be between cycles (which it always is outside
    ``Network.step``); the snapshot captures the entire object graph in a
    single pickle so shared references (stats collector, telemetry bus,
    wake sets) survive intact.
    """
    path = Path(path)
    payload = pickle.dumps(sim, protocol=PICKLE_PROTOCOL)
    header = {
        "schema": SCHEMA_VERSION,
        "checkpoint_version": CHECKPOINT_VERSION,
        "cycle": sim.network.cycle,
        "completed": sim.network.completed,
        "config": config_to_dict(sim.config),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "pickle_protocol": PICKLE_PROTOCOL,
    }
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(header_line.encode("utf-8"))
            fh.write(b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _read_header(fh: io.BufferedReader, path: Path) -> Dict[str, Any]:
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
    header_line = fh.readline()
    if not header_line.endswith(b"\n"):
        raise CheckpointError(f"{path}: truncated checkpoint header")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CheckpointError(f"{path}: unparseable checkpoint header") from exc
    version = header.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version!r} is not supported by "
            f"this build (expects {CHECKPOINT_VERSION}); re-run from the "
            "original config instead of resuming"
        )
    return header


def read_checkpoint_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Return the JSON header (cycle, config, checksum, ...) without
    unpickling the payload — cheap inspection for tooling and supervisors."""
    path = Path(path)
    with open(path, "rb") as fh:
        return _read_header(fh, path)


def load_checkpoint(
    path: Union[str, Path], *, backend: Optional[str] = None
) -> Simulator:
    """Restore a :class:`Simulator` from ``path``, verifying the payload
    checksum first.  The returned simulator carries ``resumed_from_cycle``
    and finishes the run via ``sim.run()`` exactly as the original would
    have.

    A checkpoint always resumes on the backend that wrote it (recorded in
    the header's config).  Pass ``backend`` to *assert* which backend that
    is: a mismatch raises :class:`CheckpointError` before unpickling.
    Cross-backend resume is deliberately unsupported — the two backends
    snapshot different state shapes, and a silent conversion could not be
    bit-for-bit audited (see docs/CHECKPOINTING.md)."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"{path}: no such checkpoint")
    with open(path, "rb") as fh:
        header = _read_header(fh, path)
        if backend is not None:
            recorded = header.get("config", {}).get("backend", "object")
            if backend != recorded:
                raise CheckpointError(
                    f"{path}: checkpoint was written by the {recorded!r} "
                    f"backend but backend={backend!r} was requested; "
                    "cross-backend resume is not supported — resume on the "
                    "recorded backend, or restart from the original config"
                )
        payload = fh.read()
    expected_bytes = header.get("payload_bytes")
    if expected_bytes is not None and len(payload) != expected_bytes:
        raise CheckpointError(
            f"{path}: truncated payload ({len(payload)} of "
            f"{expected_bytes} bytes)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(f"{path}: payload checksum mismatch")
    try:
        sim = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickling failure
        raise CheckpointError(f"{path}: failed to unpickle payload: {exc}") from exc
    if not isinstance(sim, Simulator):
        raise CheckpointError(
            f"{path}: payload is a {type(sim).__name__}, not a Simulator"
        )
    sim.resumed_from_cycle = sim.network.cycle
    return sim


def resume_from(
    path: Union[str, Path], *, backend: Optional[str] = None
) -> Simulator:
    """Alias of :func:`load_checkpoint` (the name the CLI and docs use)."""
    return load_checkpoint(path, backend=backend)
