"""Content-addressed result cache for campaign variants.

Simulations are deterministic functions of their config, so a variant's
result can be cached under the SHA-256 of its canonical config JSON — the
same digest family the checkpoint header carries for its payload.  Two
variants with different *names* but identical configs share one cache
entry; a repeated campaign over the same grid is served entirely from
cache (``metadata["cache_hit"] = True``) without spawning a worker.

The key deliberately excludes ``checkpoint_interval``/``checkpoint_path``:
those are supervision infrastructure, not part of the experiment, and a
result must not change identity because a different campaign checkpointed
it on a different schedule.  For the same reason :func:`result_core`
strips the ``checkpoints_written`` counter from the cached row — every
other field of the stored envelope is bit-for-bit reproducible
(docs/CHECKPOINTING.md's resume guarantee extends to campaign retries).

Entries are ``repro/v1`` envelopes written atomically (temp + fsync +
rename) as ``<sha256>.json``; a torn or hand-damaged entry reads as a
cache miss, never as a wrong result.  ``--cache-verify`` mode re-runs the
simulation anyway and byte-compares the fresh canonical envelope against
the stored one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.telemetry.export import SCHEMA_VERSION

__all__ = [
    "CACHE_ENVELOPE_COMMAND",
    "ResultCache",
    "cache_config",
    "cache_key",
    "canonical_envelope",
    "result_core",
]

CACHE_ENVELOPE_COMMAND = "campaign-variant"

#: Config keys that describe supervision infrastructure, not the
#: experiment; they must not change a result's identity.
_INFRA_CONFIG_KEYS = ("checkpoint_interval", "checkpoint_path")

#: Counters that record supervision activity rather than simulated
#: behaviour; stripped from cached rows so the envelope is identical
#: whether or not (and how often) the run was checkpointed.
_INFRA_COUNTERS = frozenset({"checkpoints_written"})

#: The deterministic row fields a cache entry stores (everything except
#: names, diagnostics and supervision metadata).
_CORE_FIELDS = (
    "avg_latency",
    "avg_hops",
    "energy_per_packet_nj",
    "throughput",
    "packets_delivered",
    "packets_lost",
    "error",
)


def cache_config(config_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The serialized config with supervision-infrastructure keys removed
    (the form the cache key and the stored envelope use)."""
    return {
        key: value
        for key, value in config_dict.items()
        if key not in _INFRA_CONFIG_KEYS
    }


def cache_key(config_dict: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the variant's canonical config JSON."""
    canonical = json.dumps(
        cache_config(config_dict), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_core(row: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic core of a result row: headline metrics + counters,
    minus supervision provenance (attempts, resume cycles, cache flags)."""
    core = {name: row[name] for name in _CORE_FIELDS}
    core["counters"] = {
        name: count
        for name, count in sorted(row.get("counters", {}).items())
        if name not in _INFRA_COUNTERS
    }
    return core


def canonical_envelope(
    config_dict: Dict[str, Any], row: Dict[str, Any]
) -> bytes:
    """The exact bytes a cache entry stores: a compact, key-sorted
    ``repro/v1`` envelope of the variant's config and core result.  Two
    executions of the same config must produce identical bytes — the chaos
    drill (tools/chaos_campaign.py) holds the service to that."""
    envelope = {
        "schema": SCHEMA_VERSION,
        "command": CACHE_ENVELOPE_COMMAND,
        "config": cache_config(config_dict),
        "result": result_core(row),
    }
    return (
        json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class ResultCache:
    """A directory of ``<sha256>.json`` result envelopes."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored core result for ``key``, or None.

        Anything unexpected — missing file, torn write, hand-edited JSON,
        wrong schema — is a miss: the variant is simply re-simulated.
        """
        path = self.path(key)
        try:
            data = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != SCHEMA_VERSION
            or data.get("command") != CACHE_ENVELOPE_COMMAND
            or not isinstance(data.get("result"), dict)
        ):
            return None
        return data["result"]

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored envelope bytes (for ``--cache-verify`` comparison)."""
        try:
            return self.path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, envelope_bytes: bytes) -> Path:
        """Atomically store an envelope (last writer wins — both wrote the
        same bytes if the determinism contract holds)."""
        path = self.path(key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(envelope_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))  # det: ok — a count
