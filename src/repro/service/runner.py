"""The durable campaign supervisor.

Builds the fleet-scale execution loop on top of the primitives next door:
watchdogged worker processes (one per attempt, SIGKILL on wall-clock
overrun), retry scheduling through :class:`~repro.service.policy.RetryPolicy`
backoff, the :mod:`~repro.service.journal` for durability across a
supervisor SIGKILL, the :mod:`~repro.service.cache` for content-addressed
result reuse, and a whole-campaign deadline with graceful degradation.

Supervision is event-driven: the loop blocks in
:func:`multiprocessing.connection.wait` on the worker process sentinels
(with a timeout bounded by the nearest watchdog/backoff/deadline edge)
instead of polling on a fixed ``sleep`` — idle supervision of a long
campaign costs no CPU.

All wall-clock reads here are supervisor infrastructure, never simulation
state, hence the ``# det: ok`` markers (docs/VERIFICATION.md, DET003).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.cache import ResultCache, cache_key, canonical_envelope
from repro.service.journal import (
    CampaignJournal,
    JournalError,
    JournalState,
    read_journal,
)
from repro.service.policy import RetryPolicy

__all__ = ["CampaignOutcome", "resume_campaign", "run_service_campaign"]


def _worker(
    name: str,
    config_dict: Dict[str, Any],
    ckpt_path: Optional[str],
    ckpt_interval: int,
    result_path: str,
) -> None:
    """Child-process entry point for one attempt.

    Communicates through an atomically-written JSON result file rather
    than a pipe/queue, so a SIGKILL from the watchdog (or the OOM killer)
    can never leave the supervisor holding a half-readable message: either
    the file exists and is complete, or the attempt is treated as crashed.

    Resumes from ``ckpt_path`` when a previous attempt left one behind; a
    checkpoint that turns out corrupt or truncated is *discarded* — the
    attempt restarts from cycle 0 and reports the discard on
    ``row["checkpoint_discarded"]`` — instead of failing the variant on an
    artifact of its own crash.
    """
    from repro.campaign import _failed_row, _ok_row
    from repro.noc.simulator import Simulator
    from repro.serialization import config_from_dict

    resumed: Optional[int] = None
    discarded: Optional[str] = None
    sim = None
    try:
        if ckpt_path is not None and os.path.exists(ckpt_path):
            from repro.checkpoint import CheckpointError, load_checkpoint

            try:
                sim = load_checkpoint(ckpt_path)
                resumed = sim.resumed_from_cycle
            except CheckpointError as exc:
                discarded = str(exc)
                try:
                    os.unlink(ckpt_path)
                except OSError:
                    pass
        if sim is None:
            config = config_from_dict(config_dict)
            if ckpt_path is not None:
                config = config.replace(
                    checkpoint_interval=ckpt_interval,
                    checkpoint_path=ckpt_path,
                )
            sim = Simulator(config)
        result = sim.run()
        row = _ok_row(name, config_dict, result)
    except Exception as exc:  # noqa: BLE001 — the row carries the error
        row = _failed_row(name, config_dict, f"{type(exc).__name__}: {exc}")
    row["resumed_from_cycle"] = resumed
    if discarded is not None:
        row["checkpoint_discarded"] = discarded
    tmp = f"{result_path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(row, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, result_path)


class _Job:
    """Supervisor-side bookkeeping for one campaign variant."""

    __slots__ = (
        "index",
        "name",
        "config_dict",
        "key",
        "attempts",
        "attempt_errors",
        "checkpoint_discarded",
        "ckpt_path",
        "result_path",
        "row",
    )

    def __init__(self, index: int, name: str, config_dict: Dict[str, Any]):
        self.index = index
        self.name = name
        self.config_dict = config_dict
        self.key = cache_key(config_dict)
        self.attempts = 0
        self.attempt_errors: List[str] = []
        self.checkpoint_discarded: Optional[str] = None
        self.ckpt_path: Optional[str] = None
        self.result_path: Optional[str] = None
        self.row: Optional[Dict[str, Any]] = None


@dataclass
class CampaignOutcome:
    """Raw rows (dict form, variant order) plus the service counters."""

    rows: List[Dict[str, Any]]
    stats: Dict[str, Any] = field(default_factory=dict)


def run_service_campaign(
    items: Sequence[Tuple[str, Dict[str, Any]]],
    *,
    processes: int = 1,
    retries: int = 0,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    deadline_grace: float = 2.0,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 500,
    backoff: Optional[RetryPolicy] = None,
    journal_path: Optional[str] = None,
    journal_meta: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
    cache_verify: bool = False,
    resume_state: Optional[JournalState] = None,
) -> CampaignOutcome:
    """Run ``(name, config_dict)`` variants under full supervision.

    This is the low-level engine behind :func:`repro.campaign.run_campaign`
    (which adds linting and typed rows) and ``repro campaign``.  Configs
    travel as serialized dicts for picklability.  See docs/CAMPAIGNS.md
    for the state machine and failure semantics.
    """
    import multiprocessing
    from multiprocessing.connection import wait as sentinel_wait

    policy = backoff if backoff is not None else RetryPolicy()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)

    stats: Dict[str, Any] = {
        "variants": len(items),
        "completed": 0,
        "failed": 0,
        "attempts": 0,
        "retries": 0,
        "timeouts": 0,
        "cache_hits": 0,
        "cache_stores": 0,
        "cache_verified": 0,
        "cache_mismatches": 0,
        "checkpoints_discarded": 0,
        "deadline_expired": False,
        "deadline_failed": 0,
        "max_queue_depth": 0,
        "backoff_total_s": 0.0,
    }

    journal: Optional[CampaignJournal] = None
    if journal_path is not None:
        if resume_state is not None:
            journal = CampaignJournal.append_to(journal_path)
        else:
            # The header carries the expected variant count so a resume
            # can detect a journal whose enqueue phase was cut short (a
            # supervisor crash mid-enqueue commits only a prefix of the
            # queued records).
            header = dict(journal_meta or {})
            header.setdefault("variants", len(items))
            journal = CampaignJournal.create(journal_path, header)

    def record(type_: str, **fields: Any) -> None:
        if journal is not None:
            journal.append(type_, **fields)

    start = time.monotonic()  # det: ok — supervisor wall clock
    deadline_at = start + deadline if deadline is not None else None

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as workdir:
        jobs: List[_Job] = []
        for i, (name, config_dict) in enumerate(items):
            job = _Job(i, name, config_dict)
            if checkpoint_dir is not None:
                job.ckpt_path = os.path.join(
                    checkpoint_dir, f"variant_{i:04d}.ckpt"
                )
            job.result_path = os.path.join(workdir, f"result_{i:04d}.json")
            jobs.append(job)

        if resume_state is not None:
            for job in jobs:
                job.attempts = resume_state.attempts.get(job.index, 0)
                stats["attempts"] += job.attempts
                # Carry the pre-crash attempt history so the final row's
                # metadata covers the whole lifecycle, not just the
                # resumed supervisor's share of it.
                job.attempt_errors = list(
                    resume_state.attempt_errors.get(job.index, [])
                )
                job.checkpoint_discarded = resume_state.discards.get(
                    job.index
                )
                if job.index in resume_state.rows:
                    job.row = resume_state.rows[job.index]
                    # Pre-crash results count toward the service totals,
                    # so the summary record and --json stats cover the
                    # whole campaign, not just the resumed share.
                    if job.row.get("error") is None:
                        stats["completed"] += 1
                    else:
                        stats["failed"] += 1
            record(
                "resumed",
                finished=len(resume_state.rows),
                pending=len(jobs) - len(resume_state.rows),
            )
        else:
            for job in jobs:
                record(
                    "queued",
                    variant=job.index,
                    name=job.name,
                    config=job.config_dict,
                    config_sha256=job.key,
                )

        # (ready_time, index) — ready_time moves forward on backoff.
        ready: List[Tuple[float, int]] = []
        for job in jobs:
            if job.row is None:
                heappush(ready, (0.0, job.index))
        by_index = {job.index: job for job in jobs}
        running: List[Tuple[_Job, Any, Optional[float]]] = []

        def finish(job: _Job, row: Dict[str, Any], terminal: str) -> None:
            """Commit a variant's final row and journal the transition."""
            row.setdefault("attempts", job.attempts)
            if job.attempt_errors:
                row["attempt_errors"] = list(job.attempt_errors)
            if (
                job.checkpoint_discarded is not None
                and "checkpoint_discarded" not in row
            ):
                row["checkpoint_discarded"] = job.checkpoint_discarded
            job.row = row
            if row["error"] is None:
                stats["completed"] += 1
            else:
                stats["failed"] += 1
            if row["error"] == "timeout" and job.ckpt_path is not None:
                # Report how far the checkpoints got so the campaign table
                # shows the variant's last durable cycle.
                try:
                    from repro.checkpoint import read_checkpoint_header

                    row["last_checkpoint_cycle"] = read_checkpoint_header(
                        job.ckpt_path
                    )["cycle"]
                except Exception:  # noqa: BLE001 — best-effort provenance
                    pass
            record(terminal, variant=job.index, row=row)
            if job.ckpt_path is not None and row["error"] is None:
                # The run completed; its checkpoint is stale state now.
                try:
                    os.unlink(job.ckpt_path)
                except OSError:
                    pass

        def note_discard(job: _Job, row: Dict[str, Any]) -> None:
            discarded = row.get("checkpoint_discarded")
            if discarded is not None:
                job.checkpoint_discarded = discarded
                stats["checkpoints_discarded"] += 1
                record(
                    "checkpoint_discarded",
                    variant=job.index,
                    attempt=job.attempts,
                    error=discarded,
                )

        def attempt_failed(job: _Job, row: Dict[str, Any]) -> None:
            """One attempt failed: back off and requeue, or finalize."""
            error = row["error"]
            job.attempt_errors.append(error)
            note_discard(job, row)
            if error == "timeout":
                stats["timeouts"] += 1
            if job.attempts <= retries:
                pause = policy.delay(job.index, job.attempts)
                stats["retries"] += 1
                stats["backoff_total_s"] += pause
                record(
                    "attempt",
                    variant=job.index,
                    attempt=job.attempts,
                    error=error,
                    retry_in=round(pause, 6),
                )
                heappush(
                    ready,
                    (time.monotonic() + pause, job.index),  # det: ok
                )
            else:
                finish(
                    job, row, "timeout" if error == "timeout" else "failed"
                )

        def complete_attempt(job: _Job, row: Dict[str, Any]) -> None:
            """A worker produced a result file — success or failure."""
            if row["error"] is not None:
                attempt_failed(job, row)
                return
            note_discard(job, row)
            if cache is not None:
                fresh = canonical_envelope(job.config_dict, row)
                stored = cache.get_bytes(job.key)
                if cache_verify and stored is not None:
                    if stored == fresh:
                        row["cache_verified"] = True
                        stats["cache_verified"] += 1
                    else:
                        row["cache_verified"] = False
                        stats["cache_mismatches"] += 1
                        record(
                            "cache_mismatch",
                            variant=job.index,
                            key=job.key,
                        )
                        cache.put(job.key, fresh)
                elif stored != fresh:
                    cache.put(job.key, fresh)
                    stats["cache_stores"] += 1
            finish(job, row, "done")

        def reap(job: _Job, proc: Any) -> None:
            """Collect a finished (or killed) worker's outcome."""
            proc.join()
            if os.path.exists(job.result_path):
                with open(job.result_path) as fh:
                    complete_attempt(job, json.load(fh))
            else:
                from repro.campaign import _failed_row

                attempt_failed(
                    job,
                    dict(
                        _failed_row(
                            job.name,
                            job.config_dict,
                            f"worker died without a result "
                            f"(exit code {proc.exitcode})",
                        ),
                        resumed_from_cycle=None,
                    ),
                )

        deadline_expired = False
        while ready or running:
            now = time.monotonic()  # det: ok — supervisor wall clock
            if deadline_at is not None and now >= deadline_at:
                deadline_expired = True
                break
            # Launch every ready job a process slot can take.
            while ready and len(running) < processes and ready[0][0] <= now:
                _, index = heappop(ready)
                job = by_index[index]
                if (
                    cache is not None
                    and not cache_verify
                    and job.attempts == 0
                ):
                    cached = cache.get(job.key)
                    if cached is not None:
                        stats["cache_hits"] += 1
                        record("cache_hit", variant=job.index, key=job.key)
                        row = dict(
                            cached,
                            name=job.name,
                            config=job.config_dict,
                            cache_hit=True,
                            attempts=0,
                        )
                        finish(job, row, "done")
                        continue
                job.attempts += 1
                stats["attempts"] += 1
                if os.path.exists(job.result_path):
                    os.unlink(job.result_path)
                record("leased", variant=job.index, attempt=job.attempts)
                proc = multiprocessing.Process(
                    target=_worker,
                    args=(
                        job.name,
                        job.config_dict,
                        job.ckpt_path,
                        checkpoint_interval,
                        job.result_path,
                    ),
                    daemon=True,
                )
                proc.start()
                kill_at = (
                    time.monotonic() + timeout  # det: ok — watchdog
                    if timeout is not None
                    else None
                )
                running.append((job, proc, kill_at))
            depth = len(ready) + len(running)
            if depth > stats["max_queue_depth"]:
                stats["max_queue_depth"] = depth
            # Sleep until the nearest edge: a worker exiting (its sentinel
            # wakes us immediately), a watchdog expiry, a backoff-delayed
            # job coming ready, or the campaign deadline.
            now = time.monotonic()  # det: ok — supervisor wall clock
            edges = [0.5]
            if deadline_at is not None:
                edges.append(deadline_at - now)
            for _, _, kill_at in running:
                if kill_at is not None:
                    edges.append(kill_at - now)
            if ready and len(running) < processes:
                edges.append(ready[0][0] - now)
            pause = max(0.0, min(edges))
            if running:
                sentinel_wait(
                    [proc.sentinel for _, proc, _ in running], timeout=pause
                )
            elif ready and pause > 0.0:
                # Nothing running and every queued job is backing off:
                # sleep until the earliest comes ready.
                time.sleep(pause)
            # Reap exits and enforce per-attempt watchdogs.
            now = time.monotonic()  # det: ok — supervisor wall clock
            still_running = []
            for job, proc, kill_at in running:
                if proc.is_alive():
                    if kill_at is not None and now >= kill_at:
                        proc.kill()
                        proc.join()
                        from repro.campaign import _failed_row

                        attempt_failed(
                            job,
                            dict(
                                _failed_row(
                                    job.name, job.config_dict, "timeout"
                                ),
                                resumed_from_cycle=None,
                            ),
                        )
                    else:
                        still_running.append((job, proc, kill_at))
                    continue
                reap(job, proc)
            running = still_running

        if deadline_expired:
            stats["deadline_expired"] = True
            record(
                "deadline",
                in_flight=[job.index for job, _, _ in running],
                queued=[index for _, index in ready],
            )
            # Graceful degradation: in-flight workers get a grace period
            # to finish on their own, then SIGKILL; everything unfinished
            # comes back as a partial row with error="campaign_deadline".
            grace_end = time.monotonic() + max(deadline_grace, 0.0)  # det: ok
            while running:
                remaining = grace_end - time.monotonic()  # det: ok
                if remaining <= 0:
                    break
                sentinel_wait(
                    [proc.sentinel for _, proc, _ in running],
                    timeout=remaining,
                )
                still_running = []
                for job, proc, kill_at in running:
                    if proc.is_alive():
                        still_running.append((job, proc, kill_at))
                    else:
                        reap(job, proc)
                running = still_running
            from repro.campaign import _failed_row

            for job, proc, _ in running:
                proc.kill()
                proc.join()
                if os.path.exists(job.result_path):
                    # The worker finished during the kill window; its
                    # result is complete — keep it.
                    with open(job.result_path) as fh:
                        complete_attempt(job, json.load(fh))
                    continue
                stats["deadline_failed"] += 1
                finish(
                    job,
                    dict(
                        _failed_row(
                            job.name, job.config_dict, "campaign_deadline"
                        ),
                        resumed_from_cycle=None,
                    ),
                    "failed",
                )
            while ready:
                _, index = heappop(ready)
                job = by_index[index]
                if job.row is not None:
                    continue
                stats["deadline_failed"] += 1
                finish(
                    job,
                    dict(
                        _failed_row(
                            job.name, job.config_dict, "campaign_deadline"
                        ),
                        resumed_from_cycle=None,
                    ),
                    "failed",
                )

        stats["backoff_total_s"] = round(stats["backoff_total_s"], 6)
        stats["wall_s"] = round(time.monotonic() - start, 6)  # det: ok
        record("summary", stats=stats)
        if journal is not None:
            journal.close()
        return CampaignOutcome(rows=[job.row for job in jobs], stats=stats)


def resume_campaign(
    journal_path: str,
    *,
    processes: Optional[int] = None,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    deadline_grace: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: Optional[int] = None,
    backoff: Optional[RetryPolicy] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    cache_verify: Optional[bool] = None,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Resume a journaled campaign after a supervisor crash.

    Replays the journal, re-enqueues only variants without a terminal
    record (completed variants keep their recorded rows and are never
    re-run), and continues under the same settings the journal's header
    recorded — any keyword given here overrides the recorded value, and
    ``no_cache=True`` disables the result cache even when the header
    recorded a ``cache_dir``.  Returns ``(rows, stats)`` with rows as
    typed :class:`~repro.campaign.CampaignRow` in the original queue
    order.

    Raises :class:`JournalError` when the journal holds fewer ``queued``
    records than the header's expected variant count: the supervisor
    crashed mid-enqueue, the missing variants' configs were never
    journaled, and resuming would silently drop them — restart such a
    campaign from its spec instead.
    """
    from repro.campaign import rows_from_raw

    state = read_journal(journal_path)
    meta = state.meta
    expected = meta.get("variants")
    if expected is not None and len(state.variants) < expected:
        raise JournalError(
            f"{journal_path}: journal holds {len(state.variants)} of "
            f"{expected} queued variants — the supervisor crashed before "
            "the work list was fully journaled, so the missing variants "
            "cannot be resumed; restart the campaign from its spec"
        )

    def setting(override: Any, key: str, default: Any) -> Any:
        if override is not None:
            return override
        value = meta.get(key)
        return default if value is None else value

    recorded_backoff = meta.get("backoff")
    if backoff is None and recorded_backoff is not None:
        backoff = RetryPolicy.from_dict(recorded_backoff)
    items = [(v["name"], v["config"]) for v in state.variants]
    outcome = run_service_campaign(
        items,
        processes=setting(processes, "processes", 1),
        retries=setting(retries, "retries", 0),
        timeout=setting(timeout, "timeout", None),
        deadline=setting(deadline, "deadline", None),
        deadline_grace=setting(deadline_grace, "deadline_grace", 2.0),
        checkpoint_dir=setting(checkpoint_dir, "checkpoint_dir", None),
        checkpoint_interval=setting(
            checkpoint_interval, "checkpoint_interval", 500
        ),
        backoff=backoff,
        journal_path=journal_path,
        cache_dir=None if no_cache else setting(cache_dir, "cache_dir", None),
        cache_verify=bool(setting(cache_verify, "cache_verify", False)),
        resume_state=state,
    )
    return rows_from_raw(outcome.rows), outcome.stats
