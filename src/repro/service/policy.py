"""Retry backoff policy: exponential growth, deterministic seeded jitter.

The legacy supervised runner re-launched a failed attempt immediately,
which turns an environmental flake (an OOM-killed worker, a saturated
machine) into a tight crash loop.  :class:`RetryPolicy` spaces attempts
out exponentially and adds *deterministic* jitter: the jitter fraction is
derived from a SHA-256 of ``(seed, variant, attempt)``, so two supervisors
replaying the same campaign schedule identical delays — no process-global
RNG, nothing for the determinism analyzer (DET004) to flag — while
different variants still de-synchronize instead of thundering back in
lockstep.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for a variant's retry attempts.

    ``delay(variant, attempt)`` is the pause before attempt ``attempt + 1``
    after the ``attempt``-th (1-based) attempt failed::

        base * factor**(attempt-1), capped at ``maximum``,
        then scaled by 1 + jitter * u   with u in [0, 1) deterministic.

    ``RetryPolicy.none()`` disables backoff entirely (the legacy
    immediate-retry behaviour, used by tests that count wall-clock).
    """

    base: float = 0.05
    factor: float = 2.0
    maximum: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("backoff base must be >= 0 seconds")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.maximum < self.base:
            raise ValueError("backoff maximum must be >= base")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-backoff policy: every retry fires immediately."""
        return cls(base=0.0, factor=1.0, maximum=0.0, jitter=0.0)

    def delay(self, variant: int, attempt: int) -> float:
        """Seconds to wait after ``attempt`` (1-based) of ``variant`` failed."""
        if attempt < 1 or self.base == 0.0:
            return 0.0
        raw = self.base * (self.factor ** (attempt - 1))
        capped = min(raw, self.maximum)
        return capped * (1.0 + self.jitter * self._unit(variant, attempt))

    def _unit(self, variant: int, attempt: int) -> float:
        """A stable uniform draw in [0, 1) for (seed, variant, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{variant}:{attempt}".encode("ascii")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def to_dict(self) -> dict:
        return {
            "base": self.base,
            "factor": self.factor,
            "maximum": self.maximum,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)
