"""The campaign service layer: durable, cache-aware fleet execution.

``repro.service`` turns :func:`repro.campaign.run_campaign`'s supervised
worker pool into a long-lived, crash-survivable execution service (ROADMAP
item 2(b)).  Four pieces compose (docs/CAMPAIGNS.md is the reference):

* :mod:`repro.service.journal` — an append-only JSONL journal
  (``CAMPAIGN-JOURNAL`` header, atomic fsynced appends) recording every
  variant state transition (queued → leased → attempt-N → done/failed/
  timeout), so a campaign whose *supervisor* is SIGKILLed resumes by
  re-enqueueing only unfinished variants.
* :mod:`repro.service.policy` — :class:`RetryPolicy`: exponential backoff
  with deterministic seeded jitter between attempts.
* :mod:`repro.service.cache` — :class:`ResultCache`: results stored as
  ``repro/v1`` envelopes keyed by the SHA-256 of the variant's canonical
  config JSON, so duplicate variants within and across campaigns are
  served from cache instead of re-simulated.
* :mod:`repro.service.runner` — the supervisor itself: watchdogged worker
  processes, backoff-scheduled retries, a whole-campaign deadline with
  graceful degradation, checkpoint-resume on retry (corrupt checkpoints
  are discarded, not fatal), journal and cache integration.

``tools/chaos_campaign.py`` is the standing proof: it SIGKILLs workers,
corrupts checkpoints, stalls a worker past its watchdog and SIGKILLs the
supervisor itself mid-journal, then requires the resumed campaign's result
envelopes to be bit-for-bit equal to an undisturbed run's.
"""

from repro.service.cache import (
    CACHE_ENVELOPE_COMMAND,
    ResultCache,
    cache_config,
    cache_key,
    canonical_envelope,
    result_core,
)
from repro.service.journal import (
    JOURNAL_MAGIC,
    JOURNAL_VERSION,
    CampaignJournal,
    JournalError,
    JournalState,
    read_journal,
)
from repro.service.policy import RetryPolicy
from repro.service.runner import (
    CampaignOutcome,
    resume_campaign,
    run_service_campaign,
)

__all__ = [
    "CACHE_ENVELOPE_COMMAND",
    "CampaignJournal",
    "CampaignOutcome",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalState",
    "ResultCache",
    "RetryPolicy",
    "cache_config",
    "cache_key",
    "canonical_envelope",
    "read_journal",
    "result_core",
    "resume_campaign",
    "run_service_campaign",
]
