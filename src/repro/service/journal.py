"""The durable campaign journal: append-only JSONL, crash-tolerant replay.

File format — a magic line, a JSON header, then one JSON record per
variant state transition::

    CAMPAIGN-JOURNAL
    {"schema": "repro/v1", "journal_version": 1, ...meta}
    {"type": "queued", "variant": 0, "name": ..., "config": {...}, ...}
    {"type": "leased", "variant": 0, "attempt": 1}
    {"type": "attempt", "variant": 0, "attempt": 1, "error": "...", ...}
    {"type": "done", "variant": 0, "row": {...}}

Appends are a single sequential ``write`` followed by ``flush`` +
``fsync``, so a SIGKILLed supervisor can tear at most the *final* line of
the file; :func:`read_journal` ignores a trailing partial record and
raises :class:`JournalError` only for corruption anywhere earlier (which a
crash cannot produce).  ``queued`` records carry the variant's full
serialized config, making the journal self-contained: ``repro campaign
--resume DIR`` rebuilds the whole work list from the journal alone and
re-enqueues only variants without a terminal ``done``/``failed``/
``timeout`` record — completed variants are never re-run.

Record vocabulary (the supervisor's event stream — this *is* the service
telemetry; counters are summarized in the terminal ``summary`` record):

========================  ==================================================
``queued``                variant admitted to the queue (carries config)
``leased``                attempt N handed to a worker process
``attempt``               attempt N failed (error, backoff ``retry_in``)
``checkpoint_discarded``  a corrupt/truncated checkpoint was dropped and
                          the retry restarted from cycle 0
``cache_hit``             variant served from the content-addressed cache
``done`` / ``failed`` /   terminal transition; carries the full result row
``timeout``
``deadline``              the whole-campaign deadline expired (per-variant
                          ``campaign_deadline`` rows follow as ``failed``)
``resumed``               a new supervisor took over this journal
``summary``               end-of-campaign service counters
========================  ==================================================
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.export import SCHEMA_VERSION

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "JournalError",
    "JournalState",
    "read_journal",
]

JOURNAL_MAGIC = "CAMPAIGN-JOURNAL"

#: Bumped whenever the record vocabulary changes incompatibly.
JOURNAL_VERSION = 1

#: Record types that end a variant's lifecycle (they carry its final row).
TERMINAL_TYPES = frozenset({"done", "failed", "timeout"})


class JournalError(RuntimeError):
    """The journal file is missing, not a journal, or corrupt mid-file."""


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class CampaignJournal:
    """Append-side handle: one open file, fsynced line appends."""

    def __init__(self, path: Union[str, Path], fh: Any):
        self.path = Path(path)
        self._fh = fh

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
    ) -> "CampaignJournal":
        """Start a fresh journal (refuses to clobber an existing one)."""
        path = Path(path)
        if path.exists():
            raise JournalError(
                f"{path}: journal already exists — resume it or remove it"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"schema": SCHEMA_VERSION, "journal_version": JOURNAL_VERSION}
        header.update(meta or {})
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fh)
        fh.write(JOURNAL_MAGIC + "\n")
        fh.write(_dumps(header) + "\n")
        journal._sync()
        return journal

    @classmethod
    def append_to(cls, path: Union[str, Path]) -> "CampaignJournal":
        """Open an existing journal for further appends (resume path).

        Repairs a torn final line first: a SIGKILLed append leaves a
        partial record with no trailing newline, and appending after it
        would weld the next record onto the fragment — turning damage
        :func:`read_journal` tolerates (a torn *tail*) into mid-file
        corruption it rejects.  Truncating back to the last committed
        newline restores the invariant that every record starts on a
        fresh line.
        """
        path = Path(path)
        with open(path, "rb") as fh:
            data = fh.read()
        if not data.startswith((JOURNAL_MAGIC + "\n").encode("utf-8")):
            raise JournalError(f"{path}: not a campaign journal (bad magic)")
        if not data.endswith(b"\n"):
            os.truncate(path, data.rfind(b"\n") + 1)
        return cls(path, open(path, "a", encoding="utf-8"))

    def append(self, type_: str, **fields: Any) -> None:
        """Durably append one record (a single write + flush + fsync, so a
        crash can only tear the final line)."""
        record = {"type": type_}
        record.update(fields)
        self._fh.write(_dumps(record) + "\n")
        self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._sync()
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class JournalState:
    """Everything a replay of the journal establishes."""

    meta: Dict[str, Any]
    #: Ordered ``queued`` payloads: ``{"variant", "name", "config", ...}``.
    variants: List[Dict[str, Any]] = field(default_factory=list)
    #: Final rows of variants that reached a terminal record.
    rows: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Attempts already consumed per variant (counted from ``leased``).
    attempts: Dict[int, int] = field(default_factory=dict)
    #: Failed-attempt error strings per variant, in order (``attempt``
    #: records) — carried into a resumed supervisor so a variant's full
    #: attempt history survives a crash.
    attempt_errors: Dict[int, List[str]] = field(default_factory=dict)
    #: Checkpoint-discard provenance per variant (the latest
    #: ``checkpoint_discarded`` record's error).
    discards: Dict[int, str] = field(default_factory=dict)
    #: Every fully-written record, in order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Whether the final line was torn (a crashed append) and ignored.
    torn_tail: bool = False

    @property
    def unfinished(self) -> List[Dict[str, Any]]:
        """Queued variants without a terminal record, in queue order."""
        return [v for v in self.variants if v["variant"] not in self.rows]


def read_journal(path: Union[str, Path]) -> JournalState:
    """Replay a journal into a :class:`JournalState`.

    Tolerates exactly the damage a SIGKILL can cause — a torn *final*
    line — and raises :class:`JournalError` for anything else (bad magic,
    unparseable header, corruption mid-file).
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"{path}: no such journal")
    with open(path, "r", encoding="utf-8", newline="\n") as fh:
        lines = fh.read().split("\n")
    # A well-formed file ends with "\n", so split leaves a final "".
    complete, tail = lines[:-1], lines[-1]
    torn = tail != ""
    if not complete or complete[0] != JOURNAL_MAGIC:
        raise JournalError(f"{path}: not a campaign journal (bad magic)")
    if len(complete) < 2:
        if torn:
            raise JournalError(f"{path}: journal header never committed")
        raise JournalError(f"{path}: journal has no header")
    try:
        meta = json.loads(complete[1])
    except ValueError as exc:
        raise JournalError(f"{path}: unparseable journal header") from exc
    version = meta.get("journal_version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: journal version {version!r} is not supported by this "
            f"build (expects {JOURNAL_VERSION})"
        )
    state = JournalState(meta=meta, torn_tail=torn)
    for lineno, line in enumerate(complete[2:], start=3):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise JournalError(
                f"{path}: corrupt record at line {lineno} (not a torn "
                "tail — the file was damaged after it was written)"
            ) from exc
        state.records.append(record)
        kind = record.get("type")
        variant = record.get("variant")
        if kind == "queued":
            state.variants.append(record)
        elif kind == "leased":
            state.attempts[variant] = max(
                state.attempts.get(variant, 0), int(record.get("attempt", 0))
            )
        elif kind == "attempt":
            state.attempt_errors.setdefault(variant, []).append(
                record.get("error", "")
            )
        elif kind == "checkpoint_discarded":
            state.discards[variant] = record.get("error", "")
        elif kind in TERMINAL_TYPES and "row" in record:
            state.rows[variant] = record["row"]
    return state
