"""Workload generation: destination distributions and injection processes.

The paper's three destination distributions (Section 2.2) are normal random
(NR), bit-complement (BC) and tornado (TN); transpose and hotspot are
provided as standard extras for ablation studies.
"""

from repro.traffic.injection import BernoulliInjection, InjectionProcess, PeriodicInjection
from repro.traffic.patterns import (
    BitComplementTraffic,
    HotspotTraffic,
    TornadoTraffic,
    TrafficPattern,
    TransposeTraffic,
    UniformTraffic,
    make_traffic_pattern,
)

__all__ = [
    "BernoulliInjection",
    "BitComplementTraffic",
    "HotspotTraffic",
    "InjectionProcess",
    "PeriodicInjection",
    "TornadoTraffic",
    "TrafficPattern",
    "TransposeTraffic",
    "UniformTraffic",
    "make_traffic_pattern",
]
