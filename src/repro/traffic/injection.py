"""Injection processes.

The paper injects "messages into the network at regular intervals specified
by the injection rate" — a periodic process — so :class:`PeriodicInjection`
is the default used by the experiment harness; :class:`BernoulliInjection`
(geometric inter-arrivals with the same mean) is provided for sensitivity
studies, since many NoC papers use it instead.

Rates are in flits/node/cycle, so a node generating ``M``-flit packets
fires every ``M / rate`` cycles on average.
"""

from __future__ import annotations

import random
from typing import List


class InjectionProcess:
    """Decides, per node per cycle, whether a new packet is generated."""

    def __init__(self, num_nodes: int, rate: float, flits_per_packet: int):
        if rate <= 0:
            raise ValueError("injection rate must be positive")
        if flits_per_packet < 1:
            raise ValueError("packets must have at least one flit")
        self.num_nodes = num_nodes
        self.rate = rate
        self.flits_per_packet = flits_per_packet
        #: Mean cycles between packet generations at one node.
        self.interval = flits_per_packet / rate

    def fires(self, node: int, cycle: int, rng: random.Random) -> bool:
        raise NotImplementedError


class BernoulliInjection(InjectionProcess):
    """Independent per-cycle coin flips with probability ``rate / M``."""

    def __init__(self, num_nodes: int, rate: float, flits_per_packet: int):
        super().__init__(num_nodes, rate, flits_per_packet)
        self.probability = min(1.0, rate / flits_per_packet)

    def fires(self, node: int, cycle: int, rng: random.Random) -> bool:
        return rng.random() < self.probability


class PeriodicInjection(InjectionProcess):
    """Fixed inter-arrival of ``M / rate`` cycles with a random per-node
    phase, so the whole network does not inject in lockstep.

    Fractional intervals are handled with an accumulator, so the long-run
    rate is exact (e.g. rate 0.3, M 4 -> every 13.33 cycles on average).
    """

    def __init__(self, num_nodes: int, rate: float, flits_per_packet: int):
        super().__init__(num_nodes, rate, flits_per_packet)
        self._next_fire: List[float] = []

    def _ensure_init(self, rng: random.Random) -> None:
        if not self._next_fire:
            self._next_fire = [
                rng.uniform(0, self.interval) for _ in range(self.num_nodes)
            ]

    def fires(self, node: int, cycle: int, rng: random.Random) -> bool:
        self._ensure_init(rng)
        if cycle >= self._next_fire[node]:
            self._next_fire[node] += self.interval
            return True
        return False
