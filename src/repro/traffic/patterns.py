"""Destination distributions.

Each pattern maps an injecting node to a destination node.  The paper uses
normal random (NR), bit-complement (BC) and tornado (TN) [19]; transpose and
hotspot are common additions used by the ablation benches.

Deterministic patterns may map a node to itself (e.g. the center nodes of an
odd-sized bit-complement); such nodes simply do not inject — the standard
convention — signalled by returning ``None``.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.noc.topology import MeshTopology
from repro.types import Coordinate


class TrafficPattern:
    """Base class: maps a source node to a destination node (or None)."""

    name = "abstract"

    def __init__(self, topology: MeshTopology):
        self.topology = topology

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        raise NotImplementedError


class UniformTraffic(TrafficPattern):
    """Normal random (NR): uniform over all other nodes."""

    name = "uniform"

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        n = self.topology.num_nodes
        if n < 2:
            return None
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1


class BitComplementTraffic(TrafficPattern):
    """Bit-complement (BC): (x, y) -> (W-1-x, H-1-y).

    On power-of-two meshes this equals complementing the node-id bits; the
    coordinate form generalizes to any dimensions.
    """

    name = "bit_complement"

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        topo = self.topology
        c = topo.coordinates_of(src)
        mirrored = Coordinate(
            *(extent - 1 - v for extent, v in zip(topo.shape, c))
        )
        dst = topo.node_at(mirrored)
        return None if dst == src else dst


class TornadoTraffic(TrafficPattern):
    """Tornado (TN): (x, ...) -> ((x + ceil(W/2) - 1) mod W, ...) [19].

    The rotation is along the x axis only, whatever the dimension count —
    the classic adversarial case for dimension-ordered routing.
    """

    name = "tornado"

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        topo = self.topology
        c = topo.coordinates_of(src)
        shift = math.ceil(topo.width / 2) - 1
        rotated = ((c.x + shift) % topo.width,) + tuple(c)[1:]
        dst = topo.node_at(Coordinate(rotated))
        return None if dst == src else dst


class TransposeTraffic(TrafficPattern):
    """Matrix transpose: (x, y) -> (y, x) (square meshes only)."""

    name = "transpose"

    def __init__(self, topology: MeshTopology):
        super().__init__(topology)
        if topology.ndim != 2:
            raise ValueError("transpose traffic is defined on 2D meshes only")
        if topology.width != topology.height:
            raise ValueError("transpose traffic requires a square mesh")

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        c = self.topology.coordinates_of(src)
        dst = self.topology.node_at(Coordinate(c.y, c.x))
        return None if dst == src else dst


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with extra probability mass on hotspot nodes."""

    name = "hotspot"

    def __init__(
        self,
        topology: MeshTopology,
        hotspots: Sequence[int],
        hotspot_fraction: float = 0.2,
    ):
        super().__init__(topology)
        if not hotspots:
            raise ValueError("need at least one hotspot node")
        for node in hotspots:
            if not 0 <= node < topology.num_nodes:
                raise ValueError(f"hotspot {node} outside the mesh")
        if not 0.0 < hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1]")
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformTraffic(topology)

    def destination(self, src: int, rng: random.Random) -> Optional[int]:
        if rng.random() < self.hotspot_fraction:
            choices = [h for h in self.hotspots if h != src]
            if choices:
                return rng.choice(choices)
        return self._uniform.destination(src, rng)


_PATTERNS = {
    "uniform": UniformTraffic,
    "nr": UniformTraffic,
    "bit_complement": BitComplementTraffic,
    "bc": BitComplementTraffic,
    "tornado": TornadoTraffic,
    "tn": TornadoTraffic,
    "transpose": TransposeTraffic,
}


def make_traffic_pattern(name: str, topology: MeshTopology) -> TrafficPattern:
    """Factory accepting both full names and the paper's abbreviations."""
    key = name.lower()
    if key not in _PATTERNS:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(set(_PATTERNS))}"
        )
    return _PATTERNS[key](topology)
