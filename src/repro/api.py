"""The stable public facade: ``import repro.api as api``.

Everything a script, notebook or external harness needs to drive the
simulator lives behind this one module, with small call-shaped functions
instead of the internal class constellation:

* :func:`load_config` — build a :class:`SimulationConfig` from a JSON file,
  a JSON string, a serialized dict, or keyword overrides.
* :func:`run` — run one simulation (telemetry and tracing optional).
* :func:`resume` — finish an interrupted run from a checkpoint file
  (:mod:`repro.checkpoint`; bit-for-bit equal to the uninterrupted run).
* :func:`sweep` — latency vs injection rate over one config.
* :func:`lint` — the static NOC0xx / deadlock-freedom checks.
* :func:`verify` — the routing certification engine: statically prove
  connectivity, livelock-freedom and deadlock-freedom (plus optional
  link-kill robustness sweeps) for a config.
* :func:`degrade` — the graceful-degradation campaign.
* :func:`campaign` / :func:`resume_campaign` — the durable campaign
  service: supervised variant grids with retry backoff, deadlines, a
  crash-proof journal and a content-addressed result cache
  (docs/CAMPAIGNS.md).

Every heavyweight type these return is re-exported here, so user code can
type-annotate and introspect without reaching into internal modules::

    from repro import api

    config = api.load_config(width=4, height=4, telemetry=True)
    result = api.run(config)
    print(result.telemetry.summary())

The internal module layout may shift between releases; this surface is the
compatibility contract (schema ``repro/v1``, see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.analysis.linter import DiagnosticReport, lint_config, lint_paths
from repro.campaign import (
    CampaignLintError,
    CampaignRow,
    campaign_table,
    grid,
    run_campaign,
)
from repro.analysis.verify import (
    FaultSweepVerdict,
    RoutingCertificate,
    TraversalVerdict,
    certify_config,
    certify_routing,
)
from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint_header,
    resume_from,
    save_checkpoint,
)
from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
    parse_link_latency,
    parse_shape,
)
from repro.experiments.degradation import (
    BurstDegradationPoint,
    DegradationPoint,
    run_burst_degradation,
    run_degradation,
)
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    WearOutConfig,
)
from repro.noc.simulator import SimulationResult, Simulator, run_simulation
from repro.serialization import (
    config_from_dict,
    config_to_dict,
    envelope,
    result_from_dict,
    result_to_dict,
)
from repro.service import (
    ResultCache,
    RetryPolicy,
    cache_key,
    read_journal,
    resume_campaign,
)
from repro.telemetry import (
    TelemetryConfig,
    TelemetryReport,
    validate_ndjson_lines,
    write_ndjson,
)

__all__ = [
    "BurstDegradationPoint",
    "CampaignLintError",
    "CampaignRow",
    "CheckpointError",
    "DegradationPoint",
    "DiagnosticReport",
    "FaultConfig",
    "FaultSweepVerdict",
    "IntermittentFault",
    "IntermittentFaultSchedule",
    "WearOutConfig",
    "RoutingCertificate",
    "TraversalVerdict",
    "certify_config",
    "certify_routing",
    "NoCConfig",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "TelemetryConfig",
    "TelemetryReport",
    "WorkloadConfig",
    "ResultCache",
    "RetryPolicy",
    "cache_key",
    "campaign",
    "campaign_table",
    "config_from_dict",
    "config_to_dict",
    "degrade",
    "degrade_burst",
    "envelope",
    "grid",
    "lint",
    "load_checkpoint",
    "load_config",
    "read_checkpoint_header",
    "read_journal",
    "result_from_dict",
    "result_to_dict",
    "resume",
    "resume_campaign",
    "resume_from",
    "run",
    "run_campaign",
    "save_checkpoint",
    "sweep",
    "validate_ndjson_lines",
    "verify",
    "write_ndjson",
]

ConfigLike = Union[SimulationConfig, Mapping[str, Any], str, Path]


def load_config(source: Optional[ConfigLike] = None, **overrides: Any) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from whatever the caller has.

    ``source`` may be an existing config (returned as-is unless overridden),
    a serialized dict, a path to a JSON config file, or a JSON string.
    Keyword overrides use the flat names scripts actually vary:
    ``shape, width, height, link_latency, vcs, routing, scheme, rate,
    messages, warmup, seed, max_cycles, pattern, link_error_rate,
    telemetry, metrics_interval`` — any :class:`NoCConfig`/
    :class:`WorkloadConfig` field name also works.  ``shape`` accepts a
    tuple or the CLI's ``"4x4x4"`` grammar and selects the topology axis
    count; ``link_latency`` accepts an int, a per-axis tuple, or
    ``"1,1,2"``.

    ``telemetry`` accepts a :class:`TelemetryConfig`, a dict, or ``True``
    (enable with defaults); ``faults`` accepts a :class:`FaultConfig` or a
    serialized faults dict.
    """
    data = _source_to_dict(source)
    _apply_overrides(data, overrides)
    return config_from_dict(data)


def _source_to_dict(source: Optional[ConfigLike]) -> Dict[str, Any]:
    if source is None:
        return config_to_dict(SimulationConfig())
    if isinstance(source, SimulationConfig):
        return config_to_dict(source)
    if isinstance(source, Mapping):
        return json.loads(json.dumps(dict(source)))  # deep copy, JSON-safe
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        text = Path(source).read_text()
        return json.loads(text)
    return json.loads(source)


#: Flat override aliases -> (section, field).
_ALIASES = {
    "vcs": ("noc", "num_vcs"),
    "buffer_depth": ("noc", "vc_buffer_depth"),
    "flits": ("noc", "flits_per_packet"),
    "retx_depth": ("noc", "retx_buffer_depth"),
    "scheme": ("noc", "link_protection"),
    "rate": ("workload", "injection_rate"),
    "messages": ("workload", "num_messages"),
    "warmup": ("workload", "warmup_messages"),
}

_NOC_FIELDS = {f.name for f in dataclasses.fields(NoCConfig)}
_WORKLOAD_FIELDS = {f.name for f in dataclasses.fields(WorkloadConfig)}


def _apply_overrides(data: Dict[str, Any], overrides: Dict[str, Any]) -> None:
    for key, value in overrides.items():
        if key == "telemetry":
            if value is True:
                value = {"enabled": True}
            elif value is False:
                value = {"enabled": False}
            elif isinstance(value, TelemetryConfig):
                value = value.to_dict()
            data["telemetry"] = dict(value)
        elif key == "metrics_interval":
            tel = data.setdefault("telemetry", {"enabled": True})
            tel["metrics_interval"] = value
        elif key == "faults":
            if isinstance(value, FaultConfig):
                value = config_to_dict(SimulationConfig(faults=value))["faults"]
            data["faults"] = dict(value)
        elif key == "link_error_rate":
            data.setdefault("faults", {}).setdefault("rates", {})["link"] = value
        elif key == "seed":
            data.setdefault("workload", {})["seed"] = value
            data.setdefault("faults", {})["seed"] = value
        elif key in _ALIASES:
            section, name = _ALIASES[key]
            data.setdefault(section, {})[name] = value
        elif key == "shape":
            # Accepts a tuple/list or the CLI's "4x4x4" grammar; wins over
            # any width/height keys already in the serialized form.
            data.setdefault("noc", {})["shape"] = list(parse_shape(value))
        elif key == "link_latency":
            latency = parse_link_latency(value)
            data.setdefault("noc", {})["link_latency"] = (
                latency if isinstance(latency, int) else list(latency)
            )
        elif key in ("width", "height"):
            # Legacy per-axis overrides (still the common 2D spelling).
            noc = data.setdefault("noc", {})
            if "shape" in noc:
                noc["shape"][0 if key == "width" else 1] = value
            else:
                noc[key] = value
        elif key in _NOC_FIELDS:
            data.setdefault("noc", {})[key] = value
        elif key in _WORKLOAD_FIELDS:
            data.setdefault("workload", {})[key] = value
        elif key in (
            "invariant_checks",
            "activity_driven",
            "backend",
            "collect_power",
            "collect_utilization",
            "payload_ecc_check",
            "checkpoint_interval",
            "checkpoint_path",
        ):
            data[key] = value
        else:
            raise TypeError(f"load_config() got an unknown override {key!r}")
    if "shape" in overrides and "topology" not in overrides:
        # Match the CLI grammar: the axis count selects the topology family
        # unless the caller pinned one explicitly.
        noc = data.setdefault("noc", {})
        base = noc.get("topology", "mesh").replace("3d", "")
        noc["topology"] = base + ("3d" if len(noc["shape"]) == 3 else "")


def run(
    config: Optional[ConfigLike] = None,
    *,
    telemetry_path: Optional[Union[str, Path]] = None,
    **overrides: Any,
) -> SimulationResult:
    """Run one simulation.

    Accepts anything :func:`load_config` does.  When ``telemetry_path`` is
    given, telemetry is force-enabled and the NDJSON stream is written
    there after the run.
    """
    if telemetry_path is not None and "telemetry" not in overrides:
        overrides["telemetry"] = True
    if isinstance(config, SimulationConfig) and not overrides:
        cfg = config
    else:
        cfg = load_config(config, **overrides)
    result = run_simulation(cfg)
    if telemetry_path is not None and result.telemetry is not None:
        write_ndjson(
            result.telemetry, telemetry_path, config=config_to_dict(cfg)
        )
    return result


def resume(
    path: Union[str, Path],
    *,
    backend: Optional[str] = None,
    telemetry_path: Optional[Union[str, Path]] = None,
) -> SimulationResult:
    """Finish an interrupted run from its checkpoint file.

    Bit-for-bit equivalent to never having been interrupted (see
    docs/CHECKPOINTING.md).  A checkpoint resumes on the backend that
    wrote it; pass ``backend`` to assert which one that is (a mismatch
    raises :class:`CheckpointError` — cross-backend resume is
    unsupported).  ``telemetry_path`` exports the NDJSON stream after
    completion, exactly as :func:`run` would have."""
    sim = load_checkpoint(path, backend=backend)
    result = sim.run()
    if telemetry_path is not None and result.telemetry is not None:
        write_ndjson(
            result.telemetry,
            telemetry_path,
            config=config_to_dict(sim.config),
        )
    return result


def sweep(
    config: Optional[ConfigLike] = None,
    rates: Optional[List[float]] = None,
    **overrides: Any,
) -> List[SimulationResult]:
    """Run the same config at several injection rates (saturation curves).

    Returns one :class:`SimulationResult` per rate, in order; each result's
    ``config.workload.injection_rate`` records its rate.
    """
    if rates is None:
        rates = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
    base = config_to_dict(load_config(config, **overrides))
    out = []
    for rate in rates:
        point = json.loads(json.dumps(base))
        point.setdefault("workload", {})["injection_rate"] = rate
        out.append(run_simulation(config_from_dict(point)))
    return out


def lint(
    target: Optional[ConfigLike] = None,
    *,
    cdg: bool = True,
    **overrides: Any,
) -> DiagnosticReport:
    """Statically check a config (or config files) for NoC hazards.

    ``target`` may be anything :func:`load_config` accepts; a path to a
    JSON file or a directory of them is linted file-by-file like the CLI's
    ``repro lint <paths>``.
    """
    if isinstance(target, (str, Path)) and Path(target).exists():
        return lint_paths([target], cdg=cdg)
    return lint_config(load_config(target, **overrides), cdg=cdg)


def verify(
    target: Optional[ConfigLike] = None,
    *,
    single_link_kills: bool = False,
    multi_kills: Any = (),
    samples: int = 12,
    sweep_seed: int = 2006,
    **overrides: Any,
) -> Dict[str, Any]:
    """Statically certify the routing a config will run.

    Returns the JSON-ready certificate entry (the same shape ``repro
    verify --json`` emits per config): a ``routing`` block with the
    connectivity / livelock-freedom / deadlock-freedom verdicts and any
    witnesses, plus optional ``single_link_kills`` / ``multi_link_kills``
    robustness sweeps of the fault-aware rebuild.  ``target`` may be
    anything :func:`load_config` accepts.
    """
    return certify_config(
        load_config(target, **overrides),
        single_link_kills=single_link_kills,
        multi_kills=tuple(multi_kills),
        samples=samples,
        seed=sweep_seed,
    )


def degrade(**kwargs: Any) -> List[DegradationPoint]:
    """Run the graceful-degradation campaign (progressive random link
    kills); see :func:`repro.experiments.degradation.run_degradation` for
    the keyword surface (width, height, max_kills, injection_rate,
    routing, ...)."""
    return run_degradation(**kwargs)


def degrade_burst(**kwargs: Any) -> List[BurstDegradationPoint]:
    """Run the intermittent/wear-out degradation sweep (burst intensity x
    wear rate over seeded burst sites); see
    :func:`repro.experiments.degradation.run_burst_degradation` for the
    keyword surface (burst_rates, wear_thresholds, num_sites, ...)."""
    return run_burst_degradation(**kwargs)


def campaign(
    variants: Optional[List[Any]] = None,
    *,
    axes: Optional[Mapping[str, List[Any]]] = None,
    base: Optional[ConfigLike] = None,
    **kwargs: Any,
) -> Any:
    """Run a campaign of config variants under the campaign service.

    Pass either explicit ``variants`` — ``(name, SimulationConfig)``
    pairs — or ``axes`` (dotted-path → values, expanded as a cartesian
    :func:`grid` over ``base``).  All of
    :func:`repro.campaign.run_campaign`'s keywords pass through:
    ``processes``, ``retries``, ``timeout``, ``deadline``, ``backoff``
    (a :class:`RetryPolicy`), ``journal_path``, ``cache_dir``,
    ``checkpoint_dir``, ``return_stats``, ...  Resume a journaled
    campaign with :func:`resume_campaign`.  See docs/CAMPAIGNS.md.
    """
    if variants is None:
        if axes is None:
            raise ValueError("campaign() needs variants or axes")
        base_config = load_config(base) if base is not None else None
        variants = grid(axes, base_config)
    elif axes is not None:
        raise ValueError("give either variants or axes, not both")
    return run_campaign(variants, **kwargs)
