"""Batch-means confidence intervals for steady-state simulation output.

The paper reports point estimates from very long runs (300k messages); at
our scaled message counts it is worth quantifying the uncertainty instead.
The standard technique for correlated simulation output is the method of
batch means: split the (post-warm-up) observation stream into ``k`` equal
batches, treat the batch means as approximately i.i.d. normal, and build a
Student-t interval over them.

Used by the examples and available to experiment campaigns; the t-quantile
table covers the common batch counts so there is no SciPy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided 95% Student-t quantiles by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 19: 2.093, 24: 2.064, 29: 2.045, 39: 2.023,
    49: 2.010, 99: 1.984,
}


def _t95(dof: int) -> float:
    if dof <= 0:
        raise ValueError("need at least two batches")
    best = min((k for k in _T95 if k >= dof), default=None)
    if best is None:
        return 1.96  # normal limit
    return _T95[best]


@dataclass(frozen=True)
class ConfidenceInterval:
    mean: float
    half_width: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (95%, {self.batches} batches)"


def batch_means_interval(
    samples: Sequence[float], batches: int = 10
) -> ConfidenceInterval:
    """95% confidence interval on the mean via the method of batch means.

    Parameters
    ----------
    samples:
        Post-warm-up observations in arrival order (ordering matters: the
        batching is what absorbs the serial correlation).
    batches:
        Number of batches ``k``; 10-30 is customary.  Requires at least
        two samples per batch.
    """
    if batches < 2:
        raise ValueError("need at least two batches")
    if len(samples) < 2 * batches:
        raise ValueError(
            f"need at least {2 * batches} samples for {batches} batches, "
            f"got {len(samples)}"
        )
    batch_size = len(samples) // batches
    means = []
    for b in range(batches):
        chunk = samples[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / len(chunk))
    grand = sum(means) / batches
    variance = sum((m - grand) ** 2 for m in means) / (batches - 1)
    half = _t95(batches - 1) * math.sqrt(variance / batches)
    return ConfidenceInterval(mean=grand, half_width=half, batches=batches)


def required_samples_estimate(
    samples: Sequence[float], target_relative_half_width: float, batches: int = 10
) -> int:
    """Rough sample count needed to reach a target relative precision,
    extrapolating from the current interval (half-width ~ 1/sqrt(n))."""
    if target_relative_half_width <= 0:
        raise ValueError("target precision must be positive")
    ci = batch_means_interval(samples, batches)
    if ci.relative_half_width <= target_relative_half_width:
        return len(samples)
    factor = (ci.relative_half_width / target_relative_half_width) ** 2
    return math.ceil(len(samples) * factor)
