"""Statistics collection.

One :class:`StatsCollector` serves a whole simulation.  It distinguishes the
warm-up window from the measurement window the same way the paper does
(Section 2.2: latency and energy are averaged over ejected messages after
the warm-up messages): latency samples, energy events and utilization
samples recorded during warm-up are excluded from the reported averages.

Counters are plain named integers; every counter name used across the code
base is documented here so experiments can rely on them.  The catalogue is
kept in sync with the source mechanically: ``tests/test_counter_catalogue.py``
parses this table and greps ``src/`` for counting call sites, failing if
either side lists a name the other does not.

====================================  =========================================
counter                               incremented when
====================================  =========================================
``link_errors_corrected``             an HBH retransmission round or an
                                      in-place FEC correction recovers a link
                                      upset
``fec_corrections``                   an SEC decode corrects a single-bit link
                                      upset in place (FEC scheme, no rollback)
``rt_errors_corrected``               a misdirected header is caught (locally
                                      by the VA state check or remotely via a
                                      route-NACK)
``sa_errors_corrected``               the AC unit invalidates an erroneous SA
                                      grant
``va_errors_corrected``               the AC unit invalidates an erroneous VA
                                      grant
``sa_misdirected_flits``              an undetected SA fault actually sends a
                                      flit out the wrong port (AC-off
                                      ablation)
``retransmission_rounds``             a NACK triggers a rollback/replay
``flits_retransmitted``               each flit replayed from a
                                      retransmission buffer
``stale_replay_flits_discarded``      a replay-queue flit is dropped because a
                                      later rollback superseded it
``retransmission_giveups``            the receiver accepts a corrupt flit
                                      after ``max_nack_retries`` NACKs (the
                                      Section 4.5 endless-loop escape hatch)
``retx_buffer_restores``              a corrupted retransmission-buffer copy
                                      is restored from its Section 4.5
                                      duplicate
``route_nacks_sent``                  a receiver NACKs a misrouted header back
                                      for route recomputation (Section 4.2)
``route_nack_rollbacks``              a route-NACK rolls the sender's output
                                      channel back
``route_nack_flits_restored``         each flit a route-NACK returns to the
                                      sender's input pipeline for re-routing
``route_nack_orphans``                a route-NACK arrives after the rolled-
                                      back flits already left the buffer
                                      window
``flits_dropped``                     receiver-side drops (corrupt or
                                      out-of-window)
``flits_ejected``                     each flit delivered to a destination NI
``packets_misrouted``                 a packet reaches a wrong destination NI
``packets_reforwarded``               a misdelivered packet is re-sent onward
``packets_delivered_corrupt``         delivered with residual corruption
``packets_lost``                      undeliverable (AC-off ablations,
                                      give-ups)
``e2e_retransmissions``               source retransmits a whole packet (E2E)
``payload_ecc_checks``                a destination verifies a flit's real
                                      Hamming codeword (payload ECC mode)
``payload_ecc_mismatches``            the bit-level decode class disagrees
                                      with the symbolic corruption tag
``probes_sent``                       Rule-1 probes launched
``probes_discarded``                  Rule-2 discards (no deadlock on that
                                      path)
``probes_hop_limited``                a probe exceeds its hop limit and is
                                      dropped
``deadlocks_detected``                probes returning to their origin
``deadlocks_resolved_before_recovery``  the suspected VC drains on its own
                                      before recovery engages
``recovery_activations``              routers switching into recovery mode
``recovery_forwards``                 flits absorbed into retransmission
                                      buffers during recovery (the Figure 10
                                      moves)
``handshake_glitches_masked``         TMR voting outvotes a glitched
                                      handshake line (Section 4.6)
``handshake_signals_lost``            a handshake glitch destroys a sample
                                      (TMR-off ablation): a credit leaks or a
                                      NACK is delayed
``permanent_faults_applied``          a scheduled permanent fault (dead link,
                                      router, or VC buffer) takes effect
``permanent_fault_flits_dropped``     each flit destroyed by a permanent
                                      fault (in flight on a dead link, wedged
                                      in a dead buffer, or flushed from a
                                      torn-down wormhole)
``packets_unroutable``                a header is dropped because no route to
                                      its destination survives on the degraded
                                      topology
``wormholes_orphaned``                a wormhole is cut mid-packet by a
                                      permanent fault and its remaining flits
                                      can never arrive
``reroute_recomputations``            the fault-aware routing tables are
                                      rebuilt after a topology change
``intermittent_bursts_started``       an intermittent site's on-window opens
                                      (the Markov burst process toggles on)
``intermittent_strikes``              a burst corrupts a flit traversing its
                                      link (on-window strike, docs/FAULTS.md)
``wear_out_escalations``              an intermittent site's accumulated
                                      stress crosses the wear-out threshold
                                      and its link dies permanently
``checkpoints_written``               the auto-checkpoint schedule snapshots
                                      the run (counted before pickling, so a
                                      resumed run's counters still match an
                                      uninterrupted one — see
                                      docs/CHECKPOINTING.md)
====================================  =========================================
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class LatencyStats:
    """Streaming mean/min/max (plus optional sample retention)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    keep_samples: bool = False
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q in [0, 1]; requires ``keep_samples``."""
        if not self.keep_samples:
            raise ValueError("percentiles require keep_samples=True")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, int(q * (len(ordered) - 1))))
        return ordered[idx]


@dataclass
class UtilizationTracker:
    """Time-averaged occupancy/capacity ratio (Figures 8 and 9)."""

    slot_cycles_occupied: float = 0.0
    slot_cycles_total: float = 0.0

    def record(self, occupied: float, capacity: float) -> None:
        self.slot_cycles_occupied += occupied
        self.slot_cycles_total += capacity

    @property
    def utilization(self) -> float:
        if self.slot_cycles_total == 0:
            return 0.0
        return self.slot_cycles_occupied / self.slot_cycles_total


class StatsCollector:
    """All measurement state of one simulation run."""

    def __init__(self, keep_latency_samples: bool = False):
        self.counters: Dict[str, int] = defaultdict(int)
        self.latency = LatencyStats(keep_samples=keep_latency_samples)
        self.hops = LatencyStats()
        self.tx_utilization = UtilizationTracker()
        self.retx_utilization = UtilizationTracker()
        #: Energy-event counters (multiplied by per-event energies by the
        #: power model).  Only events inside the measurement window count.
        self.energy_events: Dict[str, int] = defaultdict(int)
        self.measuring = False
        self.packets_injected = 0
        self.packets_ejected = 0
        self.measured_packets = 0
        self.cycles = 0

    # -- window control ----------------------------------------------------

    def start_measurement(self) -> None:
        self.measuring = True

    # -- events -----------------------------------------------------------

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] += increment

    def count_measured(self, name: str, increment: int = 1) -> None:
        """Count only within the measurement window."""
        if self.measuring:
            self.counters[name] += increment

    def energy_event(self, name: str, increment: int = 1) -> None:
        if self.measuring:
            self.energy_events[name] += increment

    def record_ejection(self, latency: float, hops: int) -> None:
        self.packets_ejected += 1
        if self.measuring:
            self.measured_packets += 1
            self.latency.record(latency)
            self.hops.record(hops)

    def record_utilization(
        self,
        tx_occupied: float,
        tx_capacity: float,
        retx_occupied: float,
        retx_capacity: float,
    ) -> None:
        if self.measuring:
            self.tx_utilization.record(tx_occupied, tx_capacity)
            self.retx_utilization.record(retx_occupied, retx_capacity)

    # -- summaries ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self, names) -> Dict[str, int]:
        """Current values of the named counters (0 when never incremented).

        Pure read — the telemetry sampler polls this every sampling tick, so
        it must not create defaultdict entries as a side effect.
        """
        counters = self.counters
        return {name: counters.get(name, 0) for name in names}

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "cycles": self.cycles,
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "measured_packets": self.measured_packets,
            "avg_latency": self.latency.mean,
            "avg_hops": self.hops.mean,
            "tx_buffer_utilization": self.tx_utilization.utilization,
            "retx_buffer_utilization": self.retx_utilization.utilization,
        }
        out.update({k: float(v) for k, v in sorted(self.counters.items())})
        return out
