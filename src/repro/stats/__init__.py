"""Measurement: counters, latency/energy accounting and buffer utilization."""

from repro.stats.collectors import LatencyStats, StatsCollector, UtilizationTracker

__all__ = ["LatencyStats", "StatsCollector", "UtilizationTracker"]
