"""Permanent (hard) fault lifecycle.

The transient machinery in :mod:`repro.faults.injector` models single-cycle
upsets — every fault is gone the cycle after it strikes.  This module adds
the complementary *hard*-fault story: links, routers, and individual VC
buffers that die at a given cycle (or are dead from cycle 0) and stay dead
for the rest of the run.  FASHION-style self-healing (Ren et al.) and the
degraded-mesh routing protocols of Stroobant et al. both assume exactly
this failure model.

A :class:`PermanentFaultSchedule` is carried by ``FaultConfig.permanent``
and consumed by ``Network``, which applies each fault at the top of the
scheduled cycle (identically in the polling and activity-driven loops) and
triggers a routing reconfiguration — see ``Network._apply_due_faults``.

The schedule is plain data: frozen, hashable, order-independent, and
serializable to/from the JSON config format (``to_dicts``/``from_dicts``)
as well as the compact CLI specs (``parse_link_spec`` & friends)::

    --dead-link 12:east        link 12 -> east neighbour, dead from cycle 0
    --dead-link 12:east@500    ... dies at cycle 500
    --dead-router 27           router 27 and all its links
    --dead-vc 3:north:1@250    input VC 1 of node 3's north port
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import Direction

_KINDS = ("link", "router", "vc")


@dataclass(frozen=True)
class PermanentFault:
    """One component death.

    ``kind`` selects the component class:

    * ``"link"`` — the unidirectional link leaving ``node`` through
      ``direction`` (flits in flight on it are dropped and counted);
    * ``"router"`` — the whole router at ``node``, including every link
      touching it and its network interface;
    * ``"vc"`` — a single input VC buffer: VC index ``vc`` of the port
      facing ``direction`` at ``node``'s *downstream* neighbour (i.e. the
      buffer fed by the link leaving ``node`` through ``direction``).

    ``cycle`` is when the component dies; ``cycle <= 0`` means dead from
    the start of the run (before any flit moves).
    """

    kind: str
    node: int
    direction: Optional[Direction] = None
    vc: Optional[int] = None
    cycle: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown permanent fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.node < 0:
            raise ValueError(f"fault node must be non-negative, got {self.node}")
        if self.kind in ("link", "vc"):
            if self.direction is None:
                raise ValueError(f"{self.kind} fault requires a direction")
            if self.direction is Direction.LOCAL:
                raise ValueError(
                    "local (NI) links cannot be killed; kill the router instead"
                )
        if self.kind == "vc":
            if self.vc is None or self.vc < 0:
                raise ValueError("vc fault requires a non-negative vc index")

    def describe(self) -> str:
        if self.kind == "link":
            assert self.direction is not None
            return f"link {self.node}:{self.direction.name.lower()}@{self.cycle}"
        if self.kind == "router":
            return f"router {self.node}@{self.cycle}"
        assert self.direction is not None
        return (
            f"vc {self.node}:{self.direction.name.lower()}:{self.vc}@{self.cycle}"
        )


@dataclass(frozen=True)
class PermanentFaultSchedule:
    """An immutable set of :class:`PermanentFault` deaths for one run."""

    faults: Tuple[PermanentFault, ...] = field(default_factory=tuple)

    @classmethod
    def empty(cls) -> "PermanentFaultSchedule":
        return cls(faults=())

    @classmethod
    def of(cls, *faults: PermanentFault) -> "PermanentFaultSchedule":
        return cls(faults=tuple(faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def sorted_by_cycle(self) -> List[PermanentFault]:
        """Stable application order: by cycle, then spec order."""
        return sorted(self.faults, key=lambda f: max(f.cycle, 0))

    # -- serialization -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for f in self.faults:
            entry: Dict[str, object] = {"kind": f.kind, "node": f.node}
            if f.direction is not None:
                entry["direction"] = f.direction.name.lower()
            if f.vc is not None:
                entry["vc"] = f.vc
            if f.cycle:
                entry["cycle"] = f.cycle
            out.append(entry)
        return out

    @classmethod
    def from_dicts(
        cls, entries: Sequence[Dict[str, object]]
    ) -> "PermanentFaultSchedule":
        faults = []
        for entry in entries:
            direction = entry.get("direction")
            faults.append(
                PermanentFault(
                    kind=str(entry["kind"]),
                    node=int(entry["node"]),  # type: ignore[arg-type]
                    direction=(
                        Direction[str(direction).upper()]
                        if direction is not None
                        else None
                    ),
                    vc=(int(entry["vc"]) if "vc" in entry else None),  # type: ignore[arg-type]
                    cycle=int(entry.get("cycle", 0)),  # type: ignore[arg-type]
                )
            )
        return cls(faults=tuple(faults))


# -- CLI spec parsing ------------------------------------------------------


def _split_cycle(spec: str) -> Tuple[str, int]:
    if "@" in spec:
        body, _, cyc = spec.rpartition("@")
        try:
            return body, int(cyc)
        except ValueError:
            raise ValueError(f"bad cycle in fault spec {spec!r}") from None
    return spec, 0


def _parse_direction(name: str, spec: str) -> Direction:
    try:
        return Direction[name.upper()]
    except KeyError:
        raise ValueError(
            f"bad direction {name!r} in fault spec {spec!r}; "
            "expected north/east/south/west (or up/down on 3D platforms)"
        ) from None


def parse_link_spec(spec: str) -> PermanentFault:
    """``NODE:DIR[@CYCLE]`` -> link fault."""
    body, cycle = _split_cycle(spec)
    parts = body.split(":")
    if len(parts) != 2:
        raise ValueError(f"bad link spec {spec!r}; expected NODE:DIR[@CYCLE]")
    return PermanentFault(
        kind="link",
        node=int(parts[0]),
        direction=_parse_direction(parts[1], spec),
        cycle=cycle,
    )


def parse_router_spec(spec: str) -> PermanentFault:
    """``NODE[@CYCLE]`` -> router fault."""
    body, cycle = _split_cycle(spec)
    return PermanentFault(kind="router", node=int(body), cycle=cycle)


def parse_vc_spec(spec: str) -> PermanentFault:
    """``NODE:DIR:VC[@CYCLE]`` -> input-VC fault."""
    body, cycle = _split_cycle(spec)
    parts = body.split(":")
    if len(parts) != 3:
        raise ValueError(f"bad vc spec {spec!r}; expected NODE:DIR:VC[@CYCLE]")
    return PermanentFault(
        kind="vc",
        node=int(parts[0]),
        direction=_parse_direction(parts[1], spec),
        vc=int(parts[2]),
        cycle=cycle,
    )
