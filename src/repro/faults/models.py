"""Fault event records and the bounded fault log.

Every injected upset is counted per site; optionally (``log_events=True``)
individual :class:`FaultEvent` records are kept for debugging and for the
fault-injection examples.  The log is bounded so that long simulations at
high error rates cannot exhaust memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional

from repro.types import FaultSite


@dataclass(frozen=True)
class FaultEvent:
    """One injected single-event upset."""

    site: FaultSite
    cycle: int
    node: int
    detail: str = ""


class FaultLog:
    """Per-site counters plus an optional bounded event trace."""

    def __init__(self, log_events: bool = False, max_events: int = 10_000):
        #: Pre-seeded with the enum sites for stable iteration order, but
        #: NOT a closed set: escalated/derived sites recorded after
        #: construction (e.g. the intermittent lifecycle) get entries on
        #: first use instead of a KeyError.
        self.counts: Dict[FaultSite, int] = {site: 0 for site in FaultSite}
        self.log_events = log_events
        self._events: Deque[FaultEvent] = deque(maxlen=max_events)
        #: Events silently evicted from the bounded trace.  Campaign-length
        #: runs overflow ``max_events`` routinely; consumers can check this
        #: to learn the trace is a suffix, not the whole history.
        self.dropped_events = 0

    def record(
        self, site: FaultSite, cycle: int, node: int, detail: str = ""
    ) -> None:
        self.counts[site] = self.counts.get(site, 0) + 1
        if self.log_events:
            if len(self._events) == self._events.maxlen:
                self.dropped_events += 1
            self._events.append(FaultEvent(site, cycle, node, detail))

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, site: FaultSite) -> int:
        return self.counts.get(site, 0)

    def events(self, site: Optional[FaultSite] = None) -> Iterator[FaultEvent]:
        for event in self._events:
            if site is None or event.site is site:
                yield event

    def __repr__(self) -> str:
        active = {s.value: c for s, c in self.counts.items() if c}
        return f"FaultLog({active or 'no faults'})"
