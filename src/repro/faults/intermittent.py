"""Intermittent (bursty) faults and the wear-out escalation lifecycle.

The transient machinery in :mod:`repro.faults.injector` models memoryless
single-cycle upsets; :mod:`repro.faults.permanent` models scheduled hard
deaths.  Aging silicon sits between the two: a marginal wire or via strikes
in *bursts* — windows of cycles during which its error probability is
orders of magnitude above the background rate — and the stress of those
strikes (plus ordinary utilization) accumulates until the site fails hard.
This is the soft→hard progression of Ben Ahmed et al. (arXiv 2003.11018)
and the failure model FASHION-style self-healing assumes (arXiv
1702.02313).

Three pieces implement it:

* :class:`IntermittentFault` — one bursty link site: a Markov on/off
  process over the unidirectional link leaving ``node`` through
  ``direction``.  Window lengths are exponentially distributed with means
  ``mean_on``/``mean_off``; during an *on* window every flit traversal
  suffers corruption with probability ``rate``.
* :class:`WearOutConfig` — the escalation policy: per-site stress is
  ``strike_weight * strikes + traversal_weight * flit_traversals`` and a
  site whose stress reaches ``threshold`` is escalated into the existing
  permanent-fault machinery (same teardown, reroute and counters as a
  scheduled :class:`~repro.faults.permanent.PermanentFault` death at that
  cycle).
* :class:`IntermittentLifecycle` — the runtime state machine the
  :class:`~repro.noc.network.Network` owns: it advances every site's
  burst process *eagerly once per cycle* at the top of ``Network.step``
  (ahead of either cycle loop, exactly like scheduled permanent faults)
  and applies burst strikes at link-traversal time.

Determinism: each site draws from its **own** ``random.Random`` stream,
seeded by pure integer arithmetic from ``(FaultConfig.seed, node,
direction)`` — never ``hash()``, whose string salting varies per process.
The shared transient stream of :class:`~repro.faults.injector.FaultInjector`
is untouched, burst toggles depend only on the cycle counter, and strike
draws happen per flit traversal — identical on the polling and
activity-driven loops, which traverse the same flits at the same cycles.
All lifecycle state (per-site RNGs, on/off phase, next-toggle cycle,
stress tallies) lives on pickled objects, so checkpoint/resume is
bit-for-bit (docs/CHECKPOINTING.md).  The full argument is written out in
``docs/FAULTS.md``.

CLI spec grammar (mirroring the ``--dead-*`` parsers)::

    --intermittent-link 12:east:0.4:30:200        bursts from cycle 0
    --intermittent-link 12:east:0.4:30:200@500    process starts at cycle 500

i.e. ``NODE:DIR:RATE:ON:OFF[@CYCLE]`` with ``RATE`` the strike probability
inside on-windows and ``ON``/``OFF`` the mean window lengths in cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.types import Corruption, Direction

#: Multipliers for the per-site seed derivation.  Arbitrary odd constants
#: (Knuth/Murmur-style); what matters is that distinct (seed, node,
#: direction) triples map to distinct, platform-independent stream seeds
#: without ever calling the salted ``hash()``.
_SEED_MULT = 0x9E3779B1
_NODE_MULT = 0x85EBCA77
_DIR_MULT = 0xC2B2AE3D


def site_stream_seed(seed: int, node: int, direction: Direction) -> int:
    """The per-site RNG seed: pure integer arithmetic, no ``hash()``."""
    return (
        seed * _SEED_MULT + node * _NODE_MULT + int(direction) * _DIR_MULT + 1
    ) & 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class IntermittentFault:
    """One bursty link site.

    ``rate`` is the per-flit-traversal corruption probability while the
    site's burst process is in an *on* window (off windows are clean);
    ``mean_on``/``mean_off`` are the exponential means of the window
    lengths in cycles; ``start`` is the cycle the process begins (before
    it the site is clean and draws nothing).
    """

    node: int
    direction: Direction
    rate: float
    mean_on: float
    mean_off: float
    start: int = 0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"fault node must be non-negative, got {self.node}")
        if self.direction is Direction.LOCAL:
            raise ValueError(
                "local (NI) links do not suffer intermittent faults; "
                "use a mesh direction"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"intermittent strike rate must be in [0, 1], got {self.rate}"
            )
        if self.mean_on < 1.0 or self.mean_off < 1.0:
            raise ValueError(
                "burst window means must be >= 1 cycle "
                f"(got on={self.mean_on}, off={self.mean_off})"
            )

    @property
    def key(self) -> Tuple[int, Direction]:
        return (self.node, self.direction)

    def describe(self) -> str:
        return (
            f"intermittent {self.node}:{self.direction.name.lower()} "
            f"rate={self.rate} on~{self.mean_on} off~{self.mean_off}"
            f"@{self.start}"
        )


@dataclass(frozen=True)
class IntermittentFaultSchedule:
    """An immutable set of :class:`IntermittentFault` sites for one run."""

    faults: Tuple[IntermittentFault, ...] = field(default_factory=tuple)

    @classmethod
    def empty(cls) -> "IntermittentFaultSchedule":
        return cls(faults=())

    @classmethod
    def of(cls, *faults: IntermittentFault) -> "IntermittentFaultSchedule":
        return cls(faults=tuple(faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # -- serialization -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for f in self.faults:
            entry: Dict[str, object] = {
                "node": f.node,
                "direction": f.direction.name.lower(),
                "rate": f.rate,
                "mean_on": f.mean_on,
                "mean_off": f.mean_off,
            }
            if f.start:
                entry["start"] = f.start
            out.append(entry)
        return out

    @classmethod
    def from_dicts(
        cls, entries: Sequence[Dict[str, object]]
    ) -> "IntermittentFaultSchedule":
        faults = []
        for entry in entries:
            faults.append(
                IntermittentFault(
                    node=int(entry["node"]),  # type: ignore[arg-type]
                    direction=Direction[str(entry["direction"]).upper()],
                    rate=float(entry["rate"]),  # type: ignore[arg-type]
                    mean_on=float(entry["mean_on"]),  # type: ignore[arg-type]
                    mean_off=float(entry["mean_off"]),  # type: ignore[arg-type]
                    start=int(entry.get("start", 0)),  # type: ignore[arg-type]
                )
            )
        return cls(faults=tuple(faults))


@dataclass(frozen=True)
class WearOutConfig:
    """The soft→hard escalation policy.

    A site's stress is ``strike_weight * strikes + traversal_weight *
    flit_traversals`` (strikes from its burst process, traversals from the
    link's existing utilization gauge).  When stress reaches ``threshold``
    the site escalates into a permanent link death at the current cycle —
    the same teardown, reroute recomputation and counters as a scheduled
    :class:`~repro.faults.permanent.PermanentFault`.
    """

    threshold: float
    strike_weight: float = 1.0
    traversal_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"wear-out threshold must be positive, got {self.threshold}")
        if self.strike_weight < 0 or self.traversal_weight < 0:
            raise ValueError("wear-out weights must be non-negative")
        if self.strike_weight == 0 and self.traversal_weight == 0:
            raise ValueError(
                "wear-out needs at least one positive weight, or no site "
                "could ever accumulate stress"
            )

    def to_dict(self) -> Dict[str, float]:
        return {
            "threshold": self.threshold,
            "strike_weight": self.strike_weight,
            "traversal_weight": self.traversal_weight,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, float]]) -> Optional["WearOutConfig"]:
        if data is None:
            return None
        return cls(
            threshold=float(data["threshold"]),
            strike_weight=float(data.get("strike_weight", 1.0)),
            traversal_weight=float(data.get("traversal_weight", 0.0)),
        )


class _SiteState:
    """Runtime burst/wear state of one intermittent site (pickles whole)."""

    __slots__ = ("fault", "rng", "on", "next_toggle", "strikes", "escalated")

    def __init__(self, fault: IntermittentFault, seed: int):
        self.fault = fault
        self.rng = random.Random(site_stream_seed(seed, fault.node, fault.direction))
        self.on = False
        #: Cycle of the next phase flip; the process starts its first *off*
        #: window at ``fault.start`` (the site is clean before that, too).
        self.next_toggle = fault.start + self._window(fault.mean_off)
        self.strikes = 0
        self.escalated = False

    # ``__slots__`` classes pickle via __getstate__/__setstate__ pairs.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)

    def _window(self, mean: float) -> int:
        """One exponentially distributed window length, >= 1 cycle."""
        return 1 + int(self.rng.expovariate(1.0 / mean))

    def advance(self, cycle: int) -> Optional[bool]:
        """Advance the burst process to ``cycle``.

        Returns the new phase (True = burst opened, False = burst closed)
        when a toggle lands on this cycle, else None.  At most one toggle
        per cycle is reported (windows are >= 1 cycle long).
        """
        if self.escalated or cycle < self.next_toggle:
            return None
        self.on = not self.on
        mean = self.fault.mean_on if self.on else self.fault.mean_off
        self.next_toggle = cycle + self._window(mean)
        return self.on


class IntermittentLifecycle:
    """The network-owned burst/wear state machine for every configured site.

    Wiring (done by ``Network.__init__``): ``stats``, ``telemetry`` and
    ``log`` are attached after construction; ``escalate_hook`` is the
    network callback that routes a worn-out site into the permanent-fault
    teardown.  All mutable state pickles with the network, so
    checkpoint/resume replays the lifecycle bit-for-bit.
    """

    def __init__(
        self,
        schedule: IntermittentFaultSchedule,
        wear_out: Optional[WearOutConfig],
        seed: int,
    ):
        self.wear_out = wear_out
        self._sites: List[_SiteState] = [
            _SiteState(fault, seed) for fault in schedule
        ]
        self._by_key: Dict[Tuple[int, Direction], _SiteState] = {
            site.fault.key: site for site in self._sites
        }
        if len(self._by_key) != len(self._sites):
            raise ValueError(
                "intermittent schedule names the same link site twice"
            )
        #: Per-site links for the wear-out utilization term; wired by the
        #: network (same Link objects its link map holds, so the references
        #: pickle as one shared object graph).
        self.links: Dict[Tuple[int, Direction], object] = {}
        self.stats = None
        self.telemetry = None
        self.log = None

    def __bool__(self) -> bool:
        return bool(self._sites)

    @property
    def sites(self) -> List[_SiteState]:
        return list(self._sites)

    def site(self, node: int, direction: Direction) -> Optional[_SiteState]:
        return self._by_key.get((node, direction))

    # -- per-cycle advance (called at the top of Network.step) -------------

    def advance(self, cycle: int) -> List[_SiteState]:
        """Advance every burst process by one cycle and evaluate wear-out.

        Publishes burst_start/burst_end telemetry at the true toggle cycle
        and returns the sites whose stress crossed the escalation
        threshold this cycle (the network tears them down).
        """
        due: List[_SiteState] = []
        wear = self.wear_out
        stats = self.stats
        telemetry = self.telemetry
        for site in self._sites:
            if site.escalated:
                continue
            toggled = site.advance(cycle)
            if toggled is not None:
                fault = site.fault
                if toggled:
                    if stats is not None:
                        stats.count("intermittent_bursts_started")
                    kind = "burst_start"
                else:
                    kind = "burst_end"
                if telemetry is not None:
                    telemetry.publish(
                        cycle,
                        kind,
                        fault.node,
                        direction=fault.direction.name.lower(),
                        rate=fault.rate,
                    )
            if wear is not None and self.stress(site) >= wear.threshold:
                due.append(site)
        return due

    def stress(self, site: _SiteState) -> float:
        """Accumulated wear of one site under the configured weights."""
        wear = self.wear_out
        if wear is None:
            return 0.0
        stress = wear.strike_weight * site.strikes
        if wear.traversal_weight:
            link = self.links.get(site.fault.key)
            if link is not None:
                stress += wear.traversal_weight * link.flit_traversals
        return stress

    # -- per-traversal strike (called from FaultInjector.link_upset) --------

    def strike(
        self, cycle: int, node: int, direction: Direction, multi_fraction: float
    ) -> Optional[Corruption]:
        """Corruption from the site's burst process for one traversal.

        Draws from the site's private stream only while its burst is *on*,
        so off-window traffic (and every non-intermittent link) costs one
        dict probe and nothing else.
        """
        site = self._by_key.get((node, direction))
        if site is None or not site.on or site.escalated:
            return None
        rng = site.rng
        if rng.random() >= site.fault.rate:
            return None
        site.strikes += 1
        severity = (
            Corruption.MULTI
            if rng.random() < multi_fraction
            else Corruption.SINGLE
        )
        if self.stats is not None:
            self.stats.count("intermittent_strikes")
        if self.log is not None:
            from repro.types import FaultSite

            self.log.record(
                FaultSite.LINK, cycle, node, f"intermittent:{severity.name}"
            )
        if self.telemetry is not None:
            self.telemetry.publish(
                cycle,
                "transient_fault",
                node,
                site="link",
                severity=severity.name.lower(),
                burst=True,
            )
        return severity


# -- CLI spec parsing ------------------------------------------------------


def parse_intermittent_spec(spec: str) -> IntermittentFault:
    """``NODE:DIR:RATE:ON:OFF[@CYCLE]`` -> intermittent link fault."""
    from repro.faults.permanent import _parse_direction, _split_cycle

    body, start = _split_cycle(spec)
    parts = body.split(":")
    if len(parts) != 5:
        raise ValueError(
            f"bad intermittent spec {spec!r}; expected "
            "NODE:DIR:RATE:ON:OFF[@CYCLE]"
        )
    try:
        rate = float(parts[2])
        mean_on = float(parts[3])
        mean_off = float(parts[4])
    except ValueError:
        raise ValueError(
            f"bad numeric field in intermittent spec {spec!r}"
        ) from None
    return IntermittentFault(
        node=int(parts[0]),
        direction=_parse_direction(parts[1], spec),
        rate=rate,
        mean_on=mean_on,
        mean_off=mean_off,
        start=start,
    )
