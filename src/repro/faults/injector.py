"""The seeded fault injector.

One injector instance serves the whole network; all randomness flows through
a single ``random.Random(seed)`` so that a run is exactly reproducible from
its :class:`repro.config.FaultConfig`.

Each public method corresponds to one fault site and is called by the
component performing the (potentially faulty) operation:

==================  =====================================================
method              called per
==================  =====================================================
``link_upset``      flit per inter-router link traversal
``routing_upset``   routing computation (header flits only)
``va_upset``        successful VA grant
``sa_upset``        successful SA grant
``crossbar_upset``  flit per crossbar traversal
``retx_upset``      flit stored into a retransmission buffer
``handshake_glitch``  reverse-channel signal sample
==================  =====================================================
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.faults.models import FaultLog
from repro.types import Corruption, Direction, FaultSite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> faults)
    from repro.config import FaultConfig


class FaultInjector:
    """Draws single-event upsets according to a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig, log_events: bool = False):
        self.config = config
        self.rng = random.Random(config.seed)
        self.log = FaultLog(log_events=log_events)
        #: Telemetry bus (wired by the Network when telemetry is enabled).
        #: Publishing happens only inside rate-hit branches — cold paths —
        #: and draws no randomness, so the seed stream is unaffected.
        self.telemetry = None
        #: Intermittent/wear-out lifecycle (wired by the Network when a
        #: schedule is configured).  Its per-site RNG streams are disjoint
        #: from ``self.rng``, so adding burst sites never perturbs the
        #: shared transient stream.
        self.lifecycle = None
        # Cache rates as plain floats: these are the hottest calls in the
        # simulator, and attribute/dict lookups dominate otherwise.
        self._rate_link = config.rate(FaultSite.LINK)
        self._rate_rt = config.rate(FaultSite.ROUTING)
        self._rate_va = config.rate(FaultSite.VC_ALLOC)
        self._rate_sa = config.rate(FaultSite.SW_ALLOC)
        self._rate_xbar = config.rate(FaultSite.CROSSBAR)
        self._rate_retx = config.rate(FaultSite.RETX_BUFFER)
        self._rate_hs = config.rate(FaultSite.HANDSHAKE)
        self._multi_fraction = config.link_multi_bit_fraction

    @property
    def is_fault_free(self) -> bool:
        return (
            self._rate_link == 0.0
            and self._rate_rt == 0.0
            and self._rate_va == 0.0
            and self._rate_sa == 0.0
            and self._rate_xbar == 0.0
            and self._rate_retx == 0.0
            and self._rate_hs == 0.0
        )

    # -- link -------------------------------------------------------------

    def link_upset(
        self, cycle: int, node: int, direction: Optional[Direction] = None
    ) -> Optional[Corruption]:
        """Corruption suffered by a flit during one link traversal.

        The memoryless background rate draws from the shared stream first
        (unchanged whether or not intermittent sites exist); when the
        caller names the link's ``direction`` and a burst lifecycle is
        wired, the site's own stream may add an intermittent strike, and
        the worse corruption class wins.
        """
        severity = None
        if self._rate_link and self.rng.random() < self._rate_link:
            severity = (
                Corruption.MULTI
                if self.rng.random() < self._multi_fraction
                else Corruption.SINGLE
            )
            self.log.record(FaultSite.LINK, cycle, node, severity.name)
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle, "transient_fault", node,
                    site="link", severity=severity.name.lower(),
                )
        if self.lifecycle is not None and direction is not None:
            strike = self.lifecycle.strike(
                cycle, node, direction, self._multi_fraction
            )
            if strike is not None and (
                severity is None or strike.value > severity.value
            ):
                severity = strike
        return severity

    # -- routing logic -----------------------------------------------------

    def routing_upset(self, cycle: int, node: int) -> bool:
        if self._rate_rt and self.rng.random() < self._rate_rt:
            self.log.record(FaultSite.ROUTING, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(cycle, "transient_fault", node, site="routing")
            return True
        return False

    def misdirect(
        self,
        correct: Sequence[Direction],
        allowed: Sequence[Direction],
    ) -> Direction:
        """Pick the erroneous direction a faulted RT unit outputs.

        ``allowed`` is the universe of directions the (faulty) logic could
        physically emit — all five ports; the choice excludes the correct
        candidates so the fault is always an actual misdirection.
        """
        wrong = [d for d in allowed if d not in correct]
        if not wrong:
            return correct[0]
        return self.rng.choice(wrong)

    # -- allocator logic ---------------------------------------------------

    def va_upset(self, cycle: int, node: int) -> bool:
        if self._rate_va and self.rng.random() < self._rate_va:
            self.log.record(FaultSite.VC_ALLOC, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(cycle, "transient_fault", node, site="vc_alloc")
            return True
        return False

    def pick_va_scenario(self) -> str:
        """Which Section 4.1 VA-error scenario the upset produces.

        Weights are uniform over the four published symptom classes:
        ``invalid`` (1), ``duplicate`` (2/3 — grant a reserved or doubly
        granted output VC), ``wrong_vc_same_pc`` (4a, benign) and
        ``wrong_pc`` (4b).
        """
        return self.rng.choice(["invalid", "duplicate", "wrong_vc_same_pc", "wrong_pc"])

    def sa_upset(self, cycle: int, node: int) -> bool:
        if self._rate_sa and self.rng.random() < self._rate_sa:
            self.log.record(FaultSite.SW_ALLOC, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(cycle, "transient_fault", node, site="sw_alloc")
            return True
        return False

    def pick_sa_scenario(self) -> str:
        """Section 4.3 SA-error symptom: ``blocked`` (a), ``wrong_output``
        (b), ``duplicate_output`` (c) or ``multicast`` (d)."""
        return self.rng.choice(
            ["blocked", "wrong_output", "duplicate_output", "multicast"]
        )

    def choice(self, options: Sequence) -> object:
        """Expose the seeded RNG for scenario construction."""
        return self.rng.choice(list(options))

    # -- datapath ----------------------------------------------------------

    def crossbar_upset(self, cycle: int, node: int) -> Optional[Corruption]:
        """Crossbar transients are single-bit upsets (Section 4.4)."""
        if self._rate_xbar and self.rng.random() < self._rate_xbar:
            self.log.record(FaultSite.CROSSBAR, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(cycle, "transient_fault", node, site="crossbar")
            return Corruption.SINGLE
        return None

    def retx_upset(self, cycle: int, node: int) -> bool:
        """Upset of a flit held in a retransmission buffer (Section 4.5)."""
        if self._rate_retx and self.rng.random() < self._rate_retx:
            self.log.record(FaultSite.RETX_BUFFER, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle, "transient_fault", node, site="retx_buffer"
                )
            return True
        return False

    # -- handshake lines -----------------------------------------------------

    def handshake_glitch(self, cycle: int, node: int) -> bool:
        if self._rate_hs and self.rng.random() < self._rate_hs:
            self.log.record(FaultSite.HANDSHAKE, cycle, node)
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle, "transient_fault", node, site="handshake"
                )
            return True
        return False
