"""Fault modelling and injection.

The injector introduces single-event upsets at the seven sites of
:class:`repro.types.FaultSite` with independently configurable rates
(Section 2.2: "various soft faults were randomly generated both within the
routers and on the inter-router links").

Injection is *behavioural* — it perturbs decisions and tags flits — and
detection elsewhere in the system uses only information the hardware would
have, never the injector's ground truth.

Permanent (hard) faults live in :mod:`repro.faults.permanent`: a
:class:`PermanentFaultSchedule` of links/routers/VC buffers that die at a
given cycle, applied by the network and rerouted around.

Between the two sits :mod:`repro.faults.intermittent`: bursty per-site
fault processes whose accumulated stress can *escalate* a site into the
permanent machinery (the transient → intermittent → wear-out → permanent
lifecycle, docs/FAULTS.md).
"""

from repro.faults.injector import FaultInjector
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    IntermittentLifecycle,
    WearOutConfig,
)
from repro.faults.models import FaultEvent, FaultLog
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "IntermittentFault",
    "IntermittentFaultSchedule",
    "IntermittentLifecycle",
    "PermanentFault",
    "PermanentFaultSchedule",
    "WearOutConfig",
]
