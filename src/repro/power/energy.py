"""Per-operation energy model (the Figure 7 / 13b substrate).

The paper extracted dynamic and leakage power from a synthesized 90 nm
router and traced energy inside the network simulator.  We model the same
accounting with per-event energies: the simulator counts architectural
events (buffer writes/reads, arbitrations, crossbar and link traversals,
retransmission-buffer activity, control signalling) during the measurement
window and this model converts them to nanojoules.

The default constants are first-order 90 nm values chosen so that a 4-flit
packet crossing an average 8x8-mesh path costs a few hundred picojoules —
the band the paper's Figures 7/13(b) report.  Absolute joules are *not* a
reproduction target (we are not running the authors' netlist); the figures'
claims are about *shape* (energy stays flat as error rates rise), which
depends only on relative event counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

#: Default per-event energies in picojoules (90 nm, 1 V, 500 MHz flavor).
DEFAULT_EVENT_ENERGY_PJ: Dict[str, float] = {
    "buffer_write": 1.10,  # one flit into an input VC FIFO
    "buffer_read": 0.90,  # one flit out of an input VC FIFO
    "rt_op": 0.40,  # one routing computation
    "va_grant": 0.60,  # one VC allocation (arbitration trees)
    "sa_grant": 0.50,  # one switch allocation
    "xbar": 1.40,  # one flit through the 5x5 crossbar
    "link": 1.90,  # one flit over an inter-router link
    "local_link": 0.60,  # one flit over the PE channel
    "retx_write": 0.55,  # one flit into a retransmission buffer
    "retx_read": 0.55,  # one replay out of a retransmission buffer
    "nack": 0.30,  # one NACK on the reverse channel
    "credit": 0.10,  # one credit on the reverse channel
    "probe": 0.30,  # one deadlock probe/activation hop
    "ac_check": 0.08,  # one AC-unit comparison cycle
}


@dataclass
class EnergyModel:
    """Converts the simulator's event counters into energy figures."""

    event_energy_pj: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EVENT_ENERGY_PJ)
    )
    #: Router leakage in picojoules per router per cycle; reported
    #: separately because the paper's per-message figures are dominated by
    #: dynamic energy.
    leakage_pj_per_router_cycle: float = 0.45

    def energy_pj(self, events: Mapping[str, int]) -> float:
        """Total dynamic energy of the counted events, in picojoules.

        Summed in sorted event order so the floating-point total is a pure
        function of the counts — insertion order varies between the object
        and batched backends (first-occurrence vs. per-cycle flush) and
        must not leak into the result's last ulp.
        """
        total = 0.0
        for name, count in sorted(events.items()):
            per_event = self.event_energy_pj.get(name)
            if per_event is None:
                raise KeyError(f"no energy coefficient for event {name!r}")
            total += per_event * count
        return total

    def energy_nj(self, events: Mapping[str, int]) -> float:
        return self.energy_pj(events) / 1000.0

    def energy_per_packet_nj(self, events: Mapping[str, int], packets: int) -> float:
        """Mean dynamic energy per delivered message (the Figures 7/13b
        metric); zero if nothing was delivered in the window."""
        if packets <= 0:
            return 0.0
        return self.energy_nj(events) / packets

    def leakage_nj(self, routers: int, cycles: int) -> float:
        return self.leakage_pj_per_router_cycle * routers * cycles / 1000.0

    def breakdown_pj(self, events: Mapping[str, int]) -> Dict[str, float]:
        """Per-event-class energy, for the examples' reporting."""
        return {
            name: self.event_energy_pj.get(name, 0.0) * count
            for name, count in sorted(events.items())
        }
