"""Power and area modelling.

The paper synthesized its router in TSMC 90 nm (Synopsys DC, 1 V, 500 MHz)
and imported the numbers into the network simulator (Section 2.2).  We
cannot run synthesis, so :mod:`repro.power.area` provides a structural
gate-inventory model calibrated to the paper's published totals (Table 1),
and :mod:`repro.power.energy` provides the per-operation energy model the
simulator's event counters feed (Figures 7 and 13b).
"""

from repro.power.area import AreaModel, GateInventory, router_inventory, ac_unit_inventory
from repro.power.energy import EnergyModel

__all__ = [
    "AreaModel",
    "EnergyModel",
    "GateInventory",
    "ac_unit_inventory",
    "router_inventory",
]
