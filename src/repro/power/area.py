"""Structural area/power model for Table 1.

The paper reports, from 90 nm synthesis:

===============================  ===========  ==============
component                        power        area
===============================  ===========  ==============
generic router (5 PC, 4 VC/PC)   119.55 mW    0.374862 mm^2
Allocation Comparator (AC)       2.02 mW      0.004474 mm^2
overhead                         +1.69 %      +1.19 %
===============================  ===========  ==============

We reproduce this with a *structural* model: each block's storage-bit and
combinational-gate counts are derived from the architecture (P ports, V VCs,
B-flit buffers, W-bit flits), and two technology coefficients — area (and
switching power) per storage bit and per gate-equivalent — are calibrated so
the generic router at the paper's configuration matches the published
totals.  The AC unit's overhead is then *computed from its own gate
inventory*, not hard-coded, so the model answers the questions synthesis
would (how does the overhead scale with V? with W?) to first order.

Calibration solves the 2x2 linear system

    area:  a_bit * router_bits + a_gate * router_gates = 374862 um^2
           a_bit * ac_bits     + a_gate * ac_gates     = 4474 um^2

(and the analogous system for power), which lands the coefficients in the
physically sensible 90 nm range (a few um^2 per gate, tens of um^2 per
buffered bit including its mux/decode overhead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.config import (
    PAPER_AC_AREA_MM2,
    PAPER_AC_POWER_MW,
    PAPER_ROUTER_AREA_MM2,
    PAPER_ROUTER_POWER_MW,
)

#: The configuration Table 1's router was synthesized with.
TABLE1_PORTS = 5
TABLE1_VCS = 4
TABLE1_BUFFER_DEPTH = 4
TABLE1_RETX_DEPTH = 3
TABLE1_FLIT_BITS = 64


@dataclass(frozen=True)
class GateInventory:
    """Storage bits and combinational gate-equivalents of a block."""

    storage_bits: int
    gates: int

    def __add__(self, other: "GateInventory") -> "GateInventory":
        return GateInventory(
            self.storage_bits + other.storage_bits, self.gates + other.gates
        )


def _vc_id_bits(num_ports: int, num_vcs: int) -> int:
    return max(1, math.ceil(math.log2(num_ports * num_vcs)))


def router_inventory(
    num_ports: int = TABLE1_PORTS,
    num_vcs: int = TABLE1_VCS,
    buffer_depth: int = TABLE1_BUFFER_DEPTH,
    retx_depth: int = TABLE1_RETX_DEPTH,
    flit_bits: int = TABLE1_FLIT_BITS,
    include_retx_buffers: bool = True,
) -> GateInventory:
    """Gate inventory of the generic router of Figure 1."""
    P, V, B, W = num_ports, num_vcs, buffer_depth, flit_bits
    id_bits = _vc_id_bits(P, V)

    # Input VC buffers: B flits of W bits per VC, plus FIFO pointers.
    buffer_bits = P * V * B * W + P * V * 2 * max(1, math.ceil(math.log2(max(2, B))))
    # Retransmission buffers: retx_depth flits of W bits per VC plus the
    # barrel-shift mux network (one 2:1 mux-equivalent per bit).
    retx_bits = P * V * retx_depth * W if include_retx_buffers else 0
    retx_gates = P * V * retx_depth * W if include_retx_buffers else 0
    # Crossbar: a P:1 mux per output bit ~ (P-1) mux2 gate-equivalents.
    xbar_gates = P * W * (P - 1)
    # VC allocator: PV arbiters over PV requesters (matrix cells ~ (PV)^2)
    # plus the state table (one output-VC pairing entry per input VC).
    va_gates = (P * V) ** 2 + P * V * 10
    va_state_bits = P * V * (id_bits + 1)
    # Switch allocator: P V-input arbiters + P P-input arbiters.
    sa_gates = P * (V * V) + P * (P * P) + P * 12
    sa_state_bits = P * (id_bits + 1)
    # Routing unit: coordinate comparators per port.
    rt_gates = P * 8 * max(1, math.ceil(math.log2(max(2, 2 * P))))
    # Flow control: credit counters per output VC + handshake logic.
    credit_bits = P * V * max(1, math.ceil(math.log2(max(2, B + 1))))
    control_gates = P * V * 6

    return GateInventory(
        storage_bits=buffer_bits + retx_bits + va_state_bits + sa_state_bits + credit_bits,
        gates=retx_gates + xbar_gates + va_gates + sa_gates + rt_gates + control_gates,
    )


def ac_unit_inventory(
    num_ports: int = TABLE1_PORTS,
    num_vcs: int = TABLE1_VCS,
) -> GateInventory:
    """Gate inventory of the Allocation Comparator (Figure 12).

    Three parallel comparison networks over the PV state entries:

    1. RT agreement: per entry, compare the granted output PC against the
       routing function's PC (id_bits XORs + an OR-reduce).
    2. VA validity/duplicates: a pairwise equality network over the PV
       assigned output-VC ids (C(PV,2) comparators of id_bits XOR + AND)
       plus PV range checks.
    3. SA validity/duplicates/multicast: pairwise comparison over the P
       winning grants plus P agreement checks against the VA state.
    """
    PV = num_ports * num_vcs
    id_bits = _vc_id_bits(num_ports, num_vcs)
    per_compare = id_bits + (id_bits - 1) + 1  # XORs + AND-reduce + flag
    rt_agreement = PV * per_compare
    pairwise_va = (PV * (PV - 1) // 2) * per_compare + PV * id_bits
    sa_checks = (num_ports * (num_ports - 1) // 2) * per_compare + num_ports * per_compare
    error_flag_tree = PV + num_ports
    # The AC latches the previous cycle's allocations to compare against.
    state_bits = PV * id_bits
    return GateInventory(
        storage_bits=state_bits,
        gates=rt_agreement + pairwise_va + sa_checks + error_flag_tree,
    )


def _solve_2x2(
    a1: float, b1: float, c1: float, a2: float, b2: float, c2: float
) -> Tuple[float, float]:
    """Solve [[a1, b1], [a2, b2]] @ [x, y] = [c1, c2]."""
    det = a1 * b2 - a2 * b1
    if abs(det) < 1e-12:
        raise ArithmeticError("degenerate calibration system")
    x = (c1 * b2 - c2 * b1) / det
    y = (a1 * c2 - a2 * c1) / det
    return x, y


class AreaModel:
    """Calibrated structural area/power model.

    ``area_um2(inventory)`` and ``power_mw(inventory)`` evaluate any block's
    inventory with coefficients calibrated at the paper's Table 1 point.
    """

    def __init__(self) -> None:
        router = router_inventory()
        ac = ac_unit_inventory()
        self.area_per_bit_um2, self.area_per_gate_um2 = _solve_2x2(
            router.storage_bits,
            router.gates,
            PAPER_ROUTER_AREA_MM2 * 1e6,
            ac.storage_bits,
            ac.gates,
            PAPER_AC_AREA_MM2 * 1e6,
        )
        self.power_per_bit_mw, self.power_per_gate_mw = _solve_2x2(
            router.storage_bits,
            router.gates,
            PAPER_ROUTER_POWER_MW,
            ac.storage_bits,
            ac.gates,
            PAPER_AC_POWER_MW,
        )
        for name, value in (
            ("area_per_bit_um2", self.area_per_bit_um2),
            ("area_per_gate_um2", self.area_per_gate_um2),
            ("power_per_bit_mw", self.power_per_bit_mw),
            ("power_per_gate_mw", self.power_per_gate_mw),
        ):
            if value <= 0:
                raise ArithmeticError(
                    f"calibration produced non-physical coefficient {name}={value}"
                )

    def area_um2(self, inventory: GateInventory) -> float:
        return (
            self.area_per_bit_um2 * inventory.storage_bits
            + self.area_per_gate_um2 * inventory.gates
        )

    def area_mm2(self, inventory: GateInventory) -> float:
        return self.area_um2(inventory) / 1e6

    def power_mw(self, inventory: GateInventory) -> float:
        return (
            self.power_per_bit_mw * inventory.storage_bits
            + self.power_per_gate_mw * inventory.gates
        )

    def table1(
        self,
        num_ports: int = TABLE1_PORTS,
        num_vcs: int = TABLE1_VCS,
    ) -> Dict[str, float]:
        """Compute the Table 1 rows for a given router configuration."""
        router = router_inventory(num_ports=num_ports, num_vcs=num_vcs)
        ac = ac_unit_inventory(num_ports=num_ports, num_vcs=num_vcs)
        router_area = self.area_mm2(router)
        router_power = self.power_mw(router)
        ac_area = self.area_mm2(ac)
        ac_power = self.power_mw(ac)
        return {
            "router_power_mw": router_power,
            "router_area_mm2": router_area,
            "ac_power_mw": ac_power,
            "ac_area_mm2": ac_area,
            "ac_power_overhead_pct": 100.0 * ac_power / router_power,
            "ac_area_overhead_pct": 100.0 * ac_area / router_area,
        }
