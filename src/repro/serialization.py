"""Config and result (de)serialization.

Round-trippable dict/JSON forms for :class:`repro.config.SimulationConfig`
and :class:`repro.noc.simulator.SimulationResult`, so experiment campaigns
can be scripted, archived and diffed (`python -m repro run --json` uses
this, as do downstream analysis notebooks).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.faults.intermittent import IntermittentFaultSchedule, WearOutConfig
from repro.faults.permanent import PermanentFaultSchedule
from repro.noc.simulator import SimulationResult
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.export import SCHEMA_VERSION
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """A JSON-safe dict capturing every field of a simulation config.

    The topology block is normalized: plain 2D platforms with 1-cycle
    links keep the historical ``width``/``height`` keys (so every
    serialized 2D config — NDJSON headers, checkpoint headers, envelopes
    — is byte-for-byte what it always was); anything dimension- or
    latency-generalized carries ``shape`` (and ``link_latency``) instead.
    """
    noc = dataclasses.asdict(config.noc)
    noc["routing"] = config.noc.routing.value
    noc["link_protection"] = config.noc.link_protection.value
    shape = noc.pop("shape")
    latency = noc.pop("link_latency")
    if len(shape) == 2 and latency == 1:
        noc["width"], noc["height"] = shape
    else:
        noc["shape"] = list(shape)
        noc["link_latency"] = (
            latency if isinstance(latency, int) else list(latency)
        )
    faults = {
        "rates": {site.value: rate for site, rate in config.faults.rates.items()},
        "link_multi_bit_fraction": config.faults.link_multi_bit_fraction,
        "seed": config.faults.seed,
        "permanent": config.faults.permanent.to_dicts(),
        "intermittent": config.faults.intermittent.to_dicts(),
        "wear_out": (
            config.faults.wear_out.to_dict()
            if config.faults.wear_out is not None
            else None
        ),
    }
    return {
        "noc": noc,
        "faults": faults,
        "workload": dataclasses.asdict(config.workload),
        "collect_power": config.collect_power,
        "collect_utilization": config.collect_utilization,
        "payload_ecc_check": config.payload_ecc_check,
        "invariant_checks": config.invariant_checks,
        "activity_driven": config.activity_driven,
        "backend": config.backend,
        "telemetry": config.telemetry.to_dict(),
        "checkpoint_interval": config.checkpoint_interval,
        "checkpoint_path": config.checkpoint_path,
    }


def config_from_dict(data: Dict[str, Any]) -> SimulationConfig:
    """Inverse of :func:`config_to_dict`."""
    noc_data = dict(data["noc"])
    noc_data["routing"] = RoutingAlgorithm(noc_data["routing"])
    noc_data["link_protection"] = LinkProtection(noc_data["link_protection"])
    # Both serialized forms load: legacy ``width``/``height`` and the
    # generalized ``shape`` (which wins when both appear).  Neither path
    # goes through the deprecated constructor kwargs.
    width = noc_data.pop("width", None)
    height = noc_data.pop("height", None)
    if "shape" in noc_data:
        noc_data["shape"] = tuple(noc_data["shape"])
    elif width is not None or height is not None:
        noc_data["shape"] = (
            width if width is not None else 8,
            height if height is not None else 8,
        )
    if isinstance(noc_data.get("link_latency"), list):
        noc_data["link_latency"] = tuple(noc_data["link_latency"])
    faults_data = data["faults"]
    faults = FaultConfig(
        rates={
            FaultSite(name): rate for name, rate in faults_data["rates"].items()
        },
        link_multi_bit_fraction=faults_data["link_multi_bit_fraction"],
        seed=faults_data["seed"],
        permanent=PermanentFaultSchedule.from_dicts(
            faults_data.get("permanent", [])
        ),
        intermittent=IntermittentFaultSchedule.from_dicts(
            faults_data.get("intermittent", [])
        ),
        wear_out=WearOutConfig.from_dict(faults_data.get("wear_out")),
    )
    return SimulationConfig(
        noc=NoCConfig(**noc_data),
        faults=faults,
        workload=WorkloadConfig(**data["workload"]),
        collect_power=data.get("collect_power", True),
        collect_utilization=data.get("collect_utilization", False),
        payload_ecc_check=data.get("payload_ecc_check", False),
        invariant_checks=data.get("invariant_checks", False),
        activity_driven=data.get("activity_driven", True),
        backend=data.get("backend", "object"),
        telemetry=TelemetryConfig.from_dict(data.get("telemetry")),
        checkpoint_interval=data.get("checkpoint_interval"),
        checkpoint_path=data.get("checkpoint_path"),
    )


def config_to_json(config: SimulationConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_from_json(text: str) -> SimulationConfig:
    return config_from_dict(json.loads(text))


def result_to_dict(
    result: SimulationResult, include_config: bool = True
) -> Dict[str, Any]:
    """A JSON-safe dict of a run's outcome.

    ``include_config=False`` drops the embedded config copy — used by the
    CLI envelopes, where the config rides at the envelope's top level
    instead of inside each result.
    """
    out: Dict[str, Any] = {
        "cycles": result.cycles,
        "packets_injected": result.packets_injected,
        "packets_delivered": result.packets_delivered,
        "packets_lost": result.packets_lost,
        "measured_packets": result.measured_packets,
        "avg_latency": result.avg_latency,
        "avg_hops": result.avg_hops,
        "energy_per_packet_nj": result.energy_per_packet_nj,
        "throughput_flits_per_node_cycle": result.throughput_flits_per_node_cycle,
        "tx_buffer_utilization": result.tx_buffer_utilization,
        "retx_buffer_utilization": result.retx_buffer_utilization,
        "hit_cycle_limit": result.hit_cycle_limit,
        "counters": dict(result.counters),
        "energy_events": dict(result.energy_events),
    }
    if include_config:
        out["config"] = config_to_dict(result.config)
    if result.telemetry is not None:
        out["telemetry"] = result.telemetry.summary()
    return out


def result_from_dict(
    data: Dict[str, Any], config: SimulationConfig = None
) -> SimulationResult:
    """Inverse of :func:`result_to_dict`.

    The config is taken from ``data["config"]`` when present, else from the
    ``config`` argument (for dicts produced with ``include_config=False``).
    Telemetry summaries are not reconstructed into reports — a round-tripped
    result carries ``telemetry=None``.
    """
    if "config" in data:
        cfg = config_from_dict(data["config"])
    elif config is not None:
        cfg = config
    else:
        raise ValueError(
            "result dict has no embedded config; pass one via the "
            "config= argument"
        )
    return SimulationResult(
        config=cfg,
        cycles=data["cycles"],
        packets_injected=data["packets_injected"],
        packets_delivered=data["packets_delivered"],
        packets_lost=data["packets_lost"],
        measured_packets=data["measured_packets"],
        avg_latency=data["avg_latency"],
        avg_hops=data["avg_hops"],
        energy_per_packet_nj=data["energy_per_packet_nj"],
        # throughput_flits_per_node_cycle is derived, not a field
        tx_buffer_utilization=data["tx_buffer_utilization"],
        retx_buffer_utilization=data["retx_buffer_utilization"],
        counters=dict(data.get("counters", {})),
        energy_events=dict(data.get("energy_events", {})),
        hit_cycle_limit=data.get("hit_cycle_limit", False),
    )


def result_to_json(result: SimulationResult, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def result_from_json(text: str) -> SimulationResult:
    return result_from_dict(json.loads(text))


def envelope(
    command: str,
    result: Any,
    config: Dict[str, Any] = None,
) -> Dict[str, Any]:
    """The versioned ``repro/v1`` machine-output wrapper.

    Every CLI subcommand's ``--json`` mode and the NDJSON telemetry header
    share this shape, so downstream tooling can dispatch on ``schema`` and
    ``command`` without sniffing payloads.
    """
    return {
        "schema": SCHEMA_VERSION,
        "command": command,
        "config": config,
        "result": result,
    }
