"""Configuration dataclasses for the simulator and experiments.

All configuration is immutable (frozen dataclasses) so that a config object
can be shared between a network, its statistics collectors and an experiment
harness without aliasing surprises.  Derived quantities are exposed as
properties.

The defaults reproduce the paper's simulation platform (Section 2.2):

* 64-node (8x8) mesh,
* 3-stage pipelined routers,
* 5 physical channels per router (N/E/S/W + PE),
* 3 virtual channels per physical channel,
* 4 flits per packet,
* single-cycle link traversal,
* uniform injection at a configurable rate (flits/node/cycle).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import InitVar, dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.faults.intermittent import IntermittentFaultSchedule, WearOutConfig
from repro.faults.permanent import PermanentFaultSchedule
from repro.telemetry.config import TelemetryConfig
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm

#: Number of physical channels of a 2D mesh router (N, E, S, W, LOCAL).
#: 3D routers have ``2 * ndim + 1 = 7`` ports; use ``NoCConfig.num_ports``.
NUM_PORTS = 5

#: Link-latency specification: uniform (int) or one entry per axis.
LatencySpec = Union[int, Tuple[int, ...]]


def parse_shape(value: Union[str, Sequence[int]]) -> Tuple[int, ...]:
    """Normalize a platform shape to a tuple of ints.

    Accepts a tuple/list of ints or the CLI's ``WIDTHxHEIGHT[xDEPTH]``
    string grammar (``"8x8"``, ``"4x4x4"``).  Dimension-count and
    positivity validation is :class:`NoCConfig`'s job.
    """
    if isinstance(value, str):
        try:
            return tuple(int(part) for part in value.lower().split("x"))
        except ValueError:
            raise ValueError(
                f"bad shape {value!r}: expected WIDTHxHEIGHT[xDEPTH], "
                'e.g. "8x8" or "4x4x4"'
            ) from None
    if isinstance(value, Sequence):
        return tuple(int(v) for v in value)
    raise TypeError(f"cannot interpret {value!r} as a shape")


def parse_link_latency(value: Union[str, int, Sequence[int]]) -> LatencySpec:
    """Normalize a link-latency spec: an int (uniform), a per-axis
    sequence, or a string — ``"2"`` (uniform) / ``"1,1,2"`` (per axis)."""
    if isinstance(value, bool):
        raise TypeError("link latency must be an int, sequence or string")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            parts = [int(p) for p in value.split(",")]
        except ValueError:
            raise ValueError(
                f"bad link latency {value!r}: expected an int or "
                'per-axis list, e.g. "2" or "1,1,2"'
            ) from None
        return parts[0] if len(parts) == 1 else tuple(parts)
    if isinstance(value, Sequence):
        return tuple(int(v) for v in value)
    raise TypeError(f"cannot interpret {value!r} as a link latency")


def _deprecated_dims_to_shape(
    shape: Sequence[int], width: Optional[int], height: Optional[int]
) -> Tuple[int, ...]:
    """Fold deprecated ``width=``/``height=`` kwargs into a shape tuple."""
    warnings.warn(
        "width=/height= are deprecated; pass shape=(width, height) "
        "(docs/TOPOLOGY.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    dims = list(shape)
    if width is not None:
        dims[0] = int(width)
    if height is not None:
        dims[1] = int(height)
    return tuple(dims)


@dataclass(frozen=True)
class NoCConfig:
    """Static parameters of the simulated network.

    Parameters
    ----------
    shape:
        Mesh dimensions per axis, x first (the paper uses ``(8, 8)``; a 3D
        many-core stack is e.g. ``(4, 4, 4)``).  The deprecated ``width=``/
        ``height=`` keyword aliases still work and override the matching
        axis.
    topology:
        ``"mesh"`` (the paper's platform) or ``"torus"`` (extension: adds
        wraparound links; dimension-ordered routing then has cyclic channel
        dependencies across the wrap links, so pair it with
        ``deadlock_recovery_enabled`` — the recovery scheme substitutes for
        dateline VC classes).  ``"mesh3d"``/``"torus3d"`` name the same
        structures with a required 3-axis shape.
    link_latency:
        Cycles per link traversal: an int applies uniformly, a per-axis
        tuple models slower vertical TSV hops (e.g. ``(1, 1, 2)``).
    num_vcs:
        Virtual channels per physical channel (paper: 3).
    vc_buffer_depth:
        Flit slots per input VC buffer (the "transmission buffer" of
        Section 3.2; paper's Figure 10 example uses 4).
    flits_per_packet:
        Packet length in flits (paper: 4).
    retx_buffer_depth:
        Depth of the per-VC barrel-shift retransmission buffer.  The paper
        derives 3 (link + check + NACK cycles); Section 3.2 notes a larger
        value may be needed when the buffers also serve deadlock recovery.
    pipeline_stages:
        Router pipeline depth (1, 2, 3 or 4).  Affects the recovery latency
        of intra-router logic errors (Section 4) and the header's per-hop
        latency. The paper simulates 3-stage routers.
    routing:
        Routing algorithm (paper's DT = XY, AD = WEST_FIRST).
    link_protection:
        Link-error handling scheme (Figure 5's comparison axis).
    deadlock_recovery_enabled:
        Enable the probe-based detection + retransmission-buffer recovery of
        Section 3.2.
    deadlock_threshold:
        ``C_thres``: blocked cycles before a router sends a probe (Rule 1).
    ac_unit_enabled:
        Enable the Allocation Comparator of Section 4.1/4.3.  Disabling it
        is the ablation: VA/SA logic faults then cause packet loss and
        stranded wormholes instead of 1-cycle corrections.
    duplicate_retx_buffers:
        The Section 4.5 "fool-proof" option: a duplicate copy protects the
        retransmission buffer itself against upsets at 2x buffer cost.
    handshake_tmr:
        Section 4.6: triple-modular-redundant handshake lines.  Disabling
        it is the ablation where a single glitch loses a credit or a NACK.
    max_nack_retries:
        After this many NACKs for the same flit the receiver accepts it
        corrupted instead of looping forever — the Section 4.5 "endless
        retransmission loop" escape hatch for a corrupted retransmission-
        buffer copy (without duplicate buffers).
    """

    shape: Tuple[int, ...] = (8, 8)
    topology: str = "mesh"
    num_vcs: int = 3
    vc_buffer_depth: int = 4
    flits_per_packet: int = 4
    retx_buffer_depth: int = 3
    pipeline_stages: int = 3
    routing: RoutingAlgorithm = RoutingAlgorithm.XY
    link_protection: LinkProtection = LinkProtection.HBH
    deadlock_recovery_enabled: bool = False
    deadlock_threshold: int = 32
    ac_unit_enabled: bool = True
    duplicate_retx_buffers: bool = False
    handshake_tmr: bool = True
    max_nack_retries: int = 8
    flit_width_bits: int = 64
    link_latency: LatencySpec = 1
    width: InitVar[Optional[int]] = None
    height: InitVar[Optional[int]] = None

    def __post_init__(
        self, width: Optional[int] = None, height: Optional[int] = None
    ) -> None:
        shape = tuple(int(d) for d in self.shape)
        if width is not None or height is not None:
            shape = _deprecated_dims_to_shape(shape, width, height)
        object.__setattr__(self, "shape", shape)
        if len(shape) not in (2, 3):
            raise ValueError(
                f"only 2D and 3D topologies are supported, got shape {shape}"
            )
        if any(d < 1 for d in shape):
            raise ValueError("mesh dimensions must be positive")
        if self.topology not in ("mesh", "torus", "mesh3d", "torus3d"):
            raise ValueError(
                "topology must be 'mesh', 'torus', 'mesh3d' or 'torus3d'"
            )
        if self.topology in ("mesh3d", "torus3d") and len(shape) != 3:
            raise ValueError(
                f"topology '{self.topology}' needs a 3-axis shape, got {shape}"
            )
        if self.is_torus and any(d < 3 for d in shape):
            raise ValueError(
                "a torus needs at least 3 nodes per dimension (smaller wrap "
                "rings degenerate into duplicate or self links)"
            )
        latency = self.link_latency
        if not isinstance(latency, int):
            latency = tuple(int(v) for v in latency)
            object.__setattr__(self, "link_latency", latency)
            if len(latency) != len(shape):
                raise ValueError(
                    f"link_latency needs one entry per axis ({len(shape)}), "
                    f"got {len(latency)}"
                )
        latencies = (latency,) * len(shape) if isinstance(latency, int) else latency
        if any(v < 1 for v in latencies):
            raise ValueError("link latencies must be >= 1 cycle")
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if self.vc_buffer_depth < 1:
            raise ValueError("VC buffers must hold at least one flit")
        if self.flits_per_packet < 1:
            raise ValueError("packets must contain at least one flit")
        if self.retx_buffer_depth < 3:
            raise ValueError(
                "the HBH scheme requires a >=3-deep retransmission buffer "
                "(link + error-check + NACK cycles, Section 3.1)"
            )
        required_retx = 2 * max(latencies) + 1
        if self.retx_buffer_depth < required_retx:
            raise ValueError(
                f"link latency {max(latencies)} stretches the HBH NACK "
                f"round trip: a sent flit must stay replayable for "
                f"2*latency+1 cycles, so retx_buffer_depth must be >= "
                f"{required_retx} (got {self.retx_buffer_depth})"
            )
        if self.pipeline_stages not in (1, 2, 3, 4):
            raise ValueError("supported router pipelines are 1-4 stages")
        if self.deadlock_recovery_enabled and not self.deadlock_buffer_bound_ok(1):
            # Under-provisioned recovery buffers surface as a wedged campaign
            # hours later; flag them at construction time.  A warning rather
            # than a rejection so ablations can still model the broken
            # configuration deliberately; `repro lint` reports the same
            # condition as the hard error NOC001.
            import warnings

            warnings.warn(
                "NOC001: deadlock recovery is enabled but the Eq. 1 buffer "
                f"bound is violated (T={self.vc_buffer_depth}, "
                f"R={self.retx_buffer_depth}, M={self.flits_per_packet}): "
                "recovery cannot guarantee a free slot and may wedge; see "
                "`repro lint` for the required depth",
                stacklevel=2,
            )

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def is_torus(self) -> bool:
        return self.topology in ("torus", "torus3d")

    @property
    def shape_text(self) -> str:
        """The shape in the CLI grammar, e.g. ``"8x8"`` or ``"4x4x4"``."""
        return "x".join(str(d) for d in self.shape)

    @property
    def num_nodes(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def num_ports(self) -> int:
        """Router ports: two per axis plus LOCAL (5 in 2D, 7 in 3D)."""
        return 2 * self.ndim + 1

    @property
    def axis_latencies(self) -> Tuple[int, ...]:
        """``link_latency`` normalized to one entry per axis."""
        if isinstance(self.link_latency, int):
            return (self.link_latency,) * self.ndim
        return self.link_latency

    @property
    def max_link_latency(self) -> int:
        return max(self.axis_latencies)

    def replace(self, **changes: object) -> "NoCConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def deadlock_buffer_bound_ok(self, num_deadlocked_nodes: int) -> bool:
        """Check the Eq. 1 lower bound for this configuration.

        With homogeneous buffers, Eq. 1 reads
        ``n * (T + R) > M * ceil(T / M) * n`` where ``T`` is the transmission
        (VC) buffer depth, ``R`` the retransmission buffer depth and ``M``
        the packet length.  See :func:`repro.core.deadlock.buffer_lower_bound`
        for the general, heterogeneous form.
        """
        from repro.core.deadlock import buffer_lower_bound

        n = num_deadlocked_nodes
        return buffer_lower_bound(
            flits_per_packet=self.flits_per_packet,
            transmission_depths=[self.vc_buffer_depth] * n,
            retransmission_depths=[self.retx_buffer_depth] * n,
        )


def _finalize_dim_accessors(cls: type) -> None:
    """Turn the deprecated ``width``/``height`` InitVars into read-only
    accessors derived from ``shape``.

    The InitVar entries are dropped from ``__dataclass_fields__`` so
    :func:`dataclasses.replace` never re-feeds them through the
    constructor (which would re-trigger the deprecation path on every
    ``config.replace(...)``); reading ``noc.width`` stays supported —
    only the constructor *kwargs* are deprecated.
    """
    fields_map = dict(cls.__dataclass_fields__)
    fields_map.pop("width", None)
    fields_map.pop("height", None)
    cls.__dataclass_fields__ = fields_map  # type: ignore[attr-defined]
    cls.width = property(lambda self: self.shape[0])  # type: ignore[attr-defined]
    cls.height = property(lambda self: self.shape[1])  # type: ignore[attr-defined]
    cls.depth = property(  # type: ignore[attr-defined]
        lambda self: self.shape[2] if len(self.shape) > 2 else 1
    )


_finalize_dim_accessors(NoCConfig)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection rates, one per fault site.

    Each rate is the probability that a single *operation* at that site
    suffers a single-event upset:

    * ``LINK``: per flit per link traversal,
    * ``ROUTING``: per routing computation (headers only),
    * ``VC_ALLOC``: per successful VA grant,
    * ``SW_ALLOC``: per successful SA grant,
    * ``CROSSBAR``: per flit per crossbar traversal,
    * ``RETX_BUFFER``: per flit stored per cycle,
    * ``HANDSHAKE``: per handshake-line sample.

    ``link_multi_bit_fraction`` is the conditional probability that a link
    error affects more than one bit (and thus escapes SEC correction); the
    paper argues double errors are "not insignificant due to crosstalk" but
    still rare.

    ``permanent`` schedules hard faults — links/routers/VC buffers that die
    at a given cycle and stay dead (:mod:`repro.faults.permanent`).  These
    are deterministic (no RNG involvement), so the transient seed stream is
    unaffected by their presence.

    ``intermittent`` schedules bursty link sites
    (:mod:`repro.faults.intermittent`): per-site Markov on/off processes
    whose strikes draw from *per-site* RNG streams derived from ``seed`` —
    the shared transient stream is again unaffected.  ``wear_out``
    optionally escalates stressed intermittent sites into the permanent
    machinery (the full lifecycle is specified in docs/FAULTS.md).
    """

    rates: Mapping[FaultSite, float] = field(default_factory=dict)
    link_multi_bit_fraction: float = 0.1
    seed: int = 1
    permanent: PermanentFaultSchedule = field(
        default_factory=PermanentFaultSchedule.empty
    )
    intermittent: IntermittentFaultSchedule = field(
        default_factory=IntermittentFaultSchedule.empty
    )
    wear_out: Optional[WearOutConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.permanent, PermanentFaultSchedule):
            raise TypeError(
                "permanent must be a PermanentFaultSchedule, "
                f"got {type(self.permanent).__name__}"
            )
        if not isinstance(self.intermittent, IntermittentFaultSchedule):
            raise TypeError(
                "intermittent must be an IntermittentFaultSchedule, "
                f"got {type(self.intermittent).__name__}"
            )
        if self.wear_out is not None and not isinstance(self.wear_out, WearOutConfig):
            raise TypeError(
                "wear_out must be a WearOutConfig or None, "
                f"got {type(self.wear_out).__name__}"
            )
        if self.wear_out is not None and not self.intermittent:
            raise ValueError(
                "wear_out is configured but no intermittent sites exist to "
                "accumulate stress; add an IntermittentFaultSchedule"
            )
        for site, rate in self.rates.items():
            if not isinstance(site, FaultSite):
                raise TypeError(f"fault site must be a FaultSite, got {site!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {site} must be in [0, 1], got {rate}")
        if not 0.0 <= self.link_multi_bit_fraction <= 1.0:
            raise ValueError("link_multi_bit_fraction must be in [0, 1]")

    def rate(self, site: FaultSite) -> float:
        return self.rates.get(site, 0.0)

    @classmethod
    def fault_free(cls, seed: int = 1) -> "FaultConfig":
        return cls(rates={}, seed=seed)

    @classmethod
    def link_only(
        cls, rate: float, *, multi_bit_fraction: float = 0.1, seed: int = 1
    ) -> "FaultConfig":
        return cls(
            rates={FaultSite.LINK: rate},
            link_multi_bit_fraction=multi_bit_fraction,
            seed=seed,
        )

    @classmethod
    def single_site(cls, site: FaultSite, rate: float, *, seed: int = 1) -> "FaultConfig":
        return cls(rates={site: rate}, seed=seed)


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic workload parameters.

    ``injection_rate`` is in flits/node/cycle as in the paper; a node's
    packet inter-arrival time is ``flits_per_packet / injection_rate``
    cycles on average (Bernoulli per-cycle injection).
    """

    pattern: str = "uniform"
    injection_rate: float = 0.25
    num_messages: int = 2000
    warmup_messages: int = 500
    max_cycles: int = 200_000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.injection_rate <= 0:
            raise ValueError("injection rate must be positive")
        if self.num_messages <= 0:
            raise ValueError("must eject at least one message")
        if not 0 <= self.warmup_messages < self.num_messages:
            raise ValueError("warmup must be a proper prefix of the run")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a :class:`repro.noc.simulator.Simulator` needs.

    ``payload_ecc_check`` enables the bit-level cross-validation mode: every
    flit carries a real extended-Hamming codeword, materialized upsets flip
    real bits, and destinations verify that the SEC/DED decode class matches
    the symbolic corruption tag (see :mod:`repro.coding.payload_check`).

    ``invariant_checks`` enables the cycle-level invariant sanitizer
    (:mod:`repro.analysis.sanitizer`): after every cycle the simulator
    asserts flit conservation, wormhole-allocation consistency and VC
    state-machine legality, raising on the first violation.  Costs roughly
    one full network walk per cycle; intended for debugging and CI, not
    campaigns.

    ``telemetry`` configures the observability layer
    (:mod:`repro.telemetry`): when enabled, components publish structured
    events to a shared bus and per-component gauges are sampled every
    ``metrics_interval`` cycles.  Disabled (the default) the network carries
    no bus at all and the cycle loops pay a single ``None`` check per cycle.

    ``activity_driven`` selects the activity-driven cycle loop: the network
    maintains explicit active sets (routers with buffered flits or pending
    output, links with in-flight traffic, interfaces with queued packets)
    and skips idle components instead of polling all of them every cycle.
    The two loops are bit-for-bit equivalent (see
    ``docs/PERFORMANCE.md`` and ``tests/noc/test_fast_path_equivalence.py``);
    the flag exists so equivalence can be re-validated after changes to the
    hot path and so regressions can be bisected to the scheduling layer.

    ``backend`` selects the state representation the cycle loop runs on.
    ``"object"`` (the default) is the per-flit object model described in
    ``docs/ARCHITECTURE.md``; ``"batched"`` requests the struct-of-arrays
    kernel (:mod:`repro.noc.kernel`), which holds flit/VC/credit/
    retransmission state in preallocated flat arrays and processes routers
    as batched index operations per pipeline stage.  The kernel covers the
    fault-free common case; configurations outside its domain (transient
    fault rates, permanent schedules, E2E protection, source routing,
    deadlock recovery, payload ECC, invariant checks) silently fall back to
    the object model selected by ``activity_driven``, so results are always
    bit-for-bit identical across backends (``docs/KERNEL.md``,
    ``tests/noc/test_fast_path_equivalence.py``).  ``backend`` is
    orthogonal to ``activity_driven``: the latter only chooses *which
    object loop* runs when the kernel is not engaged.

    ``checkpoint_interval`` / ``checkpoint_path`` enable periodic crash-safe
    checkpointing (:mod:`repro.checkpoint`): every ``checkpoint_interval``
    cycles the simulator atomically rewrites ``checkpoint_path`` with a
    complete snapshot, from which ``resume_from(path)`` continues the run
    bit-for-bit (see docs/CHECKPOINTING.md).  Both must be set together;
    the schedule is cycle-based so an interrupted-and-resumed run writes
    the same remaining checkpoints (and counts them identically) as an
    uninterrupted one.
    """

    noc: NoCConfig = field(default_factory=NoCConfig)
    faults: FaultConfig = field(default_factory=FaultConfig.fault_free)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    collect_power: bool = True
    collect_utilization: bool = False
    payload_ecc_check: bool = False
    invariant_checks: bool = False
    activity_driven: bool = True
    backend: str = "object"
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    checkpoint_interval: Optional[int] = None
    checkpoint_path: Optional[str] = None
    #: Platform conveniences: ``SimulationConfig(shape=(4, 4, 4),
    #: topology="mesh3d")`` rewrites the nested ``noc`` block without the
    #: caller spelling out a NoCConfig.  ``width=``/``height=`` are the
    #: deprecated 2D aliases.
    shape: InitVar[Optional[Tuple[int, ...]]] = None
    topology: InitVar[Optional[str]] = None
    link_latency: InitVar[Optional[LatencySpec]] = None
    width: InitVar[Optional[int]] = None
    height: InitVar[Optional[int]] = None

    def __post_init__(
        self,
        shape: Optional[Tuple[int, ...]] = None,
        topology: Optional[str] = None,
        link_latency: Optional[LatencySpec] = None,
        width: Optional[int] = None,
        height: Optional[int] = None,
    ) -> None:
        if width is not None or height is not None:
            shape = _deprecated_dims_to_shape(
                shape if shape is not None else self.noc.shape, width, height
            )
        changes: dict = {}
        if shape is not None:
            changes["shape"] = tuple(shape)
        if topology is not None:
            changes["topology"] = topology
        if link_latency is not None:
            changes["link_latency"] = link_latency
        if changes:
            object.__setattr__(self, "noc", self.noc.replace(**changes))
        if self.backend not in ("object", "batched"):
            raise ValueError("backend must be 'object' or 'batched'")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1 cycle")
        if (self.checkpoint_interval is None) != (self.checkpoint_path is None):
            raise ValueError(
                "checkpoint_interval and checkpoint_path must be set together"
            )

    def replace(self, **changes: object) -> "SimulationConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def _drop_initvars(cls: type, *names: str) -> None:
    """Remove convenience InitVars from ``__dataclass_fields__`` so
    :func:`dataclasses.replace` does not re-feed them (they are pure
    constructor sugar; ``replace`` operates on the stored ``noc`` block)."""
    fields_map = dict(cls.__dataclass_fields__)
    for name in names:
        fields_map.pop(name, None)
    cls.__dataclass_fields__ = fields_map  # type: ignore[attr-defined]


_drop_initvars(
    SimulationConfig, "shape", "topology", "link_latency", "width", "height"
)


#: Paper's published synthesis results for the generic 5-port router with 4
#: VCs per PC (Table 1), used to calibrate the analytic power/area model.
PAPER_ROUTER_POWER_MW = 119.55
PAPER_ROUTER_AREA_MM2 = 0.374862
PAPER_AC_POWER_MW = 2.02
PAPER_AC_AREA_MM2 = 0.004474
PAPER_CLOCK_HZ = 500e6
PAPER_SUPPLY_V = 1.0
