"""Configuration dataclasses for the simulator and experiments.

All configuration is immutable (frozen dataclasses) so that a config object
can be shared between a network, its statistics collectors and an experiment
harness without aliasing surprises.  Derived quantities are exposed as
properties.

The defaults reproduce the paper's simulation platform (Section 2.2):

* 64-node (8x8) mesh,
* 3-stage pipelined routers,
* 5 physical channels per router (N/E/S/W + PE),
* 3 virtual channels per physical channel,
* 4 flits per packet,
* single-cycle link traversal,
* uniform injection at a configurable rate (flits/node/cycle).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.faults.intermittent import IntermittentFaultSchedule, WearOutConfig
from repro.faults.permanent import PermanentFaultSchedule
from repro.telemetry.config import TelemetryConfig
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm

#: Number of physical channels of a mesh router (N, E, S, W, LOCAL).
NUM_PORTS = 5


@dataclass(frozen=True)
class NoCConfig:
    """Static parameters of the simulated network.

    Parameters
    ----------
    width, height:
        Mesh dimensions (the paper uses 8x8).
    topology:
        ``"mesh"`` (the paper's platform) or ``"torus"`` (extension: adds
        wraparound links; dimension-ordered routing then has cyclic channel
        dependencies across the wrap links, so pair it with
        ``deadlock_recovery_enabled`` — the recovery scheme substitutes for
        dateline VC classes).
    num_vcs:
        Virtual channels per physical channel (paper: 3).
    vc_buffer_depth:
        Flit slots per input VC buffer (the "transmission buffer" of
        Section 3.2; paper's Figure 10 example uses 4).
    flits_per_packet:
        Packet length in flits (paper: 4).
    retx_buffer_depth:
        Depth of the per-VC barrel-shift retransmission buffer.  The paper
        derives 3 (link + check + NACK cycles); Section 3.2 notes a larger
        value may be needed when the buffers also serve deadlock recovery.
    pipeline_stages:
        Router pipeline depth (1, 2, 3 or 4).  Affects the recovery latency
        of intra-router logic errors (Section 4) and the header's per-hop
        latency. The paper simulates 3-stage routers.
    routing:
        Routing algorithm (paper's DT = XY, AD = WEST_FIRST).
    link_protection:
        Link-error handling scheme (Figure 5's comparison axis).
    deadlock_recovery_enabled:
        Enable the probe-based detection + retransmission-buffer recovery of
        Section 3.2.
    deadlock_threshold:
        ``C_thres``: blocked cycles before a router sends a probe (Rule 1).
    ac_unit_enabled:
        Enable the Allocation Comparator of Section 4.1/4.3.  Disabling it
        is the ablation: VA/SA logic faults then cause packet loss and
        stranded wormholes instead of 1-cycle corrections.
    duplicate_retx_buffers:
        The Section 4.5 "fool-proof" option: a duplicate copy protects the
        retransmission buffer itself against upsets at 2x buffer cost.
    handshake_tmr:
        Section 4.6: triple-modular-redundant handshake lines.  Disabling
        it is the ablation where a single glitch loses a credit or a NACK.
    max_nack_retries:
        After this many NACKs for the same flit the receiver accepts it
        corrupted instead of looping forever — the Section 4.5 "endless
        retransmission loop" escape hatch for a corrupted retransmission-
        buffer copy (without duplicate buffers).
    """

    width: int = 8
    height: int = 8
    topology: str = "mesh"
    num_vcs: int = 3
    vc_buffer_depth: int = 4
    flits_per_packet: int = 4
    retx_buffer_depth: int = 3
    pipeline_stages: int = 3
    routing: RoutingAlgorithm = RoutingAlgorithm.XY
    link_protection: LinkProtection = LinkProtection.HBH
    deadlock_recovery_enabled: bool = False
    deadlock_threshold: int = 32
    ac_unit_enabled: bool = True
    duplicate_retx_buffers: bool = False
    handshake_tmr: bool = True
    max_nack_retries: int = 8
    flit_width_bits: int = 64

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.topology not in ("mesh", "torus"):
            raise ValueError("topology must be 'mesh' or 'torus'")
        if self.topology == "torus" and (self.width < 3 or self.height < 3):
            raise ValueError(
                "a torus needs at least 3 nodes per dimension (smaller wrap "
                "rings degenerate into duplicate or self links)"
            )
        if self.num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if self.vc_buffer_depth < 1:
            raise ValueError("VC buffers must hold at least one flit")
        if self.flits_per_packet < 1:
            raise ValueError("packets must contain at least one flit")
        if self.retx_buffer_depth < 3:
            raise ValueError(
                "the HBH scheme requires a >=3-deep retransmission buffer "
                "(link + error-check + NACK cycles, Section 3.1)"
            )
        if self.pipeline_stages not in (1, 2, 3, 4):
            raise ValueError("supported router pipelines are 1-4 stages")
        if self.deadlock_recovery_enabled and not self.deadlock_buffer_bound_ok(1):
            # Under-provisioned recovery buffers surface as a wedged campaign
            # hours later; flag them at construction time.  A warning rather
            # than a rejection so ablations can still model the broken
            # configuration deliberately; `repro lint` reports the same
            # condition as the hard error NOC001.
            import warnings

            warnings.warn(
                "NOC001: deadlock recovery is enabled but the Eq. 1 buffer "
                f"bound is violated (T={self.vc_buffer_depth}, "
                f"R={self.retx_buffer_depth}, M={self.flits_per_packet}): "
                "recovery cannot guarantee a free slot and may wedge; see "
                "`repro lint` for the required depth",
                stacklevel=2,
            )

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def num_ports(self) -> int:
        return NUM_PORTS

    def replace(self, **changes: object) -> "NoCConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def deadlock_buffer_bound_ok(self, num_deadlocked_nodes: int) -> bool:
        """Check the Eq. 1 lower bound for this configuration.

        With homogeneous buffers, Eq. 1 reads
        ``n * (T + R) > M * ceil(T / M) * n`` where ``T`` is the transmission
        (VC) buffer depth, ``R`` the retransmission buffer depth and ``M``
        the packet length.  See :func:`repro.core.deadlock.buffer_lower_bound`
        for the general, heterogeneous form.
        """
        from repro.core.deadlock import buffer_lower_bound

        n = num_deadlocked_nodes
        return buffer_lower_bound(
            flits_per_packet=self.flits_per_packet,
            transmission_depths=[self.vc_buffer_depth] * n,
            retransmission_depths=[self.retx_buffer_depth] * n,
        )


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection rates, one per fault site.

    Each rate is the probability that a single *operation* at that site
    suffers a single-event upset:

    * ``LINK``: per flit per link traversal,
    * ``ROUTING``: per routing computation (headers only),
    * ``VC_ALLOC``: per successful VA grant,
    * ``SW_ALLOC``: per successful SA grant,
    * ``CROSSBAR``: per flit per crossbar traversal,
    * ``RETX_BUFFER``: per flit stored per cycle,
    * ``HANDSHAKE``: per handshake-line sample.

    ``link_multi_bit_fraction`` is the conditional probability that a link
    error affects more than one bit (and thus escapes SEC correction); the
    paper argues double errors are "not insignificant due to crosstalk" but
    still rare.

    ``permanent`` schedules hard faults — links/routers/VC buffers that die
    at a given cycle and stay dead (:mod:`repro.faults.permanent`).  These
    are deterministic (no RNG involvement), so the transient seed stream is
    unaffected by their presence.

    ``intermittent`` schedules bursty link sites
    (:mod:`repro.faults.intermittent`): per-site Markov on/off processes
    whose strikes draw from *per-site* RNG streams derived from ``seed`` —
    the shared transient stream is again unaffected.  ``wear_out``
    optionally escalates stressed intermittent sites into the permanent
    machinery (the full lifecycle is specified in docs/FAULTS.md).
    """

    rates: Mapping[FaultSite, float] = field(default_factory=dict)
    link_multi_bit_fraction: float = 0.1
    seed: int = 1
    permanent: PermanentFaultSchedule = field(
        default_factory=PermanentFaultSchedule.empty
    )
    intermittent: IntermittentFaultSchedule = field(
        default_factory=IntermittentFaultSchedule.empty
    )
    wear_out: Optional[WearOutConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.permanent, PermanentFaultSchedule):
            raise TypeError(
                "permanent must be a PermanentFaultSchedule, "
                f"got {type(self.permanent).__name__}"
            )
        if not isinstance(self.intermittent, IntermittentFaultSchedule):
            raise TypeError(
                "intermittent must be an IntermittentFaultSchedule, "
                f"got {type(self.intermittent).__name__}"
            )
        if self.wear_out is not None and not isinstance(self.wear_out, WearOutConfig):
            raise TypeError(
                "wear_out must be a WearOutConfig or None, "
                f"got {type(self.wear_out).__name__}"
            )
        if self.wear_out is not None and not self.intermittent:
            raise ValueError(
                "wear_out is configured but no intermittent sites exist to "
                "accumulate stress; add an IntermittentFaultSchedule"
            )
        for site, rate in self.rates.items():
            if not isinstance(site, FaultSite):
                raise TypeError(f"fault site must be a FaultSite, got {site!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {site} must be in [0, 1], got {rate}")
        if not 0.0 <= self.link_multi_bit_fraction <= 1.0:
            raise ValueError("link_multi_bit_fraction must be in [0, 1]")

    def rate(self, site: FaultSite) -> float:
        return self.rates.get(site, 0.0)

    @classmethod
    def fault_free(cls, seed: int = 1) -> "FaultConfig":
        return cls(rates={}, seed=seed)

    @classmethod
    def link_only(
        cls, rate: float, *, multi_bit_fraction: float = 0.1, seed: int = 1
    ) -> "FaultConfig":
        return cls(
            rates={FaultSite.LINK: rate},
            link_multi_bit_fraction=multi_bit_fraction,
            seed=seed,
        )

    @classmethod
    def single_site(cls, site: FaultSite, rate: float, *, seed: int = 1) -> "FaultConfig":
        return cls(rates={site: rate}, seed=seed)


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic workload parameters.

    ``injection_rate`` is in flits/node/cycle as in the paper; a node's
    packet inter-arrival time is ``flits_per_packet / injection_rate``
    cycles on average (Bernoulli per-cycle injection).
    """

    pattern: str = "uniform"
    injection_rate: float = 0.25
    num_messages: int = 2000
    warmup_messages: int = 500
    max_cycles: int = 200_000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.injection_rate <= 0:
            raise ValueError("injection rate must be positive")
        if self.num_messages <= 0:
            raise ValueError("must eject at least one message")
        if not 0 <= self.warmup_messages < self.num_messages:
            raise ValueError("warmup must be a proper prefix of the run")
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a :class:`repro.noc.simulator.Simulator` needs.

    ``payload_ecc_check`` enables the bit-level cross-validation mode: every
    flit carries a real extended-Hamming codeword, materialized upsets flip
    real bits, and destinations verify that the SEC/DED decode class matches
    the symbolic corruption tag (see :mod:`repro.coding.payload_check`).

    ``invariant_checks`` enables the cycle-level invariant sanitizer
    (:mod:`repro.analysis.sanitizer`): after every cycle the simulator
    asserts flit conservation, wormhole-allocation consistency and VC
    state-machine legality, raising on the first violation.  Costs roughly
    one full network walk per cycle; intended for debugging and CI, not
    campaigns.

    ``telemetry`` configures the observability layer
    (:mod:`repro.telemetry`): when enabled, components publish structured
    events to a shared bus and per-component gauges are sampled every
    ``metrics_interval`` cycles.  Disabled (the default) the network carries
    no bus at all and the cycle loops pay a single ``None`` check per cycle.

    ``activity_driven`` selects the activity-driven cycle loop: the network
    maintains explicit active sets (routers with buffered flits or pending
    output, links with in-flight traffic, interfaces with queued packets)
    and skips idle components instead of polling all of them every cycle.
    The two loops are bit-for-bit equivalent (see
    ``docs/PERFORMANCE.md`` and ``tests/noc/test_fast_path_equivalence.py``);
    the flag exists so equivalence can be re-validated after changes to the
    hot path and so regressions can be bisected to the scheduling layer.

    ``backend`` selects the state representation the cycle loop runs on.
    ``"object"`` (the default) is the per-flit object model described in
    ``docs/ARCHITECTURE.md``; ``"batched"`` requests the struct-of-arrays
    kernel (:mod:`repro.noc.kernel`), which holds flit/VC/credit/
    retransmission state in preallocated flat arrays and processes routers
    as batched index operations per pipeline stage.  The kernel covers the
    fault-free common case; configurations outside its domain (transient
    fault rates, permanent schedules, E2E protection, source routing,
    deadlock recovery, payload ECC, invariant checks) silently fall back to
    the object model selected by ``activity_driven``, so results are always
    bit-for-bit identical across backends (``docs/KERNEL.md``,
    ``tests/noc/test_fast_path_equivalence.py``).  ``backend`` is
    orthogonal to ``activity_driven``: the latter only chooses *which
    object loop* runs when the kernel is not engaged.

    ``checkpoint_interval`` / ``checkpoint_path`` enable periodic crash-safe
    checkpointing (:mod:`repro.checkpoint`): every ``checkpoint_interval``
    cycles the simulator atomically rewrites ``checkpoint_path`` with a
    complete snapshot, from which ``resume_from(path)`` continues the run
    bit-for-bit (see docs/CHECKPOINTING.md).  Both must be set together;
    the schedule is cycle-based so an interrupted-and-resumed run writes
    the same remaining checkpoints (and counts them identically) as an
    uninterrupted one.
    """

    noc: NoCConfig = field(default_factory=NoCConfig)
    faults: FaultConfig = field(default_factory=FaultConfig.fault_free)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    collect_power: bool = True
    collect_utilization: bool = False
    payload_ecc_check: bool = False
    invariant_checks: bool = False
    activity_driven: bool = True
    backend: str = "object"
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    checkpoint_interval: Optional[int] = None
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in ("object", "batched"):
            raise ValueError("backend must be 'object' or 'batched'")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1 cycle")
        if (self.checkpoint_interval is None) != (self.checkpoint_path is None):
            raise ValueError(
                "checkpoint_interval and checkpoint_path must be set together"
            )

    def replace(self, **changes: object) -> "SimulationConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


#: Paper's published synthesis results for the generic 5-port router with 4
#: VCs per PC (Table 1), used to calibrate the analytic power/area model.
PAPER_ROUTER_POWER_MW = 119.55
PAPER_ROUTER_AREA_MM2 = 0.374862
PAPER_AC_POWER_MW = 2.02
PAPER_AC_AREA_MM2 = 0.004474
PAPER_CLOCK_HZ = 500e6
PAPER_SUPPLY_V = 1.0
