"""ASCII line charts for experiment series.

Minimal but real: multiple named series over a shared x axis, linear or
logarithmic x scaling (the paper's error-rate sweeps are log-x), y-axis
ticks, a legend, and sensible degenerate-input behaviour.  Used by the CLI
(``python -m repro figure 5``) and available to library users via
:func:`render_series`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "*o+x#@%&"


class AsciiChart:
    """A fixed-size character canvas with chart-drawing helpers."""

    def __init__(self, width: int = 64, height: int = 16):
        if width < 16 or height < 4:
            raise ValueError("chart too small to be legible")
        self.width = width
        self.height = height
        self._rows: List[List[str]] = [
            [" "] * width for _ in range(height)
        ]

    def plot(self, column: int, row: int, glyph: str) -> None:
        """Place a glyph; out-of-canvas points are clipped silently."""
        if 0 <= row < self.height and 0 <= column < self.width:
            self._rows[self.height - 1 - row][column] = glyph

    def render(self) -> List[str]:
        return ["".join(row) for row in self._rows]


def _scale_positions(
    xs: Sequence[float], width: int, log_x: bool
) -> List[int]:
    if log_x:
        if any(x <= 0 for x in xs):
            raise ValueError("log-x scaling requires positive x values")
        values = [math.log10(x) for x in xs]
    else:
        values = list(xs)
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return [0 for _ in values]
    return [round((v - lo) / span * (width - 1)) for v in values]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.2f}".rstrip("0").rstrip(".")


def render_series(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Render named series over a shared x axis as an ASCII chart.

    >>> print(render_series("t", [1, 2, 3], {"a": [1.0, 2.0, 3.0]},
    ...                     width=20, height=5))  # doctest: +SKIP
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(xs)}:
        raise ValueError("every series must have one value per x")
    if len(xs) == 0:
        raise ValueError("need at least one point")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")

    all_values = [v for vs in series.values() for v in vs]
    y_lo = min(all_values)
    y_hi = max(all_values)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    columns = _scale_positions(xs, width, log_x)

    chart = AsciiChart(width, height)
    for glyph, (name, values) in zip(SERIES_GLYPHS, series.items()):
        prev: Optional[tuple] = None
        for col, value in zip(columns, values):
            row = round((value - y_lo) / (y_hi - y_lo) * (height - 1))
            if prev is not None:
                _draw_segment(chart, prev, (col, row), glyph)
            chart.plot(col, row, glyph)
            prev = (col, row)

    gutter = max(len(_format_tick(y_hi)), len(_format_tick(y_lo))) + 1
    lines = [title]
    if y_label:
        lines.append(y_label)
    body = chart.render()
    for i, row_text in enumerate(body):
        if i == 0:
            tick = _format_tick(y_hi)
        elif i == len(body) - 1:
            tick = _format_tick(y_lo)
        elif i == len(body) // 2:
            tick = _format_tick((y_hi + y_lo) / 2)
        else:
            tick = ""
        lines.append(f"{tick:>{gutter}} |{row_text}")
    axis = "-" * width
    lines.append(f"{'':>{gutter}} +{axis}")
    x_lo = _format_tick(xs[0])
    x_hi = _format_tick(xs[-1])
    scale = " (log x)" if log_x else ""
    pad = width - len(x_lo) - len(x_hi)
    lines.append(f"{'':>{gutter}}  {x_lo}{' ' * max(1, pad)}{x_hi}{scale}")
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series)
    )
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)


def _draw_segment(chart: AsciiChart, a: tuple, b: tuple, glyph: str) -> None:
    """Sparse linear interpolation between consecutive points."""
    (c0, r0), (c1, r1) = a, b
    steps = max(abs(c1 - c0), abs(r1 - r0))
    for i in range(1, steps):
        col = c0 + (c1 - c0) * i // steps
        row = r0 + (r1 - r0) * i // steps
        chart.plot(col, row, glyph if (col + row) % 2 == 0 else ".")


def render_comparison_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A plain fixed-width table (results summaries, Table 1, etc.)."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_heatmap(
    grid: Sequence[Sequence[Optional[float]]],
    title: str = "",
    fmt: str = "{:.2f}",
    empty: str = "·",
) -> str:
    """Render a mesh-shaped value grid (``TelemetryReport.heatmap``) as a
    fixed-width table, row ``y=0`` at the bottom (matching node numbering).

    ``None`` cells (no samples for that component) render as ``empty``.
    """
    if not grid or not grid[0]:
        raise ValueError("need a non-empty grid")
    cells = [
        [empty if v is None else fmt.format(v) for v in row] for row in grid
    ]
    width = max(len(c) for row in cells for c in row)
    gutter = len(str(len(grid) - 1)) + 2
    lines = []
    if title:
        lines.append(title)
    for y in range(len(grid) - 1, -1, -1):
        row = "  ".join(c.rjust(width) for c in cells[y])
        lines.append(f"{f'y{y}':>{gutter}} |{row}")
    lines.append(f"{'':>{gutter}} +{'-' * (len(grid[0]) * (width + 2) - 2)}")
    xs = "  ".join(f"x{x}".rjust(width) for x in range(len(grid[0])))
    lines.append(f"{'':>{gutter}}  {xs}")
    return "\n".join(lines)
