"""Terminal reporting: ASCII charts and result tables.

The experiment modules print the raw series a paper figure plots; this
package renders them as charts directly in the terminal, so the figure
*shapes* (the actual reproduction targets) are visible without a plotting
stack.
"""

from repro.report.charts import (
    AsciiChart,
    render_comparison_table,
    render_heatmap,
    render_series,
)

__all__ = [
    "AsciiChart",
    "render_comparison_table",
    "render_heatmap",
    "render_series",
]
