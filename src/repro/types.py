"""Shared value types and enums for the fault-tolerant NoC reproduction.

These types are deliberately tiny and dependency-free: every subpackage of
:mod:`repro` imports from here, so this module must never import from any of
them.
"""

from __future__ import annotations

import enum


class Direction(enum.IntEnum):
    """Physical channel (port) directions of a mesh router.

    The integer values double as port indices everywhere in the simulator:
    input port arrays, output port arrays, crossbar rows/columns and the
    allocator request matrices are all indexed by ``Direction``.

    2D routers use the historical 5-port layout (NORTH..LOCAL); 3D routers
    grow to 7 ports by appending the vertical (TSV) channels ``UP``/``DOWN``
    *after* ``LOCAL``, so every 2D port array keeps its exact layout.
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    LOCAL = 4  # the PE-to-router channel
    UP = 5  # vertical TSV channel, +z
    DOWN = 6  # vertical TSV channel, -z

    @property
    def opposite(self) -> "Direction":
        """The direction a flit arrives *from* when sent *to* this one."""
        if self is Direction.LOCAL:
            return Direction.LOCAL
        return _OPPOSITE[self]

    @property
    def delta(self) -> "Coordinate":
        """Unit coordinate offset of one hop in this direction.

        The mesh uses (x, y[, z]) with x growing EAST, y growing NORTH and
        z growing UP.
        """
        return _DELTA[self]

    @property
    def axis(self) -> int:
        """The coordinate axis this direction moves along (LOCAL raises)."""
        return _AXIS[self]

    @property
    def sign(self) -> int:
        """+1 for the positive-axis direction (E/N/UP), -1 otherwise."""
        return _SIGN[self]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
}

_AXIS = {
    Direction.EAST: 0,
    Direction.WEST: 0,
    Direction.NORTH: 1,
    Direction.SOUTH: 1,
    Direction.UP: 2,
    Direction.DOWN: 2,
}

_SIGN = {
    Direction.EAST: 1,
    Direction.WEST: -1,
    Direction.NORTH: 1,
    Direction.SOUTH: -1,
    Direction.UP: 1,
    Direction.DOWN: -1,
}

#: positive/negative direction per axis, in axis order (x, y, z).
AXIS_DIRECTIONS = (
    (Direction.EAST, Direction.WEST),
    (Direction.NORTH, Direction.SOUTH),
    (Direction.UP, Direction.DOWN),
)


class Coordinate(tuple):
    """An (x, y[, z, ...]) position on the mesh.

    Historically a 2-tuple; now any length.  Still an ordinary tuple for
    unpacking and comparison, with elementwise ``+`` (shorter operands are
    zero-extended so 2D deltas compose with 3D positions).
    """

    __slots__ = ()

    def __new__(cls, *coords: int) -> "Coordinate":
        if len(coords) == 1 and isinstance(coords[0], (tuple, list)):
            coords = tuple(coords[0])
        return super().__new__(cls, coords)

    @property
    def x(self) -> int:
        return self[0]

    @property
    def y(self) -> int:
        return self[1]

    @property
    def z(self) -> int:
        return self[2] if len(self) > 2 else 0

    def __add__(self, other: object) -> "Coordinate":  # type: ignore[override]
        if not isinstance(other, tuple):
            return NotImplemented
        n = max(len(self), len(other))
        return Coordinate(
            *(
                (self[i] if i < len(self) else 0)
                + (other[i] if i < len(other) else 0)
                for i in range(n)
            )
        )

    __radd__ = __add__

    def manhattan_distance(self, other: "Coordinate") -> int:
        n = max(len(self), len(other))
        return sum(
            abs(
                (self[i] if i < len(self) else 0)
                - (other[i] if i < len(other) else 0)
            )
            for i in range(n)
        )

    def __repr__(self) -> str:
        return f"Coordinate{tuple(self)!r}"


_DELTA = {
    Direction.NORTH: Coordinate(0, 1),
    Direction.SOUTH: Coordinate(0, -1),
    Direction.EAST: Coordinate(1, 0),
    Direction.WEST: Coordinate(-1, 0),
    Direction.LOCAL: Coordinate(0, 0),
    Direction.UP: Coordinate(0, 0, 1),
    Direction.DOWN: Coordinate(0, 0, -1),
}


class FlitType(enum.IntEnum):
    """Flit classes of a wormhole packet.

    A packet is a HEAD flit, zero or more BODY flits, and a TAIL flit.
    Single-flit packets use HEAD_TAIL.
    """

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class Corruption(enum.IntEnum):
    """Symbolic corruption class carried by a flit.

    The hot simulation path tags flits with the *class* of corruption instead
    of flipping payload bits; the class is exactly what determines scheme
    behaviour (a SEC/DED code corrects SINGLE and detects-but-cannot-correct
    MULTI).  The real bit-level codec lives in :mod:`repro.coding` and is
    validated to produce these classes.
    """

    NONE = 0
    SINGLE = 1  # correctable by SEC/DED
    MULTI = 2  # detectable, not correctable


class RoutingAlgorithm(enum.Enum):
    """Routing algorithms supported by the simulator.

    * ``XY`` — dimension-ordered deterministic routing (the paper's "DT").
    * ``WEST_FIRST`` — minimal adaptive west-first turn-model routing (the
      paper's "AD").
    * ``FULLY_ADAPTIVE`` — minimal fully-adaptive routing with no escape
      channels; it can deadlock, which exercises the paper's deadlock
      recovery scheme.
    * ``SOURCE`` — routes are attached to packets by the injector; used to
      script deterministic scenarios (e.g. the Figure 10/11 deadlocks).
    * ``FT_TABLE`` — fault-aware table routing (up*/down* turn model over
      the surviving links), recomputed on every permanent-fault event; this
      is the routing that XY-configured networks fall back to when a
      permanent-fault schedule is present.
    """

    XY = "xy"
    WEST_FIRST = "west_first"
    FULLY_ADAPTIVE = "fully_adaptive"
    SOURCE = "source"
    FT_TABLE = "ft_table"


class LinkProtection(enum.Enum):
    """Link-error handling scheme (the Figure 5 comparison axis).

    * ``HBH`` — the paper's flit-based hop-by-hop retransmission scheme
      (Section 3.1): per-hop error check, NACK, 3-deep barrel-shift
      retransmission buffer replay.
    * ``E2E`` — end-to-end retransmission: errors are only checked at the
      destination NI; the whole packet is retransmitted from the source.
    * ``FEC`` — forward error correction only: single-bit errors are
      corrected in place at each hop; multi-bit header errors cause
      misrouting to a wrong destination, after which the packet is forwarded
      again from the wrong destination (extra traffic, as the paper
      describes); multi-bit payload errors are delivered corrupted.
    * ``NONE`` — no protection (fault-free runs / ablation).
    """

    HBH = "hbh"
    E2E = "e2e"
    FEC = "fec"
    NONE = "none"


class FaultSite(enum.Enum):
    """Places where the injector can introduce a single-event upset."""

    LINK = "link"  # flit corruption during link traversal
    ROUTING = "rt_logic"  # RT unit computes a wrong output port
    VC_ALLOC = "va_logic"  # VA grants a wrong/duplicate/invalid output VC
    SW_ALLOC = "sa_logic"  # SA misdirects/duplicates/multicasts a grant
    CROSSBAR = "crossbar"  # single-bit upset during crossbar traversal
    RETX_BUFFER = "retx_buffer"  # upset of a stored retransmission-buffer flit
    HANDSHAKE = "handshake"  # glitch on a handshake line (TMR-protected)


class VCState(enum.IntEnum):
    """Input virtual-channel pipeline state (Figure 2's atomic modules).

    IDLE -> ROUTING (RT stage) -> WAITING_VA (VA stage) -> ACTIVE (SA/ST per
    flit) -> IDLE when the tail leaves.
    """

    IDLE = 0
    ROUTING = 1
    WAITING_VA = 2
    ACTIVE = 3
