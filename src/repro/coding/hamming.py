"""Extended Hamming SEC/DED codec.

Single Error Correction / Double Error Detection is the code class the paper
assumes for flit protection: the error detection/correction unit of Figure 1
corrects any single-bit upset in place and *detects* (but cannot correct)
double-bit upsets, which is what triggers a retransmission in the hybrid
HBH scheme (Section 3).

The implementation is a textbook extended Hamming code over integers-as-bit-
vectors: ``r`` parity bits protect up to ``2**r - r - 1`` data bits, plus one
overall parity bit to tell single from double errors.

Codeword layout (1-indexed, positions 1..n):

* positions that are powers of two hold Hamming parity bits,
* position 0 (we store it as the extra top bit) holds the overall parity,
* all other positions hold data bits, LSB-first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class DecodeStatus(enum.Enum):
    """Outcome classes of a SEC/DED decode.

    These are exactly the symbolic :class:`repro.types.Corruption` classes
    the simulator's hot path uses: OK <-> NONE, CORRECTED <-> SINGLE,
    DETECTED <-> MULTI.
    """

    OK = "ok"  # no error
    CORRECTED = "corrected"  # single-bit error, corrected
    DETECTED = "detected"  # double-bit error, uncorrectable


@dataclass(frozen=True)
class DecodeResult:
    data: int
    status: DecodeStatus
    corrected_position: int = -1  # 1-indexed codeword position, -1 if none


class HammingSecDed:
    """Extended Hamming SEC/DED codec for ``data_bits``-wide words.

    >>> codec = HammingSecDed(8)
    >>> word = codec.encode(0b1011_0010)
    >>> codec.decode(word).status
    <DecodeStatus.OK: 'ok'>
    >>> codec.decode(word ^ (1 << 3)).status
    <DecodeStatus.CORRECTED: 'corrected'>
    >>> codec.decode(word ^ 0b101).status
    <DecodeStatus.DETECTED: 'detected'>
    """

    def __init__(self, data_bits: int):
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.parity_bits = self._required_parity_bits(data_bits)
        # Hamming codeword length excluding the overall parity bit.
        self.hamming_length = data_bits + self.parity_bits
        #: Total codeword width including the overall (DED) parity bit.
        self.codeword_bits = self.hamming_length + 1
        self._data_positions = self._compute_data_positions()

    @staticmethod
    def _required_parity_bits(data_bits: int) -> int:
        r = 0
        while (1 << r) - r - 1 < data_bits:
            r += 1
        return r

    def _compute_data_positions(self) -> List[int]:
        """1-indexed codeword positions that carry data bits."""
        positions = []
        pos = 1
        while len(positions) < self.data_bits:
            if pos & (pos - 1) != 0:  # not a power of two -> data position
                positions.append(pos)
            pos += 1
        return positions

    # -- encoding ---------------------------------------------------------

    def encode(self, data: int) -> int:
        """Encode ``data`` into an extended-Hamming codeword.

        The returned integer uses bit ``i-1`` for codeword position ``i``
        and the top bit (``hamming_length``) for the overall parity.
        """
        if data < 0 or data >> self.data_bits:
            raise ValueError(
                f"data {data:#x} does not fit in {self.data_bits} bits"
            )
        word = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                word |= 1 << (pos - 1)
        # Hamming parity bits: parity bit at position 2**j covers all
        # positions whose j-th index bit is set.
        for j in range(self.parity_bits):
            p = 1 << j
            parity = 0
            for pos in range(1, self.hamming_length + 1):
                if pos & p and pos != p:
                    parity ^= (word >> (pos - 1)) & 1
            if parity:
                word |= 1 << (p - 1)
        # Overall parity over the whole Hamming word (even parity).
        if self._parity_of(word):
            word |= 1 << self.hamming_length
        return word

    @staticmethod
    def _parity_of(value: int) -> int:
        return bin(value).count("1") & 1

    # -- decoding ---------------------------------------------------------

    def decode(self, codeword: int) -> DecodeResult:
        """Decode a codeword, correcting a single-bit error if present."""
        if codeword < 0 or codeword >> self.codeword_bits:
            raise ValueError(
                f"codeword {codeword:#x} does not fit in {self.codeword_bits} bits"
            )
        hamming = codeword & ((1 << self.hamming_length) - 1)
        overall = (codeword >> self.hamming_length) & 1

        syndrome = 0
        for j in range(self.parity_bits):
            p = 1 << j
            parity = 0
            for pos in range(1, self.hamming_length + 1):
                if pos & p:
                    parity ^= (hamming >> (pos - 1)) & 1
            if parity:
                syndrome |= p
        overall_mismatch = self._parity_of(hamming) != overall

        if syndrome == 0 and not overall_mismatch:
            return DecodeResult(self._extract(hamming), DecodeStatus.OK)
        if syndrome == 0 and overall_mismatch:
            # Error in the overall parity bit itself: data is intact.
            return DecodeResult(
                self._extract(hamming), DecodeStatus.CORRECTED, self.codeword_bits
            )
        if overall_mismatch:
            # Odd number of errors with a nonzero syndrome: single error.
            if syndrome <= self.hamming_length:
                hamming ^= 1 << (syndrome - 1)
                return DecodeResult(
                    self._extract(hamming), DecodeStatus.CORRECTED, syndrome
                )
            # Syndrome points outside the word: uncorrectable.
            return DecodeResult(self._extract(hamming), DecodeStatus.DETECTED)
        # Nonzero syndrome, overall parity consistent: double error.
        return DecodeResult(self._extract(hamming), DecodeStatus.DETECTED)

    def _extract(self, hamming: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (hamming >> (pos - 1)) & 1:
                data |= 1 << i
        return data

    # -- convenience ------------------------------------------------------

    def check(self, codeword: int) -> DecodeStatus:
        """Status-only decode (what the router's check unit computes)."""
        return self.decode(codeword).status

    def flip_bits(self, codeword: int, positions: Tuple[int, ...]) -> int:
        """Return ``codeword`` with the given 1-indexed bit positions flipped.

        Used by tests and by the network-interface payload path to model
        channel upsets on a real codeword.
        """
        for pos in positions:
            if not 1 <= pos <= self.codeword_bits:
                raise ValueError(
                    f"bit position {pos} outside codeword of {self.codeword_bits} bits"
                )
            codeword ^= 1 << (pos - 1)
        return codeword

    @property
    def overhead_bits(self) -> int:
        """Check bits added per data word (Hamming parity + overall parity)."""
        return self.codeword_bits - self.data_bits

    def __repr__(self) -> str:
        return (
            f"HammingSecDed(data_bits={self.data_bits}, "
            f"codeword_bits={self.codeword_bits})"
        )
