"""Parity bits and triple-modular-redundancy voting.

Section 4.6 of the paper protects the handful of inter-router handshaking
lines with Triple Module Redundancy: each signal is carried on three wires
and a majority voter masks any single upset.  :func:`tmr_vote` is that voter;
:class:`repro.noc.link.HandshakeChannel` uses it on every sample.
"""

from __future__ import annotations

from typing import Sequence


class ParityCode:
    """Single even/odd parity over ``data_bits``-wide words.

    Detects any odd number of bit errors; corrects nothing.  Used as the
    cheapest detection option in ablation experiments.
    """

    def __init__(self, data_bits: int, even: bool = True):
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.even = even

    def encode(self, data: int) -> int:
        """Append the parity bit above the data bits."""
        if data < 0 or data >> self.data_bits:
            raise ValueError(f"data {data:#x} does not fit in {self.data_bits} bits")
        parity = bin(data).count("1") & 1
        if not self.even:
            parity ^= 1
        return data | (parity << self.data_bits)

    def check(self, codeword: int) -> bool:
        """True if the codeword's parity is consistent."""
        if codeword < 0 or codeword >> (self.data_bits + 1):
            raise ValueError("codeword out of range")
        expected = 0 if self.even else 1
        return (bin(codeword).count("1") & 1) == expected

    def extract(self, codeword: int) -> int:
        return codeword & ((1 << self.data_bits) - 1)


def tmr_vote(samples: Sequence[bool]) -> bool:
    """Majority vote over three redundant signal samples.

    >>> tmr_vote([True, True, False])
    True
    >>> tmr_vote([False, True, False])
    False
    """
    if len(samples) != 3:
        raise ValueError("TMR requires exactly three samples")
    return sum(bool(s) for s in samples) >= 2
