"""Cross-validation of the symbolic corruption model against the real codec.

The simulator's hot path tags flits with a symbolic corruption *class*
(none / single / multi) instead of flipping payload bits — DESIGN.md's
documented substitution.  This module closes the loop: with
``SimulationConfig(payload_ecc_check=True)`` every flit carries a real
extended-Hamming codeword, every materialized upset flips real bits of it
(one for SINGLE, two for MULTI), and the destination NI decodes and checks
that the SEC/DED outcome class matches the symbolic tag:

====================  =======================
symbolic tag          expected decode status
====================  =======================
``Corruption.NONE``   OK
``Corruption.SINGLE`` CORRECTED
``Corruption.MULTI``  DETECTED
====================  =======================

Any mismatch increments the ``payload_ecc_mismatches`` counter; the
integration tests assert it stays at zero, which is the evidence that the
symbolic model and the bit-level code agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coding.hamming import DecodeStatus, HammingSecDed
from repro.types import Corruption

if TYPE_CHECKING:
    from repro.noc.flit import Flit

#: Expected decode class per symbolic tag.
EXPECTED_STATUS = {
    Corruption.NONE: DecodeStatus.OK,
    Corruption.SINGLE: DecodeStatus.CORRECTED,
    Corruption.MULTI: DecodeStatus.DETECTED,
}


class PayloadChecker:
    """Encodes, corrupts and verifies real flit payload codewords."""

    def __init__(self, data_bits: int = 32):
        self.codec = HammingSecDed(data_bits)
        self._data_mask = (1 << data_bits) - 1
        self.flits_encoded = 0
        self.flits_checked = 0
        self.mismatches = 0

    def encode_flit(self, flit: "Flit") -> None:
        """Replace the flit's payload with a codeword over a per-flit word.

        The data word is derived from the flit identity, so every flit in
        the network carries a distinct, reconstructible value.
        """
        data = ((flit.packet_id << 8) | (flit.seq & 0xFF)) & self._data_mask
        flit.payload = self.codec.encode(data)
        self.flits_encoded += 1

    def corrupt_payload(self, flit: "Flit", severity: Corruption) -> None:
        """Flip real codeword bits matching a materialized upset class.

        Must be called *before* the symbolic tag is applied to the flit:
        the flit's current tag tells how many bits are already flipped, so
        a second upset flips a *different* bit (two independent single-bit
        upsets compose into a real double error, mirroring
        :meth:`repro.noc.flit.Flit.corrupt`'s escalation).  Accumulation
        beyond two flipped bits is capped: SEC/DED is only specified to
        detect doubles, and triple upsets on one flit are negligible.
        """
        if severity is Corruption.NONE:
            return
        prior = flit.corruption
        if prior is Corruption.MULTI:
            return  # already at the modelled corruption ceiling
        if prior is Corruption.SINGLE:
            positions = (2,)  # bit 1 already flipped: this makes a double
        elif severity is Corruption.SINGLE:
            positions = (1,)
        else:
            positions = (1, 2)
        flit.payload = self.codec.flip_bits(flit.payload, positions)

    def verify_flit(self, flit: "Flit") -> bool:
        """Decode the payload; True if the outcome matches the symbolic tag.

        A SINGLE-tagged flit must also decode back to its original data
        word (the correction must actually work, not merely be claimed).
        """
        self.flits_checked += 1
        result = self.codec.decode(flit.payload)
        expected = EXPECTED_STATUS[flit.corruption]
        ok = result.status is expected
        if ok and result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED):
            original = ((flit.packet_id << 8) | (flit.seq & 0xFF)) & self._data_mask
            ok = result.data == original
        if not ok:
            self.mismatches += 1
        return ok
