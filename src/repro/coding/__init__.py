"""Error-control coding substrate.

Real bit-level implementations of the codes the paper's schemes rely on:

* :mod:`repro.coding.hamming` — extended Hamming SEC/DED (single error
  correction, double error detection), the workhorse of both the FEC baseline
  and the hybrid HBH scheme.
* :mod:`repro.coding.crc` — cyclic redundancy checks, used by the end-to-end
  scheme's destination check.
* :mod:`repro.coding.parity` — single parity bits and the TMR voter used for
  handshake lines (Section 4.6).
"""

from repro.coding.crc import CRC8_ATM, CRC16_CCITT, Crc
from repro.coding.hamming import DecodeStatus, HammingSecDed
from repro.coding.parity import ParityCode, tmr_vote

__all__ = [
    "Crc",
    "CRC8_ATM",
    "CRC16_CCITT",
    "DecodeStatus",
    "HammingSecDed",
    "ParityCode",
    "tmr_vote",
]
