"""Cyclic redundancy checks.

The end-to-end (E2E) baseline checks packet integrity only at the destination
network interface; a CRC over the whole packet payload is the standard way to
do that, so we provide a small table-driven CRC engine plus the two common
polynomial instances used in on-chip and ATM-style links.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Crc:
    """Table-driven CRC over byte streams.

    Parameters
    ----------
    width:
        CRC width in bits (8 or 16 here, any width up to 64 works).
    polynomial:
        Generator polynomial without the leading ``x**width`` term, MSB-first.
    initial:
        Initial register value.
    final_xor:
        Value XORed into the register at the end.
    """

    def __init__(
        self,
        width: int,
        polynomial: int,
        initial: int = 0,
        final_xor: int = 0,
    ):
        if width < 1 or width > 64:
            raise ValueError("CRC width must be in 1..64")
        self.width = width
        self.polynomial = polynomial
        self.initial = initial
        self.final_xor = final_xor
        self._mask = (1 << width) - 1
        self._top = 1 << (width - 1)
        self._table = self._build_table()

    def _build_table(self) -> Sequence[int]:
        table = []
        for byte in range(256):
            reg = byte << (self.width - 8) if self.width >= 8 else byte
            for _ in range(8):
                if reg & self._top:
                    reg = ((reg << 1) ^ self.polynomial) & self._mask
                else:
                    reg = (reg << 1) & self._mask
            table.append(reg)
        return tuple(table)

    def compute(self, data: Iterable[int]) -> int:
        """CRC of an iterable of byte values (each 0..255)."""
        reg = self.initial
        for byte in data:
            if not 0 <= byte <= 255:
                raise ValueError(f"byte value out of range: {byte}")
            if self.width >= 8:
                idx = ((reg >> (self.width - 8)) ^ byte) & 0xFF
                reg = ((reg << 8) ^ self._table[idx]) & self._mask
            else:
                for bit in range(7, -1, -1):
                    incoming = (byte >> bit) & 1
                    msb = (reg >> (self.width - 1)) & 1
                    reg = ((reg << 1) & self._mask)
                    if msb ^ incoming:
                        reg ^= self.polynomial
        return reg ^ self.final_xor

    def compute_int(self, value: int, num_bytes: int) -> int:
        """CRC of an integer serialized big-endian into ``num_bytes``."""
        if value < 0 or value >> (8 * num_bytes):
            raise ValueError(f"{value:#x} does not fit in {num_bytes} bytes")
        data = [(value >> (8 * i)) & 0xFF for i in range(num_bytes - 1, -1, -1)]
        return self.compute(data)

    def verify(self, data: Iterable[int], crc: int) -> bool:
        return self.compute(data) == crc

    def __repr__(self) -> str:
        return f"Crc(width={self.width}, polynomial={self.polynomial:#x})"


#: CRC-8/ATM (HEC), polynomial x^8 + x^2 + x + 1.
CRC8_ATM = Crc(8, 0x07)

#: CRC-16/CCITT-FALSE, polynomial x^16 + x^12 + x^5 + 1.
CRC16_CCITT = Crc(16, 0x1021, initial=0xFFFF)
