"""Input virtual-channel buffers (the paper's "transmission buffers").

Each input port of a router has one :class:`VCBuffer` per virtual channel.
These are plain FIFOs with credit-sized capacity; Section 3.2 calls them the
*normal transmission buffers* (``T_i`` in Eq. 1).

A ``rollback_queue`` sits logically in front of the FIFO: when an upstream
route-NACK returns already-sent flits to this router (Section 4.2), the
returned flits are *not* written back into the FIFO (in hardware they remain
in the retransmission-buffer slots and are muxed back via Figure 3's
"Transmitter Input" path); they are simply the next flits the pipeline sees.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.noc.flit import Flit


class VCBuffer:
    """FIFO flit buffer for one input virtual channel."""

    __slots__ = ("capacity", "_fifo", "rollback_queue")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._fifo: Deque[Flit] = deque()
        self.rollback_queue: Deque[Flit] = deque()

    # -- capacity / occupancy ------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Flits held in the credit-counted FIFO (excludes rollbacks)."""
        return len(self._fifo)

    @property
    def total_flits(self) -> int:
        return len(self._fifo) + len(self.rollback_queue)

    @property
    def is_empty(self) -> bool:
        return not self._fifo and not self.rollback_queue

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._fifo)

    # -- FIFO operations -------------------------------------------------

    def push(self, flit: Flit) -> None:
        if self.is_full:
            raise OverflowError(
                "VC buffer overflow: the sender violated credit flow control"
            )
        self._fifo.append(flit)

    def peek(self) -> Optional[Flit]:
        """The flit the pipeline operates on (rollbacks take precedence)."""
        if self.rollback_queue:
            return self.rollback_queue[0]
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Flit:
        """Remove the head flit.

        Returns whether the flit came from the credit-counted FIFO via
        :meth:`popped_from_fifo` semantics: callers that must release a
        credit should use :meth:`pop_with_origin` instead.
        """
        flit, _ = self.pop_with_origin()
        return flit

    def pop_with_origin(self) -> "tuple[Flit, bool]":
        """Pop the head flit; second element is True if it occupied a
        credit-counted FIFO slot (and a credit must be returned upstream)."""
        if self.rollback_queue:
            return self.rollback_queue.popleft(), False
        if not self._fifo:
            raise IndexError("pop from empty VC buffer")
        return self._fifo.popleft(), True

    def push_rollback(self, flits: Iterable[Flit]) -> None:
        """Prepend returned flits (oldest first) ahead of the FIFO."""
        returned = list(flits)
        for flit in reversed(returned):
            self.rollback_queue.appendleft(flit)

    def clear(self) -> int:
        """Drop everything (receiver-side flush after a header NACK)."""
        dropped = self.total_flits
        self._fifo.clear()
        self.rollback_queue.clear()
        return dropped

    def drop_cut_suffix(self) -> "List[Flit]":
        """Drop buffered flits after the last tail, in arrival order.

        Used when the feeding link dies: runs that end in a tail are
        complete packets and stay deliverable, while anything after the
        last tail is the prefix of a packet whose remaining flits can never
        arrive.  Returns the dropped flits (oldest first).
        """
        dropped: List[Flit] = []
        while self._fifo and not self._fifo[-1].is_tail:
            dropped.append(self._fifo.pop())
        if not self._fifo:
            while self.rollback_queue and not self.rollback_queue[-1].is_tail:
                dropped.append(self.rollback_queue.pop())
        dropped.reverse()
        return dropped

    def __len__(self) -> int:
        return self.total_flits

    def __iter__(self):
        yield from self.rollback_queue
        yield from self._fifo

    def __repr__(self) -> str:
        return (
            f"VCBuffer({self.occupancy}/{self.capacity}"
            + (f" +{len(self.rollback_queue)}rb" if self.rollback_queue else "")
            + ")"
        )
