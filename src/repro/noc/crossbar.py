"""The P x P crossbar.

Functionally the crossbar just moves each granted input's flit to its output
in one cycle.  What matters for fault tolerance (Section 4.4) is that a
transient fault *inside* the crossbar produces single-bit upsets on the flit
in flight — which the per-hop error detection/correction unit then handles —
rather than misdirecting whole flits (that is a switch-allocator failure
mode).

Corruption is reported per traversal rather than written into the flit: the
flit object doubles as the clean retransmission-buffer copy, and in hardware
the buffer is written from the transmitter register, not from the crossbar
wires.  Two flits driven onto the same output (an undetected SA duplicate
grant, possible only with the AC unit disabled) garble each other
electrically, so both traversals report multi-bit corruption.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.flit import Flit
from repro.types import Corruption


class Crossbar:
    """A P x P flit crossbar with a corruption hook."""

    __slots__ = ("num_ports", "traversals")

    def __init__(self, num_ports: int):
        if num_ports < 1:
            raise ValueError("crossbar needs at least one port")
        self.num_ports = num_ports
        self.traversals = 0

    def traverse(
        self,
        moves: List[Tuple[int, int, Flit]],
        corrupt_hook: Optional[Callable[[Flit], Optional[Corruption]]] = None,
    ) -> List[Tuple[int, Flit, Corruption]]:
        """Move flits from input ports to output ports.

        Parameters
        ----------
        moves:
            (input port, output port, flit) triples.  A correct switch
            allocation has at most one move per input and per output; a
            multicast fault repeats an input, a duplicate-grant fault
            repeats an output.
        corrupt_hook:
            Optional callable rolling a single-event upset for a flit in
            flight (returns the corruption class or None).

        Returns
        -------
        (output port, flit, corruption) per traversal, where ``corruption``
        combines collision garbling and hook-injected upsets.
        """
        fanin: Dict[int, int] = {}
        for in_port, out_port, _ in moves:
            if not 0 <= in_port < self.num_ports:
                raise ValueError(f"invalid crossbar input port {in_port}")
            if not 0 <= out_port < self.num_ports:
                raise ValueError(f"invalid crossbar output port {out_port}")
            fanin[out_port] = fanin.get(out_port, 0) + 1

        driven: List[Tuple[int, Flit, Corruption]] = []
        for _, out_port, flit in moves:
            self.traversals += 1
            corruption = Corruption.NONE
            if fanin[out_port] > 1:
                # Electrical collision: the output wires carry a mix of two
                # drivers; every involved flit is garbled.
                corruption = Corruption.MULTI
            if corrupt_hook is not None:
                upset = corrupt_hook(flit)
                if upset is not None and upset.value > corruption.value:
                    corruption = upset
            driven.append((out_port, flit, corruption))
        return driven
