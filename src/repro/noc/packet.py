"""Packets (messages) and destination-side reassembly.

The paper uses "message" and "packet" interchangeably: one message is one
packet of ``flits_per_packet`` flits (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.noc.flit import Flit
from repro.types import Corruption, Direction, FlitType


@dataclass
class Packet:
    """A message descriptor held by network interfaces.

    The source NI keeps one of these per injected packet; in the E2E scheme
    it doubles as the source retransmission copy.
    """

    packet_id: int
    src: int
    dst: int
    num_flits: int
    injection_cycle: int
    source_route: Optional[List[Direction]] = None
    payload: int = 0
    retransmissions: int = 0

    def make_flits(self, injection_cycle: Optional[int] = None) -> List[Flit]:
        """Materialize the packet's flits (used for each (re)transmission)."""
        cycle = self.injection_cycle if injection_cycle is None else injection_cycle
        flits = []
        for seq in range(self.num_flits):
            if self.num_flits == 1:
                ftype = FlitType.HEAD_TAIL
            elif seq == 0:
                ftype = FlitType.HEAD
            elif seq == self.num_flits - 1:
                ftype = FlitType.TAIL
            else:
                ftype = FlitType.BODY
            route = list(self.source_route) if self.source_route else None
            flits.append(
                Flit(
                    self.packet_id,
                    seq,
                    ftype,
                    self.src,
                    self.dst,
                    injection_cycle=cycle,
                    payload=self.payload,
                    source_route=route,
                )
            )
        return flits


@dataclass
class _Assembly:
    flits: Dict[int, Flit] = field(default_factory=dict)
    expected: Optional[int] = None


class PacketReassembler:
    """Collects arriving flits at a destination NI into whole packets.

    Completion is *tail-based*, as in real wormhole hardware: a packet is
    complete once its tail flit and every flit before it have arrived.
    (``num_flits`` is kept as an advisory hint only; keying completion on a
    configured length would silently strand packets shorter than the
    platform default.)
    """

    def __init__(self) -> None:
        self._pending: Dict[int, _Assembly] = {}

    def accept(self, flit: Flit, num_flits: Optional[int] = None) -> Optional[List[Flit]]:
        asm = self._pending.setdefault(flit.packet_id, _Assembly())
        asm.flits[flit.seq] = flit
        asm.expected = num_flits
        tail_seq = None
        for seq, held in asm.flits.items():
            if held.is_tail:
                tail_seq = seq
                break
        if tail_seq is not None and all(
            seq in asm.flits for seq in range(tail_seq + 1)
        ):
            del self._pending[flit.packet_id]
            return [asm.flits[i] for i in range(tail_seq + 1)]
        return None

    def drop(self, packet_id: int) -> int:
        """Discard a partially assembled packet; returns flits discarded."""
        asm = self._pending.pop(packet_id, None)
        return len(asm.flits) if asm else 0

    @property
    def incomplete_packets(self) -> int:
        return len(self._pending)

    @property
    def held_flits(self) -> int:
        """Flits sitting in partial assemblies (for conservation checks)."""
        return sum(len(asm.flits) for asm in self._pending.values())

    def incomplete_ids(self) -> List[int]:
        return list(self._pending)


def packet_is_corrupted(flits: List[Flit]) -> bool:
    """Destination-side integrity check (what a packet CRC would report)."""
    return any(f.corruption is not Corruption.NONE for f in flits)
