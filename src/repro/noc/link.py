"""Inter-router links and their reverse/control channels.

A link is unidirectional (each neighboring router pair has one in each
direction) and carries, with single-cycle latency each way by default
(Section 2.2; 3D TSV links may take longer — see ``Link.latency``):

* **forward**: one flit per cycle, tagged with its VC and the per-(link, VC)
  sequence number the HBH rollback protocol uses;
* **forward control**: deadlock probes and activation signals — the paper
  sends these as regular flits through the (empty) retransmission-buffer
  path of blocked routers, so they are never blocked;
* **reverse**: credits and NACKs.  These are the "handshaking signals" of
  Section 4.6, protected by TMR voting per sample.

Local links (NI <-> router) use the same machinery but are exempt from link
fault injection, like the paper's PE channel.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generic, List, Optional, Set, Tuple, TypeVar

from repro.coding.parity import tmr_vote
from repro.noc.flit import Flit
from repro.types import Corruption, Direction

T = TypeVar("T")

#: ``@dataclass(**_SLOTTED)`` for the per-transfer signal records — purely
#: an allocation optimization, so it degrades gracefully on Python 3.9
#: where the dataclass option does not exist yet.
_SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Shared empty result for the (dominant) no-delivery case; callers only
#: ever iterate the returned list, never mutate it.
_NOTHING_DUE: List = []


class DelayLine(Generic[T]):
    """A fixed-latency FIFO channel: items pushed at cycle ``t`` become
    visible to :meth:`pop_due` at cycle ``t + latency``."""

    __slots__ = ("latency", "_queue")

    def __init__(self, latency: int = 1):
        if latency < 1:
            raise ValueError("channel latency must be at least one cycle")
        self.latency = latency
        self._queue: Deque[Tuple[int, T]] = deque()

    def push(self, cycle: int, item: T) -> None:
        self._queue.append((cycle + self.latency, item))

    def pop_due(self, cycle: int) -> List[T]:
        queue = self._queue
        if not queue or queue[0][0] > cycle:
            return _NOTHING_DUE
        due = []
        while queue and queue[0][0] <= cycle:
            due.append(queue.popleft()[1])
        return due

    def peek_pending(self) -> List[T]:
        """All in-flight items (used by drain checks and tests)."""
        return [item for _, item in self._queue]

    def clear(self) -> int:
        """Discard all in-flight items, returning how many were dropped."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._queue)


@dataclass(**_SLOTTED)
class CreditSignal:
    """One buffer slot freed at the downstream input VC."""

    vc: int


@dataclass(**_SLOTTED)
class NackSignal:
    """Negative acknowledgement naming the expected sequence number.

    ``kind`` distinguishes the two NACK flavours the paper uses:

    * ``"link"`` — a corrupted flit: roll back and retransmit on the same
      route (Section 3.1);
    * ``"route"`` — a misrouted header detected by the receiver
      (Section 4.2): roll back, *recompute the route*, then retransmit.
    """

    vc: int
    seq: int
    kind: str = "link"


@dataclass(**_SLOTTED)
class ProbeSignal:
    """Deadlock probe / activation signal (Section 3.2.2).

    ``target_vc`` is the VC index of the suspected buffer at the *receiving*
    router's input port for this link; ``kind`` is ``"probe"`` or
    ``"activation"``; ``origin`` identifies the Rule-1 sender.
    """

    origin: int
    target_vc: int
    kind: str = "probe"
    hops: int = 0
    path: List[int] = field(default_factory=list)


@dataclass(**_SLOTTED)
class FlitTransfer:
    """A flit in flight on a link.

    ``corruption`` is the upset suffered *in transit* (crossbar and/or link);
    it lives on the transfer rather than the flit so that the clean copy in
    the sender's retransmission buffer is genuinely clean — in hardware the
    buffer is written from the transmitter's register, not from the wire.
    The receiver's check unit applies or discharges it on arrival.
    """

    vc: int
    seq: int
    flit: Flit
    corruption: Corruption = Corruption.NONE


class Link:
    """One direction of a channel between two routers (or a router and NI).

    The network's activity-driven scheduler wires each link to two *wake
    sets* via :meth:`wire_wakes`: sending anything on the forward channels
    (flits, probes) registers the consumer of the link's forward traffic for
    processing next cycle, and sending on the reverse channels (credits,
    NACKs) registers the consumer of its reverse traffic.  On a 1-cycle
    link (the historical case, and every planar link) a wake registered at
    push time lands on precisely the cycle the item becomes due, so
    nothing is ever consumed early or left lingering.  Slower links (the
    3D TSV channels) instead append the wake to the scheduler's shared
    *deferred-wake* map under the item's due cycle; the network applies
    that bucket at the top of the due cycle's step, restoring the same
    push-time-equals-due-time property.  Standalone links (unit tests)
    leave the wake sets unwired and behave exactly as before.
    """

    __slots__ = (
        "src_node",
        "src_port",
        "dst_node",
        "dst_port",
        "is_local",
        "latency",
        "flits",
        "credits",
        "nacks",
        "control",
        "flit_traversals",
        "dead",
        "_fwd_wake_set",
        "_fwd_wake_node",
        "_rev_wake_set",
        "_rev_wake_node",
        "_deferred_wakes",
    )

    def __init__(
        self,
        src_node: int,
        src_port: Direction,
        dst_node: int,
        dst_port: Direction,
        is_local: bool = False,
        latency: int = 1,
    ):
        if latency < 1:
            raise ValueError("link latency must be at least one cycle")
        self.src_node = src_node
        self.src_port = src_port
        self.dst_node = dst_node
        self.dst_port = dst_port
        self.is_local = is_local
        #: Cycles a signal spends on the wire, both directions (TSVs > 1).
        self.latency = latency
        self.flits: DelayLine[FlitTransfer] = DelayLine(latency)
        self.credits: DelayLine[CreditSignal] = DelayLine(latency)
        self.nacks: DelayLine[NackSignal] = DelayLine(latency)
        self.control: DelayLine[ProbeSignal] = DelayLine(latency)
        #: Flits sent over the link's lifetime (for utilization/energy).
        self.flit_traversals = 0
        #: Permanently failed: all channels silently drop (see :meth:`kill`).
        self.dead = False
        self._fwd_wake_set: Optional[Set[int]] = None
        self._fwd_wake_node = -1
        self._rev_wake_set: Optional[Set[int]] = None
        self._rev_wake_node = -1
        self._deferred_wakes: Optional[Dict[int, List[Tuple[Set[int], int]]]] = None

    def wire_wakes(
        self,
        fwd_set: Optional[Set[int]],
        fwd_node: int,
        rev_set: Optional[Set[int]],
        rev_node: int,
        deferred: Optional[Dict[int, List[Tuple[Set[int], int]]]] = None,
    ) -> None:
        """Attach the scheduler's wake sets (see class docstring).

        ``deferred`` is the network's shared due-cycle -> wake-entry map;
        it is required (and only consulted) when ``latency > 1``.
        """
        self._fwd_wake_set = fwd_set
        self._fwd_wake_node = fwd_node
        self._rev_wake_set = rev_set
        self._rev_wake_node = rev_node
        self._deferred_wakes = deferred

    def _defer_wake(self, cycle: int, wake: Set[int], node: int) -> None:
        """Register ``node`` for the cycle a signal pushed now becomes due
        (slow links only — 1-cycle links add to the wake set directly)."""
        deferred = self._deferred_wakes
        assert deferred is not None, "slow link wired without a deferred map"
        deferred.setdefault(cycle + self.latency, []).append((wake, node))

    # -- forward ----------------------------------------------------------

    def send_flit(
        self,
        cycle: int,
        vc: int,
        seq: int,
        flit: Flit,
        corruption: Corruption = Corruption.NONE,
    ) -> None:
        if self.dead:
            return
        flit.link_seq = seq
        self.flits.push(cycle, FlitTransfer(vc, seq, flit, corruption))
        self.flit_traversals += 1
        wake = self._fwd_wake_set
        if wake is not None:
            if self.latency == 1:
                wake.add(self._fwd_wake_node)
            else:
                self._defer_wake(cycle, wake, self._fwd_wake_node)

    def flit_arrivals(self, cycle: int) -> List[FlitTransfer]:
        return self.flits.pop_due(cycle)

    def send_probe(self, cycle: int, probe: ProbeSignal) -> None:
        if self.dead:
            return
        self.control.push(cycle, probe)
        wake = self._fwd_wake_set
        if wake is not None:
            if self.latency == 1:
                wake.add(self._fwd_wake_node)
            else:
                self._defer_wake(cycle, wake, self._fwd_wake_node)

    def probe_arrivals(self, cycle: int) -> List[ProbeSignal]:
        return self.control.pop_due(cycle)

    # -- reverse ----------------------------------------------------------

    def send_credit(self, cycle: int, vc: int) -> None:
        if self.dead:
            return
        self.credits.push(cycle, CreditSignal(vc))
        wake = self._rev_wake_set
        if wake is not None:
            if self.latency == 1:
                wake.add(self._rev_wake_node)
            else:
                self._defer_wake(cycle, wake, self._rev_wake_node)

    def credit_arrivals(self, cycle: int) -> List[CreditSignal]:
        return self.credits.pop_due(cycle)

    def send_nack(self, cycle: int, nack: NackSignal) -> None:
        if self.dead:
            return
        self.nacks.push(cycle, nack)
        wake = self._rev_wake_set
        if wake is not None:
            if self.latency == 1:
                wake.add(self._rev_wake_node)
            else:
                self._defer_wake(cycle, wake, self._rev_wake_node)

    def nack_arrivals(self, cycle: int) -> List[NackSignal]:
        return self.nacks.pop_due(cycle)

    def kill(self) -> int:
        """Permanently fail the link.

        All four channels are flushed (a hard open drops whatever was on
        the wire) and every later send becomes a silent no-op — the flit is
        never delivered and never wakes the consumer.  Returns the number
        of *forward flits* that were in flight and lost, so the caller can
        account them (reverse-channel signals vanish without accounting:
        the dead link's flow-control state is torn down anyway).
        """
        self.dead = True
        lost_flits = self.flits.clear()
        self.credits.clear()
        self.nacks.clear()
        self.control.clear()
        return lost_flits

    @property
    def telemetry_id(self) -> str:
        """Stable component key for time-series (``"<src>:<dir>"``)."""
        return f"{self.src_node}:{self.src_port.name.lower()}"

    @property
    def is_idle(self) -> bool:
        return (
            len(self.flits) == 0
            and len(self.credits) == 0
            and len(self.nacks) == 0
            and len(self.control) == 0
        )

    def __repr__(self) -> str:
        kind = "local" if self.is_local else "mesh"
        return (
            f"Link({kind} {self.src_node}.{self.src_port.name} -> "
            f"{self.dst_node}.{self.dst_port.name})"
        )


class HandshakeChannel:
    """TMR-protected handshake line sampling (Section 4.6).

    Every reverse-channel signal sample passes through here.  With TMR on, a
    single glitched line is outvoted by the two clean copies, so the signal
    survives; with TMR off (ablation) a glitch destroys the sample — a lost
    credit leaks a buffer slot, a lost NACK delays error recovery until the
    receiver re-NACKs.
    """

    def __init__(self, tmr_enabled: bool = True):
        self.tmr_enabled = tmr_enabled
        self.glitches_masked = 0
        self.signals_lost = 0

    def sample(self, signal_present: bool, glitch: bool) -> bool:
        """Deliver one signal sample through the (possibly glitched) lines.

        Returns whether the signal is seen at the receiver.
        """
        if not glitch:
            return signal_present
        if self.tmr_enabled:
            # One line flips; the other two carry the true value.
            voted = tmr_vote([not signal_present, signal_present, signal_present])
            assert voted == signal_present
            self.glitches_masked += 1
            return voted
        if signal_present:
            self.signals_lost += 1
            return False
        # A glitch on an idle line would fabricate a spurious signal; the
        # receiver-side sequence filter makes spurious NACKs/credits benign,
        # and we account them as lost-sample events as well.
        self.signals_lost += 1
        return False
