"""Arbiters used by the VC and switch allocators.

Two classic hardware arbiters:

* :class:`RoundRobinArbiter` — rotating-priority, strongly fair: after a
  grant the winner becomes lowest priority.
* :class:`MatrixArbiter` — least-recently-served via a pairwise-priority
  matrix; also strongly fair and commonly used in NoC switch allocators.

Both are deterministic given their internal state, which makes allocation
outcomes reproducible across runs with the same seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter needs at least one requester")
        self.size = size
        self._next = 0  # highest-priority index

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted requests, or None if there are none."""
        if len(requests) != self.size:
            raise ValueError(f"expected {self.size} request lines, got {len(requests)}")
        for offset in range(self.size):
            idx = (self._next + offset) % self.size
            if requests[idx]:
                self._next = (idx + 1) % self.size
                return idx
        return None

    def reset(self) -> None:
        self._next = 0


class MatrixArbiter:
    """Least-recently-served arbiter.

    ``_prio[i][j]`` is True when requester ``i`` beats requester ``j``.
    A winner loses priority against everyone (its row is cleared, its
    column is set), which yields least-recently-served fairness.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter needs at least one requester")
        self.size = size
        # Upper triangle True: initial priority order 0 > 1 > ... > size-1.
        self._prio: List[List[bool]] = [
            [i < j for j in range(size)] for i in range(size)
        ]

    def arbitrate(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.size:
            raise ValueError(f"expected {self.size} request lines, got {len(requests)}")
        winner = None
        for i in range(self.size):
            if not requests[i]:
                continue
            beats_all = all(
                not requests[j] or self._prio[i][j]
                for j in range(self.size)
                if j != i
            )
            if beats_all:
                winner = i
                break
        if winner is not None:
            for j in range(self.size):
                if j != winner:
                    self._prio[winner][j] = False
                    self._prio[j][winner] = True
        return winner

    def reset(self) -> None:
        self._prio = [[i < j for j in range(self.size)] for i in range(self.size)]
