"""The pipelined virtual-channel wormhole router (Figures 1 and 2).

Each cycle a router runs two phases, driven by the network:

* :meth:`Router.receive` — consume everything the links delivered this
  cycle: credits, NACKs (link NACKs roll the output channel back onto its
  replay queue; route NACKs additionally return the flits to the input
  pipeline for re-routing), deadlock probes/activations, and flit arrivals
  (per-hop error check, sequence filter, buffer write).
* :meth:`Router.compute` — the pipeline: output stage (replay/absorption
  drains have link priority), deadlock Rule-1 probing, RT stage (with the
  Section 4.2 misroute detection), VA stage, and the combined SA/ST stage
  (speculative for the 3-stage configuration, per Section 2.1).

Fault injection happens where the corresponding hardware operates: the RT
fault perturbs the candidate set, VA/SA faults perturb grants, crossbar and
link upsets ride on the transfer record.  Detection uses only
architecturally visible state (the AC unit's three comparisons, the VA
state table's knowledge of blocked/edge ports, XY turn legality, the ECC
outcome class) — never the injector's ground truth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import NoCConfig
from repro.core.allocation_comparator import AllocationComparator
from repro.core.deadlock import DeadlockController, ProbeAction
from repro.core.retransmission import OutputChannel
from repro.faults.injector import FaultInjector
from repro.noc.allocators import SwitchAllocator, VCAllocator
from repro.noc.buffers import VCBuffer
from repro.noc.crossbar import Crossbar
from repro.noc.flit import Flit
from repro.noc.link import HandshakeChannel, Link, NackSignal, ProbeSignal
from repro.noc.routing import (
    RoutingFunction,
    SourceRouting,
    xy_arrival_is_legal,
)
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsCollector
from repro.types import (
    Corruption,
    Direction,
    LinkProtection,
    RoutingAlgorithm,
    VCState,
)

#: Effectively infinite credit for the ejection (LOCAL output) channels:
#: the NI sinks flits immediately.
EJECTION_CREDITS = 1 << 30


class InputVC:
    """State of one input virtual channel."""

    __slots__ = (
        "port",
        "vc",
        "buffer",
        "state",
        "candidates",
        "out_port",
        "out_vc",
        "expected_seq",
        "nack_retries",
        "blocked_cycles",
        "rt_cycle",
        "va_cycle",
        "sent_this_cycle",
        "dead",
        "drain_until_head",
        "last_head_packet_id",
    )

    def __init__(self, port: int, vc: int, depth: int):
        self.port = port
        self.vc = vc
        self.buffer = VCBuffer(depth)
        self.state = VCState.IDLE
        self.candidates: Optional[List[int]] = None
        self.out_port = -1
        self.out_vc = -1
        self.expected_seq = 0
        self.nack_retries = 0
        self.blocked_cycles = 0
        self.rt_cycle = -1
        self.va_cycle = -1
        self.sent_this_cycle = False
        #: Permanently failed buffer: arrivals vanish (no credit, no NACK).
        self.dead = False
        #: An unroutable packet was torn down here: discard its remaining
        #: in-flight flits until the next header arrives (see
        #: ``Router._drop_unroutable``).
        self.drain_until_head = False
        #: Packet id of the last accepted header — lets teardown register a
        #: casualty even when every buffered flit was already forwarded.
        self.last_head_packet_id = -1

    def reset_pipeline(self) -> None:
        self.state = VCState.IDLE
        self.candidates = None
        self.out_port = -1
        self.out_vc = -1
        self.rt_cycle = -1
        self.va_cycle = -1

    @property
    def key(self) -> Tuple[int, int]:
        return (self.port, self.vc)


class Router:
    """One node's router plus its fault-tolerance machinery."""

    def __init__(
        self,
        node: int,
        config: NoCConfig,
        topology: MeshTopology,
        routing_fn: RoutingFunction,
        injector: FaultInjector,
        stats: StatsCollector,
        payload_checker=None,
    ):
        self.node = node
        self.config = config
        self.topology = topology
        self.routing_fn = routing_fn
        self.injector = injector
        self.stats = stats
        #: Optional bit-level cross-validation hook
        #: (:class:`repro.coding.payload_check.PayloadChecker`).
        self.payload_checker = payload_checker
        #: Telemetry bus (``repro.telemetry``), wired by the Network when
        #: telemetry is enabled; every publish site guards on None.
        self.telemetry = None
        P = config.num_ports
        V = config.num_vcs

        self.inputs: List[List[InputVC]] = [
            [InputVC(p, v, config.vc_buffer_depth) for v in range(V)] for p in range(P)
        ]
        self.outputs: List[List[OutputChannel]] = [
            [
                OutputChannel(
                    p, v, config.retx_buffer_depth, config.duplicate_retx_buffers
                )
                for v in range(V)
            ]
            for p in range(P)
        ]
        #: in_links[p] delivers flits *to* this router's port p; out_links[p]
        #: carries flits away.  Wired by the Network; None on mesh edges.
        self.in_links: List[Optional[Link]] = [None] * P
        self.out_links: List[Optional[Link]] = [None] * P

        self.va = VCAllocator(P, V)
        self.sa = SwitchAllocator(P, V)
        self.crossbar = Crossbar(P)
        self.ac = (
            AllocationComparator(P, V) if config.ac_unit_enabled else None
        )
        self.handshake = HandshakeChannel(tmr_enabled=config.handshake_tmr)
        self.deadlock: Optional[DeadlockController] = (
            DeadlockController(node, config.deadlock_threshold)
            if config.deadlock_recovery_enabled
            else None
        )

        #: Output ports that physically exist here (have a link) plus LOCAL.
        self.valid_out_ports: Set[int] = {int(Direction.LOCAL)}
        # Ejection channels sink into the NI.
        for channel in self.outputs[Direction.LOCAL]:
            channel.credits = EJECTION_CREDITS

        # Pipeline gating (see module docstring of repro.config):
        stages = config.pipeline_stages
        self._va_delay = 1 if stages >= 3 else 0
        self._sa_delay = 1 if stages == 4 else 0
        self._is_hbh = config.link_protection is LinkProtection.HBH
        self._is_port_aware = getattr(routing_fn, "port_aware", False)
        # The Section 4.2 receiver-side XY turn check only applies when the
        # network really runs plain XY — under fault-aware table routing
        # (substituted when permanent faults are scheduled) legal paths may
        # violate XY minimality, so the check must stand down.
        self._is_xy = (
            config.routing is RoutingAlgorithm.XY and not self._is_port_aware
        )
        self._is_source_routed = isinstance(routing_fn, SourceRouting)
        self._probe_hop_limit = 4 * topology.num_nodes
        #: Permanently failed (the whole router died); receive/compute are
        #: no-ops so both cycle loops skip it identically.
        self.dead = False
        #: Called with a packet id when a permanent fault destroys one of
        #: its flits; wired by the Network to ``note_packet_casualty``.
        self.casualty_hook: Optional[Callable[[int], None]] = None
        #: Cached routing decisions: ``dst -> (Direction list, port-index
        #: list)``, keyed ``(in_port, dst)`` for port-aware functions.  Only
        #: for routing functions whose candidate set is a pure function of
        #: the key — see ``RoutingFunction.cacheable``.  The cached lists
        #: are never mutated (every consumer rebinds or builds a fresh
        #: list), so sharing them across calls is safe.
        self._route_cache: Optional[Dict[object, Tuple[List[Direction], List[int]]]] = (
            {} if getattr(routing_fn, "cacheable", False) else None
        )

    # ------------------------------------------------------------------
    # wiring (called by the Network)
    # ------------------------------------------------------------------

    def attach_output_link(self, port: int, link: Link) -> None:
        self.out_links[port] = link
        if port != Direction.LOCAL:
            self.valid_out_ports.add(port)
        for channel in self.outputs[port]:
            if port != Direction.LOCAL:
                channel.credits = self.config.vc_buffer_depth

    def attach_input_link(self, port: int, link: Link) -> None:
        self.in_links[port] = link

    # ------------------------------------------------------------------
    # phase 1: receive
    # ------------------------------------------------------------------

    def receive(self, cycle: int) -> None:
        if self.dead:
            return
        self._receive_reverse_signals(cycle)
        self._receive_probes(cycle)
        self._receive_flits(cycle)

    def _receive_reverse_signals(self, cycle: int) -> None:
        check_glitch = not self.injector.is_fault_free
        for port, link in enumerate(self.out_links):
            if link is None:
                continue
            for credit in link.credit_arrivals(cycle):
                if check_glitch and not self.handshake.sample(
                    True, self.injector.handshake_glitch(cycle, self.node)
                ):
                    continue  # lost credit (TMR disabled and glitched)
                self.outputs[port][credit.vc].credits += 1
            for nack in link.nack_arrivals(cycle):
                if check_glitch and not self.handshake.sample(
                    True, self.injector.handshake_glitch(cycle, self.node)
                ):
                    continue
                self._handle_nack(cycle, port, nack)

    def _handle_nack(self, cycle: int, port: int, nack: NackSignal) -> None:
        channel = self.outputs[port][nack.vc]
        if nack.kind == "link":
            added = channel.rollback(nack.seq)
            if added:
                self.stats.count("retransmission_rounds")
                self.stats.count("link_errors_corrected")
                self.stats.count("flits_retransmitted", added)
                if self.telemetry is not None:
                    self.telemetry.publish(
                        cycle,
                        "flit_replay",
                        self.node,
                        kind="link",
                        port=port,
                        vc=nack.vc,
                        flits=added,
                    )
        elif nack.kind == "route":
            # Replay copies at the rolled-back sequences are about to be
            # discarded as stale; the conservation invariant needs the tally.
            stale = sum(1 for s, _ in channel.replay_queue if s >= nack.seq)
            if stale:
                self.stats.count("stale_replay_flits_discarded", stale)
            flits = channel.extract_rollback_flits(nack.seq)
            if not flits:
                return
            channel.next_seq = nack.seq
            channel.credits += len(flits)
            owner = channel.allocated_to or channel.last_owner
            channel.release()
            self.stats.count("route_nack_rollbacks")
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle,
                    "flit_replay",
                    self.node,
                    kind="route",
                    port=port,
                    vc=nack.vc,
                    flits=len(flits),
                )
            # Flit-granular tally (the rollback counter above is per event):
            # these flits re-enter the input pipeline from the uncounted
            # retransmission-buffer storage, so conservation needs the count.
            self.stats.count("route_nack_flits_restored", len(flits))
            if owner is None:
                self.stats.count("route_nack_orphans")
                return
            ivc = self.inputs[owner[0]][owner[1]]
            ivc.buffer.push_rollback(flits)
            ivc.reset_pipeline()
        else:
            raise ValueError(f"unknown NACK kind {nack.kind!r}")

    def _receive_probes(self, cycle: int) -> None:
        if self.deadlock is None:
            return
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            for probe in link.probe_arrivals(cycle):
                self._handle_probe(cycle, port, probe)

    def _resolve_probe_route(self, ivc: InputVC) -> Optional[Tuple[int, int]]:
        """Where a probe inspecting ``ivc`` continues (Rule 2's "modifying
        the VC identifier accordingly").

        An ACTIVE VC's packet waits for credits on its own output VC: the
        probe follows that channel.  A WAITING_VA head waits for a virtual
        channel *held by another wormhole through this router*: the probe
        follows the holder's channel — that wormhole's tail is what must
        advance before the head can allocate.
        """
        if ivc.state is VCState.ACTIVE:
            route: Optional[Tuple[int, int]] = (ivc.out_port, ivc.out_vc)
        elif ivc.state is VCState.WAITING_VA and ivc.candidates:
            route = None
            for port in ivc.candidates:
                for channel in self.outputs[port]:
                    owner = channel.allocated_to
                    if owner is None:
                        continue
                    holder = self.inputs[owner[0]][owner[1]]
                    if holder.state is VCState.ACTIVE:
                        route = (holder.out_port, holder.out_vc)
                        break
                if route is not None:
                    break
        else:
            route = None
        if route is not None and (
            route[0] == int(Direction.LOCAL) or self.out_links[route[0]] is None
        ):
            return None  # ejection never deadlocks; edges have no link
        return route

    def _handle_probe(self, cycle: int, port: int, probe: ProbeSignal) -> None:
        assert self.deadlock is not None
        if probe.hops >= self._probe_hop_limit:
            self.stats.count("probes_hop_limited")
            return
        if not 0 <= probe.target_vc < self.config.num_vcs:
            return
        ivc = self.inputs[port][probe.target_vc]
        blocked = not ivc.buffer.is_empty and ivc.blocked_cycles >= 1
        route = self._resolve_probe_route(ivc) if blocked else None
        if route is None:
            blocked = False

        if probe.kind == "probe":
            decision = self.deadlock.on_probe(cycle, probe.origin, blocked, route)
            if decision.action is ProbeAction.FORWARD:
                self._forward_signal(
                    cycle, probe.origin, "probe", decision.out_port, decision.out_vc, probe.hops + 1
                )
            elif decision.action is ProbeAction.DEADLOCK_DETECTED:
                self.stats.count("deadlocks_detected")
                # Send the activation around the same blocked chain.
                if route is not None:
                    self._forward_signal(
                        cycle, self.node, "activation", route[0], route[1], 0
                    )
                else:
                    # The chain resolved meanwhile; no recovery needed.
                    self.stats.count("deadlocks_resolved_before_recovery")
        elif probe.kind == "activation":
            decision = self.deadlock.on_activation(cycle, probe.origin, route)
            if decision.action is ProbeAction.ENTER_RECOVERY:
                self.stats.count("recovery_activations")
                if decision.forward_out_port is not None:
                    self._forward_signal(
                        cycle,
                        probe.origin,
                        "activation",
                        decision.forward_out_port,
                        decision.forward_out_vc,
                        probe.hops + 1,
                    )

    def _forward_signal(
        self, cycle: int, origin: int, kind: str, out_port: int, out_vc: int, hops: int
    ) -> None:
        link = self.out_links[out_port]
        if link is None:
            return
        link.send_probe(cycle, ProbeSignal(origin, out_vc, kind, hops))
        self.stats.energy_event("probe")

    def _receive_flits(self, cycle: int) -> None:
        for port, link in enumerate(self.in_links):
            if link is None:
                continue
            for transfer in link.flit_arrivals(cycle):
                self._accept_transfer(cycle, port, link, transfer)

    def _accept_transfer(self, cycle: int, port: int, link: Link, transfer) -> None:
        ivc = self.inputs[port][transfer.vc]
        flit: Flit = transfer.flit
        corruption: Corruption = transfer.corruption

        if ivc.dead:
            # Arrivals into a permanently failed buffer vanish: no credit
            # (the upstream channel is torn down with it) and no NACK.
            self.stats.count("permanent_fault_flits_dropped")
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle,
                    "flit_drop",
                    self.node,
                    reason="dead_vc",
                    packet=flit.packet_id,
                )
            if self.casualty_hook is not None:
                self.casualty_hook(flit.packet_id)
            return

        if ivc.drain_until_head and not flit.is_head:
            # Straggler flits of a packet torn down by a permanent fault:
            # consume them (advancing the sequence window) and hand the
            # buffer slot straight back — they never occupy it.  Headers
            # fall through to normal processing; the drain flag only clears
            # once one is actually accepted, so a corrupt header that gets
            # NACKed and replayed is still handled correctly.
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle,
                    "flit_drop",
                    self.node,
                    reason="drain",
                    packet=flit.packet_id,
                )
            if transfer.seq == ivc.expected_seq:
                ivc.expected_seq += 1
                ivc.nack_retries = 0
                self.stats.count("permanent_fault_flits_dropped")
                if not link.dead:
                    link.send_credit(cycle, transfer.vc)
            else:
                self.stats.count("flits_dropped")
            return

        if self._is_hbh:
            if corruption is Corruption.SINGLE:
                # The SEC stage corrects single-bit upsets in place.
                corruption = Corruption.NONE
                self.stats.count("fec_corrections")
            if corruption is Corruption.MULTI:
                if transfer.seq == ivc.expected_seq:
                    ivc.nack_retries += 1
                    if ivc.nack_retries <= self.config.max_nack_retries:
                        link.send_nack(
                            cycle, NackSignal(transfer.vc, ivc.expected_seq, "link")
                        )
                        self.stats.energy_event("nack")
                        self.stats.count("flits_dropped")
                        if self.telemetry is not None:
                            self.telemetry.publish(
                                cycle,
                                "nack",
                                self.node,
                                kind="link",
                                port=port,
                                vc=transfer.vc,
                                seq=ivc.expected_seq,
                                retry=ivc.nack_retries,
                            )
                        return
                    # Endless-retransmission escape (Section 4.5): accept
                    # the corrupt copy rather than loop forever.
                    self.stats.count("retransmission_giveups")
                    if self.telemetry is not None:
                        self.telemetry.publish(
                            cycle,
                            "retransmission_giveup",
                            self.node,
                            port=port,
                            vc=transfer.vc,
                            packet=flit.packet_id,
                        )
                    flit = self._materialize_corruption(flit, corruption)
                else:
                    self.stats.count("flits_dropped")
                    if self.telemetry is not None:
                        self.telemetry.publish(
                            cycle,
                            "flit_drop",
                            self.node,
                            reason="out_of_window",
                            packet=flit.packet_id,
                        )
                    return
        elif corruption is not Corruption.NONE:
            # Unchecked schemes: the upset lands in the flit's fields.
            flit = self._materialize_corruption(flit, corruption)

        if transfer.seq != ivc.expected_seq:
            # Out-of-window arrival (in-flight flit overtaken by a NACK, a
            # stray copy from an undetected SA fault, ...): silently dropped,
            # exactly what the sequence check in the receive logic does.
            self.stats.count("flits_dropped")
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle,
                    "flit_drop",
                    self.node,
                    reason="out_of_window",
                    packet=flit.packet_id,
                )
            return
        ivc.expected_seq += 1
        ivc.nack_retries = 0
        ivc.buffer.push(flit)
        if flit.is_head:
            ivc.last_head_packet_id = flit.packet_id
            ivc.drain_until_head = False
        self.stats.energy_event("buffer_write")

    def _materialize_corruption(self, flit: Flit, severity: Corruption) -> Flit:
        """Land an in-transit upset in the flit's fields (header-aware)."""
        from repro.core.schemes import HeaderField, apply_header_upset, pick_header_field

        if flit.is_head:
            field = pick_header_field(self.injector.rng)
            if field is HeaderField.PAYLOAD and self.payload_checker is not None:
                self.payload_checker.corrupt_payload(flit, severity)
            apply_header_upset(
                flit, severity, field, self.topology.num_nodes, self.injector.rng
            )
        else:
            if self.payload_checker is not None:
                self.payload_checker.corrupt_payload(flit, severity)
            flit.corrupt(severity)
        return flit

    # ------------------------------------------------------------------
    # phase 2: compute
    # ------------------------------------------------------------------

    def compute(self, cycle: int) -> int:
        """Run the pipeline for one cycle; returns link sends (for stats)."""
        if self.dead:
            return 0
        # One scan builds the working set; every stage iterates only VCs
        # that actually hold flits (the common case is an idle VC).
        occupied = [
            ivc
            for port_vcs in self.inputs
            for ivc in port_vcs
            if not ivc.buffer.is_empty
        ]
        ports_link_busy = self._output_stage(cycle)
        if self.deadlock is not None:
            self._probe_stage(cycle, occupied)
        self._rt_stage(cycle, occupied)
        self._va_stage(cycle, occupied)
        sends = self._sa_stage(cycle, ports_link_busy, occupied)
        sends += len(ports_link_busy)
        self._update_blocked_counters(occupied)
        return sends

    # -- output stage: replay and absorption drains have link priority ----

    def _output_stage(self, cycle: int) -> Set[int]:
        busy: Set[int] = set()
        for port, channels in enumerate(self.outputs):
            link = self.out_links[port]
            if link is None:
                continue
            sent = False
            for channel in channels:
                if channel.replay_queue:
                    seq, flit = channel.replay_queue.popleft()
                    self._transmit(cycle, link, channel, flit, seq, retransmit=True)
                    sent = True
                    break
            if not sent:
                for channel in channels:
                    if channel.absorption_queue and channel.credits > 0:
                        flit = channel.absorption_queue.popleft()
                        channel.credits -= 1
                        self._transmit(
                            cycle, link, channel, flit, channel.take_seq()
                        )
                        sent = True
                        break
            if sent:
                busy.add(port)
        return busy

    def _transmit(
        self,
        cycle: int,
        link: Link,
        channel: OutputChannel,
        flit: Flit,
        seq: int,
        retransmit: bool = False,
        extra_corruption: Corruption = Corruption.NONE,
    ) -> None:
        """Drive one flit onto a link, maintaining the replay window."""
        if link.dead:
            # Backstop for wormholes torn down mid-flight by a permanent
            # fault: anything still driven at a dead link is lost on the
            # wire (the teardown in ``on_output_dead`` makes this rare).
            self.stats.count("permanent_fault_flits_dropped")
            if self.casualty_hook is not None:
                self.casualty_hook(flit.packet_id)
            return
        corruption = extra_corruption
        copy_corrupt = False
        if retransmit:
            # A copy corrupted while stored (Section 4.5) replays corrupt —
            # the barrel shifter recirculates the same bad bits, so without
            # the duplicate-buffer option this is the paper's "endless
            # retransmission loop" (bounded by the receiver's give-up).
            if seq in channel.retx.corrupted_seqs:
                restored = channel.retx.restore_from_duplicate(seq)
                if restored is not None:
                    self.stats.count("retx_buffer_restores")
                else:
                    corruption = Corruption.MULTI
                    copy_corrupt = True
            self.stats.energy_event("retx_read")
        if not link.is_local:
            if not retransmit:
                flit.hops += 1
            channel.retx.store(seq, flit)
            if copy_corrupt:
                channel.retx.corrupted_seqs.add(seq)
            if self.injector.retx_upset(cycle, self.node):
                channel.retx.corrupted_seqs.add(seq)
            upset = self.injector.link_upset(cycle, self.node, link.src_port)
            if upset is not None and upset.value > corruption.value:
                corruption = upset
            self.stats.energy_event("link")
            self.stats.energy_event("retx_write")
        else:
            # Ejection to the local NI: the PE channel neither suffers link
            # upsets nor NACKs, so no replay copy is kept.
            self.stats.energy_event("local_link")
        link.send_flit(cycle, channel.vc, seq, flit, corruption)

    # -- deadlock Rule 1 ----------------------------------------------------

    def _probe_stage(self, cycle: int, occupied: List[InputVC]) -> None:
        assert self.deadlock is not None
        for ivc in occupied:
            if ivc.blocked_cycles <= self.deadlock.threshold:
                continue
            route = self._resolve_probe_route(ivc)
            if route is None:
                continue
            if self.deadlock.should_probe(cycle, ivc.blocked_cycles):
                self._forward_signal(cycle, self.node, "probe", route[0], route[1], 0)
                self.deadlock.note_probe_sent(cycle)
                if self.telemetry is not None:
                    self.telemetry.publish(
                        cycle,
                        "probe_launch",
                        self.node,
                        port=route[0],
                        vc=route[1],
                        blocked_cycles=ivc.blocked_cycles,
                    )

    # -- RT stage -------------------------------------------------------------

    def _rt_stage(self, cycle: int, occupied: List[InputVC]) -> None:
        for ivc in occupied:
            if ivc.state not in (VCState.IDLE, VCState.ROUTING):
                continue
            head = ivc.buffer.peek()
            if head is None or not head.is_head:
                continue
            if self._detect_misroute(cycle, ivc, head):
                continue
            self._route(cycle, ivc, head)

    def _detect_misroute(self, cycle: int, ivc: InputVC, head: Flit) -> bool:
        """Section 4.2 receiver-side detection (deterministic routing + HBH).

        Only meaningful for flits that arrived over a mesh link while their
        sender still holds the replay window; rollback-queue flits are
        re-issues of our own and are exempt.
        """
        if not (self._is_hbh and self._is_xy):
            return False
        if ivc.port == int(Direction.LOCAL) or ivc.buffer.rollback_queue:
            return False
        link = self.in_links[ivc.port]
        if link is None or link.is_local:
            return False
        if xy_arrival_is_legal(
            self.topology, self.node, Direction(ivc.port), head.dst
        ):
            return False
        # Misroute detected: drop the header (and any followers — they are
        # all flits of the same packet) and NACK the sender to re-route.
        self.stats.count("rt_errors_corrected")
        self.stats.count("route_nacks_sent")
        header_seq = head.link_seq
        dropped = ivc.buffer.clear()
        ivc.expected_seq = header_seq
        ivc.reset_pipeline()
        link.send_nack(cycle, NackSignal(ivc.vc, header_seq, "route"))
        self.stats.energy_event("nack")
        self.stats.count("flits_dropped", dropped)
        if self.telemetry is not None:
            self.telemetry.publish(
                cycle,
                "nack",
                self.node,
                kind="route",
                port=ivc.port,
                vc=ivc.vc,
                seq=header_seq,
                packet=head.packet_id,
            )
        return True

    def _route(self, cycle: int, ivc: InputVC, head: Flit) -> None:
        cache = self._route_cache
        key: object = (ivc.port, head.dst) if self._is_port_aware else head.dst
        if cache is not None:
            entry = cache.get(key)
            if entry is None:
                directions = self._compute_candidates(ivc, head)
                entry = (directions, [int(d) for d in directions])
                cache[key] = entry
            directions, candidates = entry
        else:
            directions = self._compute_candidates(ivc, head)
            candidates = [int(d) for d in directions]
        self.stats.energy_event("rt_op")
        if self._is_port_aware and not candidates:
            # The fault-aware tables have no legal continuation for this
            # packet (destination unreachable, or every turn-legal channel
            # died after it entered the network): tear it down.
            self._drop_unroutable(cycle, ivc, head)
            return
        if self.injector.routing_upset(cycle, self.node):
            wrong = self.injector.misdirect(
                directions, [Direction(p) for p in range(self.config.num_ports)]
            )
            candidates = [int(wrong)]
        # Local catch (Section 4.2): the VA state table knows edge/blocked
        # directions; a candidate set with no valid member forces a re-route
        # next cycle (1-cycle penalty).
        usable = [p for p in candidates if p in self.valid_out_ports]
        if not usable:
            self.stats.count("rt_errors_corrected")
            ivc.state = VCState.ROUTING
            ivc.candidates = None
            return
        ivc.candidates = usable
        ivc.state = VCState.WAITING_VA
        ivc.rt_cycle = cycle

    def _compute_candidates(self, ivc: InputVC, head: Flit) -> List[Direction]:
        if self._is_port_aware:
            return self.routing_fn.candidates_from(  # type: ignore[attr-defined]
                self.topology, self.node, Direction(ivc.port), head
            )
        return self.routing_fn.candidates(self.topology, self.node, head)

    def _drop_unroutable(self, cycle: int, ivc: InputVC, head: Flit) -> None:
        """Tear down a packet the reconfigured tables cannot deliver."""
        self.stats.count("packets_unroutable")
        if self.telemetry is not None:
            self.telemetry.publish(
                cycle,
                "flit_drop",
                self.node,
                reason="unroutable",
                packet=head.packet_id,
            )
        dropped = self._flush_input_vc(cycle, ivc, credit=True)
        self.stats.count("permanent_fault_flits_dropped", len(dropped))
        if not any(f.is_tail for f in dropped):
            ivc.drain_until_head = True
        if self.casualty_hook is not None:
            self.casualty_hook(head.packet_id)

    # -- VA stage -------------------------------------------------------------

    def _va_stage(self, cycle: int, occupied: List[InputVC]) -> None:
        in_recovery = self.deadlock is not None and self.deadlock.in_recovery(cycle)
        local_port = int(Direction.LOCAL)
        requests: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        candidates_map: Dict[Tuple[int, int], List[int]] = {}
        V = self.config.num_vcs
        for ivc in occupied:
            if ivc.state is not VCState.WAITING_VA:
                continue
            if cycle < ivc.rt_cycle + self._va_delay:
                continue
            if in_recovery and ivc.port == local_port:
                # "No new packets are allowed to enter the transmission
                # buffers involved in the deadlock recovery": fresh local
                # injections wait; packets already in the network keep
                # allocating so tails can advance and release channels.
                continue
            assert ivc.candidates is not None
            outs = [(p, v) for p in ivc.candidates for v in range(V)]
            requests[ivc.key] = outs
            candidates_map[ivc.key] = ivc.candidates
        if not requests:
            return

        reserved = {
            (p, v): self.outputs[p][v].is_allocated
            for p in range(self.config.num_ports)
            for v in range(V)
        }
        available = {
            out: not taken and not self.outputs[out[0]][out[1]].dead
            for out, taken in reserved.items()
        }
        grants = self.va.allocate(requests, available)
        if not grants:
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle, "vc_alloc_fail", self.node, count=len(requests)
                )
            return

        # Fault injection: perturb grants per Section 4.1's scenarios.  As
        # with the SA path, the AC's comparisons provably pass on clean
        # grants, so they are only evaluated when a fault could have struck.
        perturbable = bool(self.injector._rate_va)
        if perturbable:
            grants = self._perturb_va_grants(cycle, grants, reserved)

        if self.ac is not None and perturbable:
            self.stats.energy_event("ac_check")
            errors = self.ac.check_va(grants, candidates_map, reserved)
            flagged = {e.requester for e in errors}
            if flagged:
                self.stats.count("va_errors_corrected", len(flagged))
                grants = {k: v for k, v in grants.items() if k not in flagged}

        if self.telemetry is not None:
            failed = len(requests) - len(grants)
            if failed:
                self.telemetry.publish(
                    cycle, "vc_alloc_fail", self.node, count=failed
                )

        for requester, (out_port, out_vc) in grants.items():
            ivc = self.inputs[requester[0]][requester[1]]
            ivc.out_port = out_port
            ivc.out_vc = out_vc
            ivc.state = VCState.ACTIVE
            ivc.va_cycle = cycle
            self.stats.energy_event("va_grant")
            if 0 <= out_vc < V:
                self.outputs[out_port][out_vc].allocate(requester)
            head = ivc.buffer.peek()
            if self._is_source_routed and head is not None:
                SourceRouting.consume_hop(head)

    def _perturb_va_grants(
        self,
        cycle: int,
        grants: Dict[Tuple[int, int], Tuple[int, int]],
        reserved: Dict[Tuple[int, int], bool],
    ) -> Dict[Tuple[int, int], Tuple[int, int]]:
        V = self.config.num_vcs
        perturbed = dict(grants)
        reserved_list = [out for out, taken in reserved.items() if taken]
        for requester, (out_port, out_vc) in grants.items():
            if not self.injector.va_upset(cycle, self.node):
                continue
            scenario = self.injector.pick_va_scenario()
            if scenario == "duplicate" and not reserved_list:
                scenario = "invalid"
            if scenario == "invalid":
                perturbed[requester] = (out_port, V)  # nonexistent VC id
            elif scenario == "duplicate":
                perturbed[requester] = self.injector.choice(reserved_list)  # type: ignore[assignment]
            elif scenario == "wrong_vc_same_pc":
                perturbed[requester] = (out_port, (out_vc + 1) % V)
            elif scenario == "wrong_pc":
                others = [
                    p for p in range(self.config.num_ports) if p != out_port
                ]
                wrong_port = self.injector.choice(others)
                perturbed[requester] = (wrong_port, out_vc)  # type: ignore[assignment]
        return perturbed

    # -- SA / ST stage ----------------------------------------------------------

    def _sa_stage(
        self, cycle: int, ports_link_busy: Set[int], occupied: List[InputVC]
    ) -> int:
        in_recovery = self.deadlock is not None and self.deadlock.in_recovery(cycle)
        bids: Dict[Tuple[int, int], int] = {}
        faulted: List[Tuple[Tuple[int, int], str]] = []
        rate_sa = self.injector._rate_sa
        local_port = int(Direction.LOCAL)

        for ivc in occupied:
            if ivc.state is not VCState.ACTIVE:
                continue
            if cycle < ivc.va_cycle + self._sa_delay:
                continue
            channel = self._channel_of(ivc)
            if channel is None or channel.allocated_to != ivc.key:
                continue  # stranded by an undetected VA fault
            can_send = channel.credits > 0 and not (
                channel.replay_queue or channel.absorption_queue
            )
            can_absorb = (
                in_recovery
                and ivc.out_port != local_port
                and channel.absorption_capacity > 0
            )
            if ivc.out_port in ports_link_busy:
                # A replay/absorption drain holds the link this cycle;
                # only a recovery-mode absorption can still proceed.
                can_send = False
            if not (can_send or can_absorb):
                continue
            bids[ivc.key] = ivc.out_port
            # Section 4.3 faults strike per arbitration operation, which
            # is why SA errors dominate Figure 13(a): a blocked flit
            # re-arbitrates every cycle.
            if rate_sa and self.injector.sa_upset(cycle, self.node):
                faulted.append((ivc.key, self.injector.pick_sa_scenario()))

        if not bids:
            return 0
        grants = self.sa.allocate(bids)
        pairs: List[Tuple[Tuple[int, int], int]] = list(grants.items())
        clean = not faulted and not self.injector._rate_xbar
        if faulted:
            pairs = self._perturb_sa_grants(pairs, faulted)

        # The AC always runs in hardware, but with unperturbed grants its
        # comparisons provably pass (the allocator grants one output per
        # port, agreeing with the VA state), so the simulator only evaluates
        # it when a fault could have struck this cycle.
        if self.ac is not None and pairs and not clean:
            self.stats.energy_event("ac_check")
            errors = self.ac.check_sa(pairs, bids)
            if errors:
                flagged = {e.requester for e in errors}
                self.stats.count("sa_errors_corrected", len(flagged))
                pairs = [p for p in pairs if p[0] not in flagged]

        if clean:
            return self._switch_traversal_fast(cycle, pairs, ports_link_busy, in_recovery)
        return self._switch_traversal(cycle, pairs, ports_link_busy, in_recovery)

    def _channel_of(self, ivc: InputVC) -> Optional[OutputChannel]:
        if not (
            0 <= ivc.out_port < self.config.num_ports
            and 0 <= ivc.out_vc < self.config.num_vcs
        ):
            return None
        return self.outputs[ivc.out_port][ivc.out_vc]

    def _perturb_sa_grants(
        self,
        pairs: List[Tuple[Tuple[int, int], int]],
        faulted: List[Tuple[Tuple[int, int], str]],
    ) -> List[Tuple[Tuple[int, int], int]]:
        granted = dict(pairs)
        occupied_ports = set(granted.values())
        P = self.config.num_ports
        result = list(pairs)

        def replace(requester: Tuple[int, int], new_port: int) -> None:
            for i, (req, _) in enumerate(result):
                if req == requester:
                    result[i] = (req, new_port)
                    return
            result.append((requester, new_port))

        for requester, scenario in faulted:
            correct_port = granted.get(requester)
            if scenario == "blocked":
                if correct_port is not None:
                    result = [(r, p) for r, p in result if r != requester]
                continue
            if scenario == "wrong_output":
                base = correct_port if correct_port is not None else 0
                wrong = self.injector.choice([p for p in range(P) if p != base])
                replace(requester, wrong)  # type: ignore[arg-type]
            elif scenario == "duplicate_output":
                others = [p for p in occupied_ports if p != correct_port]
                if others:
                    replace(requester, self.injector.choice(others))  # type: ignore[arg-type]
                else:
                    base = correct_port if correct_port is not None else 0
                    wrong = self.injector.choice([p for p in range(P) if p != base])
                    replace(requester, wrong)  # type: ignore[arg-type]
            elif scenario == "multicast":
                if correct_port is None:
                    continue
                extra = self.injector.choice(
                    [p for p in range(P) if p != correct_port]
                )
                result.append((requester, extra))  # type: ignore[arg-type]
        return result

    def _switch_traversal_fast(
        self,
        cycle: int,
        pairs: List[Tuple[Tuple[int, int], int]],
        ports_link_busy: Set[int],
        in_recovery: bool,
    ) -> int:
        """Fault-free switch traversal: no collisions, no strays, no hook.

        Semantically identical to :meth:`_switch_traversal` when no
        SA/crossbar fault fired this cycle; kept separate because this is
        the simulator's hottest path.
        """
        sends = 0
        energy = self.stats.energy_event
        local = int(Direction.LOCAL)
        for requester, out_port in pairs:
            in_port, in_vc = requester
            ivc = self.inputs[in_port][in_vc]
            channel = self.outputs[out_port][ivc.out_vc]
            link = self.out_links[out_port]
            flit, from_fifo = ivc.buffer.pop_with_origin()
            energy("buffer_read")
            energy("sa_grant")
            energy("xbar")
            self.crossbar.traversals += 1
            if from_fifo:
                in_link = self.in_links[in_port]
                if in_link is not None:
                    in_link.send_credit(cycle, in_vc)
                    energy("credit")
            if channel.credits > 0 and link is not None and out_port not in ports_link_busy:
                channel.credits -= 1
                self._transmit(cycle, link, channel, flit, channel.take_seq())
                sends += 1
            elif in_recovery and out_port != local and channel.absorption_capacity > 0:
                channel.absorb(flit)
                self.stats.count("recovery_forwards")
                energy("retx_write")
            else:
                ivc.buffer.push_rollback([flit])
                continue
            ivc.sent_this_cycle = True
            ivc.blocked_cycles = 0
            if flit.is_tail:
                channel.release()
                ivc.reset_pipeline()
        return sends

    def _switch_traversal(
        self,
        cycle: int,
        pairs: List[Tuple[Tuple[int, int], int]],
        ports_link_busy: Set[int],
        in_recovery: bool,
    ) -> int:
        """Pop winners' flits, traverse the crossbar, drive the outputs."""
        if not pairs:
            return 0
        # Pop each winning flit exactly once; multicast faults reuse it.
        popped: Dict[Tuple[int, int], Tuple[Flit, bool]] = {}
        moves: List[Tuple[int, int, Flit]] = []
        intended: Dict[int, Tuple[Tuple[int, int], int]] = {}
        for requester, out_port in pairs:
            ivc = self.inputs[requester[0]][requester[1]]
            if requester not in popped:
                flit, from_fifo = ivc.buffer.pop_with_origin()
                popped[requester] = (flit, from_fifo)
                self.stats.energy_event("buffer_read")
                if from_fifo:
                    in_link = self.in_links[requester[0]]
                    if in_link is not None:
                        in_link.send_credit(cycle, requester[1])
                        self.stats.energy_event("credit")
            flit = popped[requester][0]
            moves.append((requester[0], out_port, flit))
            if out_port == self.inputs[requester[0]][requester[1]].out_port:
                intended[id(flit)] = (requester, out_port)
            self.stats.energy_event("sa_grant")

        hook = None
        if self.injector._rate_xbar:
            hook = lambda f: self.injector.crossbar_upset(cycle, self.node)
        driven = self.crossbar.traverse(moves, hook)
        self.stats.energy_event("xbar", len(driven))

        sends = 0
        for out_port, flit, corruption in driven:
            requester_entry = intended.get(id(flit))
            is_intended = (
                requester_entry is not None and requester_entry[1] == out_port
            )
            if is_intended:
                assert requester_entry is not None
                requester = requester_entry[0]
                ivc = self.inputs[requester[0]][requester[1]]
                channel = self._channel_of(ivc)
                assert channel is not None
                link = self.out_links[out_port]
                if channel.credits > 0 and link is not None and out_port not in ports_link_busy:
                    channel.credits -= 1
                    if out_port == int(Direction.LOCAL):
                        # Ejection: NI sinks it next cycle.
                        self._transmit(
                            cycle, link, channel, flit, channel.take_seq(),
                            extra_corruption=corruption,
                        )
                    else:
                        self._transmit(
                            cycle, link, channel, flit, channel.take_seq(),
                            extra_corruption=corruption,
                        )
                    sends += 1
                elif in_recovery and channel.absorption_capacity > 0:
                    channel.absorb(flit)
                    self.stats.count("recovery_forwards")
                    self.stats.energy_event("retx_write")
                else:
                    # Port stolen by a replay this cycle (or credit raced
                    # away): the flit must not be lost — put it back.
                    ivc.buffer.push_rollback([flit])
                    continue
                ivc.sent_this_cycle = True
                ivc.blocked_cycles = 0
                if flit.is_tail:
                    channel.release()
                    ivc.reset_pipeline()
            else:
                # Undetected SA fault (AC disabled): the flit appears on the
                # wrong output wires with scrambled control fields; the
                # downstream sequence filter will discard it.
                link = self.out_links[out_port]
                if link is not None and out_port not in ports_link_busy:
                    stray = flit
                    if requester_entry is not None:
                        # Multicast copy: duplicate the flit object so the
                        # real stream's copy is not aliased.
                        from copy import copy as _copy

                        stray = _copy(flit)
                    link.send_flit(cycle, min(flit.seq, self.config.num_vcs - 1), -1, stray, corruption)
                    sends += 1
                self.stats.count("sa_misdirected_flits")
        return sends

    # -- permanent-fault teardown ------------------------------------------

    def invalidate_route_cache(self) -> None:
        """Discard memoized routing decisions after a reconfiguration.

        Headers already routed but not yet granted a VC re-enter the RT
        stage so they route against the rebuilt tables — their snapshot
        candidate lists may point at channels that no longer exist.
        """
        if self._route_cache is not None:
            self._route_cache.clear()
        for port_vcs in self.inputs:
            for ivc in port_vcs:
                if ivc.state is VCState.WAITING_VA:
                    ivc.state = VCState.ROUTING
                    ivc.candidates = None

    def _flush_input_vc(
        self, cycle: int, ivc: InputVC, credit: bool
    ) -> List[Flit]:
        """Drop everything buffered in ``ivc`` and reset its pipeline.

        With ``credit=True`` each dropped FIFO slot is handed back to the
        upstream sender (if its link is still alive) — otherwise the
        upstream channel starves and never drains.  Rollback-queue flits
        were never credited and never are.  Returns the dropped flits for
        the caller's accounting.
        """
        flits = list(ivc.buffer)
        if flits:
            fifo_count = ivc.buffer.occupancy
            ivc.buffer.clear()
            in_link = self.in_links[ivc.port]
            if credit and fifo_count and in_link is not None and not in_link.dead:
                for _ in range(fifo_count):
                    in_link.send_credit(cycle, ivc.vc)
        channel = self._channel_of(ivc)
        if channel is not None and channel.allocated_to == ivc.key:
            channel.release()
        ivc.reset_pipeline()
        return flits

    def _kill_output_channel(self, cycle: int, port: int, vc: int) -> List[Flit]:
        """Permanently fail one output channel, tearing down the wormhole
        that holds it.  Returns every flit destroyed in the process."""
        channel = self.outputs[port][vc]
        channel.dead = True
        lost: List[Flit] = [f for _, f in channel.replay_queue]
        channel.replay_queue.clear()
        lost.extend(channel.absorption_queue)
        channel.absorption_queue.clear()
        owner = channel.allocated_to
        if owner is not None:
            ivc = self.inputs[owner[0]][owner[1]]
            if ivc.state is VCState.ACTIVE and (ivc.out_port, ivc.out_vc) == (
                port,
                vc,
            ):
                lost.extend(self._flush_input_vc(cycle, ivc, credit=True))
                ivc.drain_until_head = True
                if self.casualty_hook is not None and ivc.last_head_packet_id >= 0:
                    self.casualty_hook(ivc.last_head_packet_id)
            channel.release()
        return lost

    def on_output_dead(self, cycle: int, port: int) -> List[Flit]:
        """The link leaving ``port`` died: kill every channel crossing it."""
        lost: List[Flit] = []
        for vc in range(self.config.num_vcs):
            lost.extend(self._kill_output_channel(cycle, port, vc))
        return lost

    def on_input_dead(self, cycle: int, port: int) -> List[Flit]:
        """The link feeding ``port`` died.

        Buffered flit runs that already include their tail are complete and
        still deliverable; anything after the last buffered tail is the
        prefix of a packet whose remaining flits can never arrive, so it is
        dropped.  A wormhole cut mid-packet leaves its downstream channel
        allocated forever — releasing it would let a fresh header splice
        into the dangling downstream segment — so the leak is kept and
        counted (``wormholes_orphaned``).
        """
        lost: List[Flit] = []
        for ivc in self.inputs[port]:
            dropped = ivc.buffer.drop_cut_suffix()
            lost.extend(dropped)
            if ivc.state is VCState.ACTIVE:
                if not any(f.is_tail for f in ivc.buffer):
                    self.stats.count("wormholes_orphaned")
                    if self.casualty_hook is not None and ivc.last_head_packet_id >= 0:
                        self.casualty_hook(ivc.last_head_packet_id)
            elif ivc.buffer.is_empty:
                ivc.reset_pipeline()
        return lost

    def on_vc_dead(self, cycle: int, port: int, vc: int) -> List[Flit]:
        """One input VC buffer died: its content is destroyed and future
        arrivals vanish (the upstream output channel dies with it)."""
        ivc = self.inputs[port][vc]
        ivc.dead = True
        was_active = ivc.state is VCState.ACTIVE
        flits = list(ivc.buffer)
        ivc.buffer.clear()
        if was_active:
            # Mid-wormhole: the downstream segment dangles.  The input VC
            # stays ACTIVE and keeps its output channel allocated — nothing
            # may splice a fresh header into the dangling segment — so the
            # leak is deliberate and counted.
            self.stats.count("wormholes_orphaned")
            if self.casualty_hook is not None and ivc.last_head_packet_id >= 0:
                self.casualty_hook(ivc.last_head_packet_id)
        else:
            ivc.reset_pipeline()
        return flits

    def on_router_dead(self, cycle: int) -> List[Flit]:
        """The whole router died: every buffer and channel goes with it."""
        self.dead = True
        lost: List[Flit] = []
        for port in range(self.config.num_ports):
            for vc in range(self.config.num_vcs):
                lost.extend(self._kill_output_channel(cycle, port, vc))
        for port_vcs in self.inputs:
            for ivc in port_vcs:
                ivc.dead = True
                lost.extend(self._flush_input_vc(cycle, ivc, credit=False))
        return lost

    # -- bookkeeping -------------------------------------------------------

    def _update_blocked_counters(self, occupied: List[InputVC]) -> None:
        for ivc in occupied:
            if ivc.sent_this_cycle:
                ivc.blocked_cycles = 0
                ivc.sent_this_cycle = False
            elif not ivc.buffer.is_empty:
                ivc.blocked_cycles += 1

    # -- introspection (stats / tests) ----------------------------------------

    @property
    def buffered_flits(self) -> int:
        return sum(
            ivc.buffer.total_flits for port_vcs in self.inputs for ivc in port_vcs
        )

    @property
    def buffer_capacity(self) -> int:
        return (
            self.config.num_ports
            * self.config.num_vcs
            * self.config.vc_buffer_depth
        )

    @property
    def retx_pending_flits(self) -> int:
        """Replay + absorption occupancy (live retransmission-buffer use)."""
        total = 0
        for port, channels in enumerate(self.outputs):
            if port == int(Direction.LOCAL):
                continue
            for channel in channels:
                total += len(channel.replay_queue) + len(channel.absorption_queue)
        return total

    @property
    def retx_occupancy(self) -> int:
        """Occupied retransmission-buffer slots (replay + absorption +
        barrel-shifter storage); the telemetry sampler's pressure numerator."""
        total = 0
        for port, channels in enumerate(self.outputs):
            if port == int(Direction.LOCAL):
                continue
            for channel in channels:
                total += channel.telemetry_occupancy
        return total

    @property
    def retx_capacity(self) -> int:
        ports = sum(
            1
            for port in range(self.config.num_ports)
            if port != int(Direction.LOCAL) and self.out_links[port] is not None
        )
        return ports * self.config.num_vcs * self.config.retx_buffer_depth

    @property
    def has_traffic(self) -> bool:
        # Hot on the activity-driven path (checked once per active router
        # per cycle); short-circuits instead of summing full occupancies.
        for port_vcs in self.inputs:
            for ivc in port_vcs:
                if not ivc.buffer.is_empty:
                    return True
        for channels in self.outputs:
            for channel in channels:
                if channel.has_pending_output:
                    return True
        return False

    def __repr__(self) -> str:
        return f"Router(node={self.node}, buffered={self.buffered_flits})"
