"""The cycle-accurate NoC simulator substrate.

This package models the paper's simulation platform (Section 2.2): a mesh of
virtual-channel wormhole routers with credit-based flow control, pipelined
per Figure 2, connected by single-cycle links with reverse channels for
credits, NACKs and deadlock probes.

The fault-tolerance mechanisms themselves (retransmission buffers, the
Allocation Comparator, deadlock recovery) live in :mod:`repro.core`; the
router imports and composes them.
"""

from repro.noc.flit import Flit
from repro.noc.network import Network
from repro.noc.packet import Packet, PacketReassembler
from repro.noc.router import Router
from repro.noc.simulator import SimulationResult, Simulator
from repro.noc.topology import MeshTopology, TorusTopology

__all__ = [
    "Flit",
    "MeshTopology",
    "Network",
    "Packet",
    "PacketReassembler",
    "Router",
    "SimulationResult",
    "Simulator",
    "TorusTopology",
]
