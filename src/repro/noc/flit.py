"""Flits: the unit of flow control.

A flit carries its packet identity, its position within the packet, the
destination the routers will steer by (which fault injection may corrupt),
and a symbolic corruption tag (see :class:`repro.types.Corruption`).

``__slots__`` keeps flits small: the simulator creates millions of them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.types import Corruption, Direction, FlitType


class Flit:
    """One flit of a wormhole packet.

    Attributes
    ----------
    packet_id:
        Globally unique id of the packet this flit belongs to.
    seq:
        Position within the packet (0 = head).
    ftype:
        HEAD / BODY / TAIL / HEAD_TAIL.
    src:
        Injecting node id.
    dst:
        Destination node id *as the routers currently see it*.  Header
        corruption (E2E/FEC multi-bit errors) rewrites this field.
    true_dst:
        The destination the source intended; never mutated.  Network
        interfaces compare ``dst`` routing outcomes against this to detect
        misdelivery — behaviourally, via the header ECC check at ejection.
    injection_cycle:
        Cycle the packet's head entered the source queue (for latency).
    corruption:
        Symbolic corruption class accumulated on the flit.
    source_route:
        For :data:`repro.types.RoutingAlgorithm.SOURCE` packets: remaining
        output directions, consumed one per hop.
    link_seq:
        Per-(link, VC) sequence number stamped by the sender at each link
        traversal; used by the HBH rollback protocol.
    payload:
        Optional integer payload; carried through the real ECC codec by the
        network-interface payload path.
    """

    __slots__ = (
        "packet_id",
        "seq",
        "ftype",
        "src",
        "dst",
        "true_dst",
        "injection_cycle",
        "corruption",
        "dst_error",
        "src_error",
        "source_route",
        "link_seq",
        "payload",
        "hops",
    )

    def __init__(
        self,
        packet_id: int,
        seq: int,
        ftype: FlitType,
        src: int,
        dst: int,
        injection_cycle: int = 0,
        payload: int = 0,
        source_route: Optional[List[Direction]] = None,
    ):
        self.packet_id = packet_id
        self.seq = seq
        self.ftype = ftype
        self.src = src
        self.dst = dst
        self.true_dst = dst
        self.injection_cycle = injection_cycle
        self.corruption = Corruption.NONE
        self.dst_error = Corruption.NONE
        self.src_error = Corruption.NONE
        self.source_route = source_route
        self.link_seq = -1
        self.payload = payload
        self.hops = 0

    @property
    def is_head(self) -> bool:
        return self.ftype in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.ftype in (FlitType.TAIL, FlitType.HEAD_TAIL)

    @property
    def is_corrupted(self) -> bool:
        return self.corruption is not Corruption.NONE

    def corrupt(self, severity: Corruption) -> None:
        """Accumulate corruption.

        MULTI dominates SINGLE dominates NONE, and two independent
        single-bit upsets compose into a double error (a second SINGLE on
        an already-SINGLE flit escalates to MULTI) — validated bit-for-bit
        against the real codec by
        :class:`repro.coding.payload_check.PayloadChecker`.
        """
        if severity is Corruption.SINGLE and self.corruption is Corruption.SINGLE:
            self.corruption = Corruption.MULTI
        elif severity.value > self.corruption.value:
            self.corruption = severity

    def clear_single_error(self) -> bool:
        """Correct a single-bit error in place (what a SEC stage does).

        Returns True if a correction happened.  MULTI corruption cannot be
        cleared this way.
        """
        if self.corruption is Corruption.SINGLE:
            self.corruption = Corruption.NONE
            return True
        return False

    def __repr__(self) -> str:
        tag = {Corruption.NONE: "", Corruption.SINGLE: "*", Corruption.MULTI: "**"}[
            self.corruption
        ]
        return (
            f"Flit(p{self.packet_id}.{self.seq} {self.ftype.name}"
            f" {self.src}->{self.dst}{tag})"
        )
