"""Network assembly: routers, links, network interfaces and the cycle loop.

The :class:`Network` owns one router and one :class:`NetworkInterface` per
node, the mesh links between routers (one :class:`~repro.noc.link.Link` per
direction per adjacent pair), and the local injection/ejection links.  Its
:meth:`Network.step` advances the whole system by one cycle in a fixed
phase order:

1. NIs process ejections delivered by the previous cycle,
2. scheduled events fire (E2E retransmission requests / ACKs, modelled as
   contention-free reverse-path messages with per-hop latency),
3. routers consume link deliveries (credits, NACKs, probes, flits),
4. NIs inject (subject to credits on the local link),
5. routers run their pipelines, pushing onto links for the next cycle,
6. utilization is sampled.

Because every channel is a 1-cycle delay line, the order of routers within
a phase cannot change outcomes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import SimulationConfig
from repro.core.schemes import DeliveryAction, destination_policy
from repro.faults.injector import FaultInjector
from repro.noc.flit import Flit
from repro.noc.link import Link
from repro.noc.packet import Packet, PacketReassembler
from repro.noc.router import Router
from repro.noc.routing import resolve_routing_function
from repro.noc.topology import MeshTopology
from repro.stats.collectors import StatsCollector
from repro.types import Corruption, Direction, LinkProtection, RoutingAlgorithm


class NetworkInterface:
    """The PE-side endpoint: source queue, wormhole serialization onto the
    local link, destination reassembly and per-scheme delivery policy."""

    def __init__(self, node: int, network: "Network"):
        self.node = node
        self.network = network
        self.config = network.config.noc
        self.stats = network.stats
        V = self.config.num_vcs
        self.pending: Deque[Packet] = deque()
        self._streams: List[Optional[List[Flit]]] = [None] * V
        self._credits: List[int] = [self.config.vc_buffer_depth] * V
        self._next_seq: List[int] = [0] * V
        self._rr = 0
        self.reassembler = PacketReassembler()
        #: E2E source retransmission copies, held until the ACK returns.
        self.e2e_copies: Dict[int, Packet] = {}
        self.e2e_copy_high_water = 0
        self.inj_link: Optional[Link] = None
        self.ej_link: Optional[Link] = None

    # -- source side -------------------------------------------------------

    def enqueue(self, packet: Packet, priority: bool = False) -> None:
        if priority:
            self.pending.appendleft(packet)
        else:
            self.pending.append(packet)

    def inject(self, cycle: int) -> None:
        assert self.inj_link is not None
        for credit in self.inj_link.credit_arrivals(cycle):
            self._credits[credit.vc] += 1
        V = self.config.num_vcs
        # Continue an in-flight wormhole first (avoids starving packets that
        # already hold router resources), round-robin across VCs.
        for offset in range(V):
            vc = (self._rr + offset) % V
            stream = self._streams[vc]
            if stream and self._credits[vc] > 0:
                self._send_flit(cycle, vc, stream.pop(0))
                if not stream:
                    self._streams[vc] = None
                self._rr = (vc + 1) % V
                return
        if not self.pending:
            return
        for vc in range(V):
            if self._streams[vc] is None and self._credits[vc] > 0:
                packet = self.pending.popleft()
                if self.config.link_protection is LinkProtection.E2E:
                    self.e2e_copies[packet.packet_id] = packet
                    self.e2e_copy_high_water = max(
                        self.e2e_copy_high_water, len(self.e2e_copies)
                    )
                flits = packet.make_flits()
                checker = self.network.payload_checker
                if checker is not None:
                    for flit in flits:
                        checker.encode_flit(flit)
                self._send_flit(cycle, vc, flits.pop(0))
                self._streams[vc] = flits or None
                return

    def _send_flit(self, cycle: int, vc: int, flit: Flit) -> None:
        assert self.inj_link is not None
        self._credits[vc] -= 1
        seq = self._next_seq[vc]
        self._next_seq[vc] += 1
        self.inj_link.send_flit(cycle, vc, seq, flit)
        self.stats.energy_event("local_link")

    def retransmit(self, packet_id: int) -> None:
        """E2E: the destination's retransmission request arrived."""
        packet = self.e2e_copies.get(packet_id)
        if packet is None:
            return  # already delivered/ACKed; stale request
        packet.retransmissions += 1
        self.enqueue(packet, priority=True)

    def release(self, packet_id: int) -> None:
        """E2E: the destination's ACK arrived; drop the source copy."""
        self.e2e_copies.pop(packet_id, None)

    @property
    def queued_packets(self) -> int:
        return len(self.pending) + sum(1 for s in self._streams if s)

    @property
    def flits_sent(self) -> int:
        """Total flits this NI has pushed onto its injection link.

        The per-VC sequence counters are exactly that tally; the invariant
        sanitizer uses it as the inflow term of flit conservation.
        """
        return sum(self._next_seq)

    # -- destination side ----------------------------------------------------

    def receive(self, cycle: int) -> None:
        assert self.ej_link is not None
        for transfer in self.ej_link.flit_arrivals(cycle):
            flit = transfer.flit
            corruption = transfer.corruption
            if corruption is not Corruption.NONE:
                scheme = self.config.link_protection
                checker = self.network.payload_checker
                if scheme in (LinkProtection.HBH, LinkProtection.NONE):
                    if corruption is Corruption.SINGLE:
                        self.stats.count("fec_corrections")
                    else:
                        if checker is not None:
                            checker.corrupt_payload(flit, corruption)
                        flit.corrupt(corruption)
                else:
                    if checker is not None:
                        checker.corrupt_payload(flit, corruption)
                    flit.corrupt(corruption)
            complete = self.reassembler.accept(flit, self.config.flits_per_packet)
            if complete is not None:
                self._handle_packet(cycle, complete)

    def _handle_packet(self, cycle: int, flits: List[Flit]) -> None:
        scheme = self.config.link_protection
        # Every completed reassembly consumes its flits, whatever the
        # delivery outcome; the sanitizer balances this against injections.
        self.stats.count("flits_ejected", len(flits))
        decision = destination_policy(scheme, self.node, flits)
        head = flits[0]
        action = decision.action

        if action in (DeliveryAction.DELIVER, DeliveryAction.DELIVER_CORRUPT):
            checker = self.network.payload_checker
            if checker is not None:
                for flit in flits:
                    # Skip flits whose corruption landed in header fields:
                    # the dst/src rewrite is the bit-accurate model there.
                    if flit.dst_error is Corruption.NONE or not flit.is_head:
                        ok = checker.verify_flit(flit)
                        self.stats.count("payload_ecc_checks")
                        if not ok:
                            self.stats.count("payload_ecc_mismatches")
            latency = cycle - head.injection_cycle
            self.stats.record_ejection(latency, head.hops)
            if action is DeliveryAction.DELIVER_CORRUPT:
                self.stats.count("packets_delivered_corrupt")
            self.network.note_delivered()
            if scheme is LinkProtection.E2E and head.src_error is not Corruption.MULTI:
                src_ni = self.network.interfaces[head.src]
                delay = self.network.topology.distance(self.node, head.src)
                self.network.schedule(
                    cycle + max(1, delay),
                    lambda pid=head.packet_id: src_ni.release(pid),
                )
        elif action is DeliveryAction.REQUEST_RETRANSMISSION:
            assert decision.source is not None
            self.stats.count("e2e_retransmissions")
            src_ni = self.network.interfaces[decision.source]
            delay = self.network.topology.distance(self.node, decision.source)
            self.network.schedule(
                cycle + max(1, delay),
                lambda pid=head.packet_id: src_ni.retransmit(pid),
            )
        elif action is DeliveryAction.FORWARD_TO_TRUE_DST:
            assert decision.destination is not None
            self.stats.count("packets_misrouted")
            self.stats.count("packets_reforwarded")
            onward = Packet(
                packet_id=head.packet_id,
                src=self.node,
                dst=decision.destination,
                num_flits=self.config.flits_per_packet,
                injection_cycle=head.injection_cycle,
                payload=head.payload,
            )
            self.enqueue(onward, priority=True)
        elif action is DeliveryAction.LOST:
            self.stats.count("packets_lost")
            self.network.note_lost()
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled delivery action {action}")


class Network:
    """The complete simulated system for one configuration."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        noc = config.noc
        if noc.topology == "torus":
            from repro.noc.topology import TorusTopology

            self.topology: MeshTopology = TorusTopology(noc.width, noc.height)
        else:
            self.topology = MeshTopology(noc.width, noc.height)
        self.stats = StatsCollector()
        self.injector = FaultInjector(config.faults)
        routing_fn = resolve_routing_function(noc.routing, self.topology)
        if (
            noc.topology == "torus"
            and noc.routing is RoutingAlgorithm.XY
            and not noc.deadlock_recovery_enabled
            and max(noc.width, noc.height) >= 4
        ):
            # NOC008: the wrap links close cyclic channel dependencies that
            # dimension-ordered routing cannot break, and nothing here will
            # recover a deadlock once it forms.  `repro lint` reports the
            # same hazard statically (with the CDG witness cycle).  Rings of
            # 3 are exempt: every shortest path is a single hop, so no packet
            # ever chains two same-direction channels and the CDG is acyclic.
            import warnings

            warnings.warn(
                "NOC008: XY routing on a torus has cyclic channel "
                "dependencies across the wraparound links and "
                "deadlock recovery is disabled; enable "
                "deadlock_recovery_enabled or expect wedged wormholes "
                "(run `repro lint` for the witness cycle)",
                stacklevel=2,
            )
        self.payload_checker = None
        if config.payload_ecc_check:
            from repro.coding.payload_check import PayloadChecker

            self.payload_checker = PayloadChecker()

        self.routers: List[Router] = [
            Router(
                node,
                noc,
                self.topology,
                routing_fn,
                self.injector,
                self.stats,
                payload_checker=self.payload_checker,
            )
            for node in self.topology.nodes()
        ]
        self.interfaces: List[NetworkInterface] = [
            NetworkInterface(node, self) for node in self.topology.nodes()
        ]
        self.links: List[Link] = []
        self._wire_mesh()
        self._wire_local()

        self.cycle = 0
        self.delivered = 0
        self.lost = 0
        self._events: List[Tuple[int, int, Callable[[], None]]] = []
        self._event_seq = 0
        self._send_history: Deque[int] = deque(
            [0] * noc.retx_buffer_depth, maxlen=noc.retx_buffer_depth
        )
        self._retx_capacity = sum(r.retx_capacity for r in self.routers)
        self._tx_capacity = sum(r.buffer_capacity for r in self.routers)

    # -- wiring ---------------------------------------------------------------

    def _wire_mesh(self) -> None:
        for node in self.topology.nodes():
            for direction in self.topology.connected_directions(node):
                neighbor = self.topology.neighbor(node, direction)
                assert neighbor is not None
                link = Link(node, direction, neighbor, direction.opposite)
                self.links.append(link)
                self.routers[node].attach_output_link(int(direction), link)
                self.routers[neighbor].attach_input_link(
                    int(direction.opposite), link
                )

    def _wire_local(self) -> None:
        local = Direction.LOCAL
        for node in self.topology.nodes():
            inj = Link(node, local, node, local, is_local=True)
            ej = Link(node, local, node, local, is_local=True)
            self.links.extend((inj, ej))
            self.interfaces[node].inj_link = inj
            self.routers[node].attach_input_link(int(local), inj)
            self.routers[node].attach_output_link(int(local), ej)
            self.interfaces[node].ej_link = ej

    # -- event scheduling (contention-free reverse-path messages) -------------

    def schedule(self, cycle: int, action: Callable[[], None]) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (cycle, self._event_seq, action))

    def _run_due_events(self) -> None:
        while self._events and self._events[0][0] <= self.cycle:
            _, _, action = heapq.heappop(self._events)
            action()

    # -- delivery accounting ----------------------------------------------------

    def note_delivered(self) -> None:
        self.delivered += 1

    def note_lost(self) -> None:
        self.lost += 1

    @property
    def completed(self) -> int:
        """Messages that reached a final outcome (delivered or lost)."""
        return self.delivered + self.lost

    # -- the cycle loop ---------------------------------------------------------

    def step(self) -> None:
        cycle = self.cycle
        for ni in self.interfaces:
            ni.receive(cycle)
        self._run_due_events()
        for router in self.routers:
            router.receive(cycle)
        for ni in self.interfaces:
            ni.inject(cycle)
        sends = 0
        for router in self.routers:
            sends += router.compute(cycle)
        self._send_history.append(sends)
        if self.config.collect_utilization:
            self._sample_utilization()
        self.stats.cycles += 1
        self.cycle += 1

    def _sample_utilization(self) -> None:
        tx_occupied = sum(r.buffered_flits for r in self.routers)
        # A retransmission-buffer slot is live for the replay window after a
        # send (the barrel shifter holds the flit until a NACK can no longer
        # arrive) plus any replay/absorption occupancy.
        retx_occupied = sum(self._send_history) + sum(
            r.retx_pending_flits for r in self.routers
        )
        self.stats.record_utilization(
            tx_occupied,
            self._tx_capacity,
            min(retx_occupied, self._retx_capacity),
            self._retx_capacity,
        )

    def run_cycles(self, cycles: int) -> None:
        """Advance a fixed number of cycles (tests and scripted scenarios)."""
        for _ in range(cycles):
            self.step()

    def finalize_stats(self) -> None:
        """Fold per-router controller/handshake counters into the collector.

        Idempotent; called once when a result is built.
        """
        if getattr(self, "_stats_finalized", False):
            return
        self._stats_finalized = True
        probes_sent = probes_discarded = 0
        masked = lost_signals = 0
        for router in self.routers:
            if router.deadlock is not None:
                probes_sent += router.deadlock.probes_sent
                probes_discarded += router.deadlock.probes_discarded
            masked += router.handshake.glitches_masked
            lost_signals += router.handshake.signals_lost
        if probes_sent:
            self.stats.count("probes_sent", probes_sent)
        if probes_discarded:
            self.stats.count("probes_discarded", probes_discarded)
        if masked:
            self.stats.count("handshake_glitches_masked", masked)
        if lost_signals:
            self.stats.count("handshake_signals_lost", lost_signals)

    @property
    def in_flight_flits(self) -> int:
        buffered = sum(r.buffered_flits for r in self.routers)
        on_links = sum(len(link.flits) for link in self.links)
        pending_out = sum(r.retx_pending_flits for r in self.routers)
        return buffered + on_links + pending_out

    def __repr__(self) -> str:
        return (
            f"Network({self.topology.width}x{self.topology.height}, "
            f"cycle={self.cycle}, delivered={self.delivered})"
        )
