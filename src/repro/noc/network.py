"""Network assembly: routers, links, network interfaces and the cycle loop.

The :class:`Network` owns one router and one :class:`NetworkInterface` per
node, the mesh links between routers (one :class:`~repro.noc.link.Link` per
direction per adjacent pair), and the local injection/ejection links.  Its
:meth:`Network.step` advances the whole system by one cycle in a fixed
phase order:

1. NIs process ejections delivered by the previous cycle,
2. scheduled events fire (E2E retransmission requests / ACKs, modelled as
   contention-free reverse-path messages with per-hop latency),
3. routers consume link deliveries (credits, NACKs, probes, flits),
4. NIs inject (subject to credits on the local link),
5. routers run their pipelines, pushing onto links for the next cycle,
6. utilization is sampled.

Because every channel is a fixed-latency delay line (1 cycle for planar
links; TSV links in a 3D stack may take longer), the order of routers
within a phase cannot change outcomes.

Two implementations of the cycle loop exist.  The *full* loop polls every
component every cycle.  The *activity-driven* loop (the default, selected
by ``SimulationConfig.activity_driven``) maintains explicit active sets —
routers holding flits or pending output, interfaces with queued packets,
and per-cycle wake sets fed by the links — and only visits components that
have work.  The two are bit-for-bit equivalent; the scheduling invariants
that make the skip sound are documented in ``docs/PERFORMANCE.md`` and
enforced by :meth:`Network.verify_activity_invariants`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.config import SimulationConfig
from repro.core.schemes import DeliveryAction, destination_policy
from repro.faults.injector import FaultInjector
from repro.faults.intermittent import (
    IntermittentFaultSchedule,
    IntermittentLifecycle,
    _SiteState,
)
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.flit import Flit
from repro.noc.kernel import BatchedKernel, kernel_supports
from repro.noc.link import Link
from repro.noc.packet import Packet, PacketReassembler
from repro.noc.router import Router
from repro.noc.routing import FaultAwareRouting, resolve_routing_function
from repro.noc.topology import MeshTopology, make_topology
from repro.stats.collectors import StatsCollector
from repro.telemetry.bus import TelemetryBus
from repro.types import Corruption, Direction, LinkProtection, RoutingAlgorithm


class NetworkInterface:
    """The PE-side endpoint: source queue, wormhole serialization onto the
    local link, destination reassembly and per-scheme delivery policy."""

    def __init__(self, node: int, network: "Network"):
        self.node = node
        self.network = network
        self.config = network.config.noc
        self.stats = network.stats
        self.telemetry = network.telemetry
        #: Flits consumed by completed reassemblies (the telemetry sampler's
        #: ejection-rate numerator; mirrors the ``flits_ejected`` counter).
        self.flits_ejected = 0
        V = self.config.num_vcs
        self.pending: Deque[Packet] = deque()
        self._streams: List[Optional[List[Flit]]] = [None] * V
        self._credits: List[int] = [self.config.vc_buffer_depth] * V
        self._next_seq: List[int] = [0] * V
        self._rr = 0
        self.reassembler = PacketReassembler()
        #: E2E source retransmission copies, held until the ACK returns.
        self.e2e_copies: Dict[int, Packet] = {}
        self.e2e_copy_high_water = 0
        self.inj_link: Optional[Link] = None
        self.ej_link: Optional[Link] = None
        #: Set when the local router permanently fails: the NI can neither
        #: inject nor receive (its local links die with the router).
        self.dead = False

    # -- source side -------------------------------------------------------

    def enqueue(self, packet: Packet, priority: bool = False) -> None:
        if self.dead:
            self.stats.count("packets_unroutable")
            self.network.note_packet_casualty(packet.packet_id)
            return
        if priority:
            self.pending.appendleft(packet)
        else:
            self.pending.append(packet)
        # All packet arrivals funnel through here (fresh injections,
        # E2E retransmissions, misdelivery re-forwards), so this is the one
        # activation point the injection active set needs.
        self.network._ni_tx_active.add(self.node)

    def inject(self, cycle: int) -> None:
        if self.dead:
            return
        assert self.inj_link is not None
        for credit in self.inj_link.credit_arrivals(cycle):
            self._credits[credit.vc] += 1
        if self.network.degraded and self.pending:
            # Undeliverable-destination detection: refuse packets the
            # reconfigured tables cannot route rather than wedging a VC.
            net = self.network
            while self.pending and not net.is_reachable(
                self.node, self.pending[0].dst
            ):
                packet = self.pending.popleft()
                self.stats.count("packets_unroutable")
                net.note_packet_casualty(packet.packet_id)
        V = self.config.num_vcs
        # Continue an in-flight wormhole first (avoids starving packets that
        # already hold router resources), round-robin across VCs.
        for offset in range(V):
            vc = (self._rr + offset) % V
            stream = self._streams[vc]
            if stream and self._credits[vc] > 0:
                self._send_flit(cycle, vc, stream.pop(0))
                if not stream:
                    self._streams[vc] = None
                self._rr = (vc + 1) % V
                return
        if not self.pending:
            return
        for vc in range(V):
            if self._streams[vc] is None and self._credits[vc] > 0:
                packet = self.pending.popleft()
                if self.config.link_protection is LinkProtection.E2E:
                    self.e2e_copies[packet.packet_id] = packet
                    self.e2e_copy_high_water = max(
                        self.e2e_copy_high_water, len(self.e2e_copies)
                    )
                flits = packet.make_flits()
                checker = self.network.payload_checker
                if checker is not None:
                    for flit in flits:
                        checker.encode_flit(flit)
                self._send_flit(cycle, vc, flits.pop(0))
                self._streams[vc] = flits or None
                return

    def _send_flit(self, cycle: int, vc: int, flit: Flit) -> None:
        assert self.inj_link is not None
        self._credits[vc] -= 1
        seq = self._next_seq[vc]
        self._next_seq[vc] += 1
        self.inj_link.send_flit(cycle, vc, seq, flit)
        self.stats.energy_event("local_link")

    def retransmit(self, packet_id: int) -> None:
        """E2E: the destination's retransmission request arrived."""
        packet = self.e2e_copies.get(packet_id)
        if packet is None:
            return  # already delivered/ACKed; stale request
        packet.retransmissions += 1
        self.enqueue(packet, priority=True)

    def release(self, packet_id: int) -> None:
        """E2E: the destination's ACK arrived; drop the source copy."""
        self.e2e_copies.pop(packet_id, None)

    def on_router_dead(self) -> None:
        """The local router died: tear down everything the NI holds."""
        self.dead = True
        net = self.network
        for packet in self.pending:
            self.stats.count("packets_unroutable")
            net.note_packet_casualty(packet.packet_id)
        self.pending.clear()
        for vc, stream in enumerate(self._streams):
            if stream:
                # The already-injected prefix was flushed with the router;
                # the unsent remainder was never counted as inflow.
                net.note_packet_casualty(stream[0].packet_id)
                self._streams[vc] = None
        for pid in self.reassembler.incomplete_ids():
            dropped = self.reassembler.drop(pid)
            if dropped:
                self.stats.count("permanent_fault_flits_dropped", dropped)
            net.note_packet_casualty(pid)

    @property
    def queued_packets(self) -> int:
        return len(self.pending) + sum(1 for s in self._streams if s)

    @property
    def flits_sent(self) -> int:
        """Total flits this NI has pushed onto its injection link.

        The per-VC sequence counters are exactly that tally; the invariant
        sanitizer uses it as the inflow term of flit conservation.
        """
        return sum(self._next_seq)

    # -- destination side ----------------------------------------------------

    def receive(self, cycle: int) -> None:
        assert self.ej_link is not None
        for transfer in self.ej_link.flit_arrivals(cycle):
            flit = transfer.flit
            corruption = transfer.corruption
            if corruption is not Corruption.NONE:
                scheme = self.config.link_protection
                checker = self.network.payload_checker
                if scheme in (LinkProtection.HBH, LinkProtection.NONE):
                    if corruption is Corruption.SINGLE:
                        self.stats.count("fec_corrections")
                    else:
                        if checker is not None:
                            checker.corrupt_payload(flit, corruption)
                        flit.corrupt(corruption)
                else:
                    if checker is not None:
                        checker.corrupt_payload(flit, corruption)
                    flit.corrupt(corruption)
            complete = self.reassembler.accept(flit, self.config.flits_per_packet)
            if complete is not None:
                self._handle_packet(cycle, complete)

    def _handle_packet(self, cycle: int, flits: List[Flit]) -> None:
        scheme = self.config.link_protection
        # Every completed reassembly consumes its flits, whatever the
        # delivery outcome; the sanitizer balances this against injections.
        self.stats.count("flits_ejected", len(flits))
        self.flits_ejected += len(flits)
        decision = destination_policy(scheme, self.node, flits)
        head = flits[0]
        action = decision.action

        if action in (DeliveryAction.DELIVER, DeliveryAction.DELIVER_CORRUPT):
            checker = self.network.payload_checker
            if checker is not None:
                for flit in flits:
                    # Skip flits whose corruption landed in header fields:
                    # the dst/src rewrite is the bit-accurate model there.
                    if flit.dst_error is Corruption.NONE or not flit.is_head:
                        ok = checker.verify_flit(flit)
                        self.stats.count("payload_ecc_checks")
                        if not ok:
                            self.stats.count("payload_ecc_mismatches")
            latency = cycle - head.injection_cycle
            self.stats.record_ejection(latency, head.hops)
            if action is DeliveryAction.DELIVER_CORRUPT:
                self.stats.count("packets_delivered_corrupt")
            self.network.note_delivered()
            if scheme is LinkProtection.E2E and head.src_error is not Corruption.MULTI:
                delay = self.network.topology.distance(self.node, head.src)
                self.network.schedule(
                    cycle + max(1, delay),
                    "e2e_release",
                    head.src,
                    head.packet_id,
                )
        elif action is DeliveryAction.REQUEST_RETRANSMISSION:
            assert decision.source is not None
            self.stats.count("e2e_retransmissions")
            delay = self.network.topology.distance(self.node, decision.source)
            self.network.schedule(
                cycle + max(1, delay),
                "e2e_retransmit",
                decision.source,
                head.packet_id,
            )
        elif action is DeliveryAction.FORWARD_TO_TRUE_DST:
            assert decision.destination is not None
            self.stats.count("packets_misrouted")
            self.stats.count("packets_reforwarded")
            onward = Packet(
                packet_id=head.packet_id,
                src=self.node,
                dst=decision.destination,
                num_flits=self.config.flits_per_packet,
                injection_cycle=head.injection_cycle,
                payload=head.payload,
            )
            self.enqueue(onward, priority=True)
        elif action is DeliveryAction.LOST:
            self.stats.count("packets_lost")
            self.network.note_lost()
            if self.telemetry is not None:
                self.telemetry.publish(
                    cycle,
                    "packet_lost",
                    self.node,
                    packet=head.packet_id,
                    reason="delivery_policy",
                )
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled delivery action {action}")


class Network:
    """The complete simulated system for one configuration."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        noc = config.noc
        self.topology: MeshTopology = make_topology(
            noc.topology, noc.shape, noc.link_latency
        )
        self.stats = StatsCollector()
        #: The shared telemetry bus, or None when telemetry is disabled —
        #: every publish site guards on that None, so a disabled run pays
        #: nothing beyond one attribute check per site.  Created before the
        #: routers and interfaces so their constructors can capture it.
        tcfg = config.telemetry
        self.telemetry: Optional[TelemetryBus] = (
            TelemetryBus(tcfg) if tcfg.enabled else None
        )
        self.injector = FaultInjector(config.faults)
        self.injector.telemetry = self.telemetry
        routing_fn = resolve_routing_function(noc.routing, self.topology)
        schedule = config.faults.permanent
        intermittent = config.faults.intermittent
        wear_out = config.faults.wear_out
        if schedule:
            self._validate_schedule(schedule)
        if intermittent:
            self._validate_intermittent(intermittent)
        # Wear-out escalation turns intermittent sites into hard deaths, so
        # it needs the same survivable-routing treatment as an explicit
        # schedule.
        may_lose_components = bool(schedule) or (
            bool(intermittent) and wear_out is not None
        )
        if may_lose_components:
            if noc.routing in (RoutingAlgorithm.XY, RoutingAlgorithm.FT_TABLE):
                # XY cannot route around dead components; substitute the
                # fault-aware table routing (identical fault-free latency —
                # its up*/down* orientation yields minimal paths on a
                # healthy mesh) so the schedule is actually survivable.
                if not isinstance(routing_fn, FaultAwareRouting):
                    routing_fn = FaultAwareRouting(self.topology)
            elif noc.routing is not RoutingAlgorithm.SOURCE:
                import warnings

                warnings.warn(
                    "NOC013: hard faults (a permanent-fault schedule or "
                    "wear-out escalation) are configured but "
                    f"{noc.routing.value} routing cannot reroute around "
                    "dead components; packets whose paths cross them will "
                    "be dropped (use xy or ft_table routing for "
                    "fault-aware rerouting)",
                    stacklevel=2,
                )
        #: The routing function every router shares; a FaultAwareRouting
        #: instance here is rebuilt on each permanent-fault event.
        self.routing_fn = routing_fn
        if (
            noc.is_torus
            and noc.routing is RoutingAlgorithm.XY
            and not noc.deadlock_recovery_enabled
            and max(noc.shape) >= 4
        ):
            # NOC008: the wrap links close cyclic channel dependencies that
            # dimension-ordered routing cannot break, and nothing here will
            # recover a deadlock once it forms.  `repro lint` reports the
            # same hazard statically (with the CDG witness cycle).  Rings of
            # 3 are exempt: every shortest path is a single hop, so no packet
            # ever chains two same-direction channels and the CDG is acyclic.
            import warnings

            warnings.warn(
                "NOC008: XY routing on a torus has cyclic channel "
                "dependencies across the wraparound links and "
                "deadlock recovery is disabled; enable "
                "deadlock_recovery_enabled or expect wedged wormholes "
                "(run `repro lint` for the witness cycle)",
                stacklevel=2,
            )
        self.payload_checker = None
        if config.payload_ecc_check:
            from repro.coding.payload_check import PayloadChecker

            self.payload_checker = PayloadChecker()

        self.routers: List[Router] = [
            Router(
                node,
                noc,
                self.topology,
                routing_fn,
                self.injector,
                self.stats,
                payload_checker=self.payload_checker,
            )
            for node in self.topology.nodes()
        ]
        if self.telemetry is not None:
            bus = self.telemetry
            for router in self.routers:
                router.telemetry = bus
                if router.deadlock is not None:
                    router.deadlock.telemetry_hook = bus.publish
        # Activity-driven scheduling state.  The two *pending* sets are
        # cycle-scoped wake lists fed by the links (a push at cycle t lands
        # the consumer here for cycle t+1, matching the 1-cycle channel
        # latency exactly); the two *active* sets are sticky membership by
        # state (a member stays until it is observed drained).  They are
        # maintained unconditionally — cheap set adds — so a network can be
        # switched between the loops and tests can assert the invariants
        # even when running the full loop.
        self._ni_rx_pending: Set[int] = set()
        self._router_rx_pending: Set[int] = set()
        self._ni_tx_active: Set[int] = set()
        self._router_active: Set[int] = set()
        #: Wake entries from links slower than one cycle, bucketed by the
        #: cycle the pushed signal becomes due; :meth:`step` applies and
        #: discards the current cycle's bucket before dispatching.  Always
        #: empty on all-unit-latency platforms (every historical config).
        self._deferred_wakes: Dict[int, List[Tuple[Set[int], int]]] = {}
        self._activity_driven = config.activity_driven

        self.interfaces: List[NetworkInterface] = [
            NetworkInterface(node, self) for node in self.topology.nodes()
        ]
        self.links: List[Link] = []
        #: Mesh links by ``(src_node, src_port)`` for fault application.
        self._link_map: Dict[Tuple[int, Direction], Link] = {}
        self._wire_mesh()
        self._wire_local()
        #: The batched struct-of-arrays cycle kernel (``repro.noc.kernel``),
        #: or None when the object loops run.  Built only when the config
        #: asks for it *and* sits inside the batchable domain; otherwise
        #: ``backend="batched"`` silently falls back to the object model,
        #: so fault experiments keep the bit-accurate path (docs/KERNEL.md).
        self.kernel: Optional[BatchedKernel] = None
        if config.backend == "batched" and kernel_supports(config) is None:
            self.kernel = BatchedKernel(self)
        if self.telemetry is not None:
            self.telemetry.attach(self)

        self.cycle = 0
        self.delivered = 0
        self.lost = 0
        # Scheduled reverse-path E2E messages as plain data records
        # (cycle, seq, kind, node, packet_id) rather than closures: the
        # heap is part of the checkpointable state (docs/CHECKPOINTING.md)
        # and pickled closures would not round-trip.
        self._events: List[Tuple[int, int, str, int, int]] = []
        self._event_seq = 0
        self._send_history: Deque[int] = deque(
            [0] * noc.retx_buffer_depth, maxlen=noc.retx_buffer_depth
        )
        self._retx_capacity = sum(r.retx_capacity for r in self.routers)
        self._tx_capacity = sum(r.buffer_capacity for r in self.routers)

        # Permanent-fault lifecycle state.
        for router in self.routers:
            router.casualty_hook = self.note_packet_casualty
        self._dead_links: Set[Tuple[int, Direction]] = set()
        self._dead_routers: Set[int] = set()
        #: Packets destroyed by permanent faults, deduplicated so each is
        #: counted lost exactly once however many of its flits die.
        self._lost_packets: Set[int] = set()
        #: True once any hard fault can occur (a schedule, or wear-out
        #: escalation): enables the NI-side reachability filter (zero
        #: overhead on fault-free platforms).
        self.degraded = may_lose_components
        #: The intermittent/wear-out lifecycle, or None without burst
        #: sites.  Built after wiring so it can hold the same Link objects
        #: as ``_link_map`` (the wear-out utilization gauge); advanced
        #: eagerly once per cycle at the top of :meth:`step`, identically
        #: ahead of both object loops, from per-site RNG streams disjoint
        #: from the injector's shared transient stream.
        self.lifecycle: Optional[IntermittentLifecycle] = None
        if intermittent:
            lifecycle = IntermittentLifecycle(
                intermittent, wear_out, config.faults.seed
            )
            lifecycle.stats = self.stats
            lifecycle.telemetry = self.telemetry
            lifecycle.log = self.injector.log
            for site in lifecycle.sites:
                lifecycle.links[site.fault.key] = self._link_map[site.fault.key]
            self.injector.lifecycle = lifecycle
            self.lifecycle = lifecycle
        self._pending_faults: List[PermanentFault] = (
            schedule.sorted_by_cycle() if schedule else []
        )
        self._fault_index = 0
        self._next_fault_cycle: Optional[int] = None
        self._advance_fault_cursor()
        if self._next_fault_cycle == 0:
            # Dead-on-arrival components: applied before any flit moves.
            self._apply_due_faults()

    # -- wiring ---------------------------------------------------------------

    def _wire_mesh(self) -> None:
        for node in self.topology.nodes():
            for direction in self.topology.connected_directions(node):
                neighbor = self.topology.neighbor(node, direction)
                assert neighbor is not None
                link = Link(
                    node,
                    direction,
                    neighbor,
                    direction.opposite,
                    latency=self.topology.link_latency(node, direction),
                )
                # Forward traffic (flits, probes) is consumed by the
                # neighbor's receive phase; reverse traffic (credits,
                # NACKs) by this router's.
                link.wire_wakes(
                    self._router_rx_pending, neighbor,
                    self._router_rx_pending, node,
                    deferred=self._deferred_wakes,
                )
                self.links.append(link)
                self._link_map[(node, direction)] = link
                self.routers[node].attach_output_link(int(direction), link)
                self.routers[neighbor].attach_input_link(
                    int(direction.opposite), link
                )

    def _wire_local(self) -> None:
        local = Direction.LOCAL
        for node in self.topology.nodes():
            inj = Link(node, local, node, local, is_local=True)
            ej = Link(node, local, node, local, is_local=True)
            # Injection flits wake the router; ejection flits wake the NI.
            # Neither local link needs a reverse wake: the ejection channel
            # never carries credits (the NI sinks flits immediately), and
            # credits returning to the NI on the injection link are a pure
            # accumulation the NI reads whenever it next has something to
            # send — an NI with queued packets stays in the injection
            # active set until drained, so it observes them on time.
            inj.wire_wakes(self._router_rx_pending, node, None, -1)
            ej.wire_wakes(self._ni_rx_pending, node, None, -1)
            self.links.extend((inj, ej))
            self.interfaces[node].inj_link = inj
            self.routers[node].attach_input_link(int(local), inj)
            self.routers[node].attach_output_link(int(local), ej)
            self.interfaces[node].ej_link = ej

    # -- event scheduling (contention-free reverse-path messages) -------------

    #: Dispatch table for :meth:`schedule` records.  Kinds map to the NI
    #: methods modelling the contention-free reverse path of the E2E scheme
    #: (ACK releases the source copy, NACK triggers a retransmission).
    EVENT_KINDS = ("e2e_release", "e2e_retransmit")

    def schedule(self, cycle: int, kind: str, node: int, packet_id: int) -> None:
        if kind not in self.EVENT_KINDS:  # pragma: no cover - programming error
            raise ValueError(f"unknown scheduled-event kind {kind!r}")
        self._event_seq += 1
        heapq.heappush(
            self._events, (cycle, self._event_seq, kind, node, packet_id)
        )

    def _run_due_events(self) -> None:
        while self._events and self._events[0][0] <= self.cycle:
            _, _, kind, node, packet_id = heapq.heappop(self._events)
            ni = self.interfaces[node]
            if kind == "e2e_release":
                ni.release(packet_id)
            else:
                ni.retransmit(packet_id)

    # -- permanent faults -------------------------------------------------------

    def _validate_schedule(self, schedule: PermanentFaultSchedule) -> None:
        num_nodes = self.topology.num_nodes
        for fault in schedule:
            if fault.node >= num_nodes:
                raise ValueError(
                    f"permanent fault names node {fault.node} but the "
                    f"topology has {num_nodes} nodes"
                )
            if fault.kind in ("link", "vc"):
                assert fault.direction is not None
                if fault.direction not in self.topology.connected_directions(
                    fault.node
                ):
                    raise ValueError(
                        f"permanent fault names link "
                        f"{fault.node}:{fault.direction.name.lower()} "
                        "but no such link exists in this topology"
                    )
            if fault.kind == "vc":
                assert fault.vc is not None
                if fault.vc >= self.config.noc.num_vcs:
                    raise ValueError(
                        f"permanent fault names VC {fault.vc} but the "
                        f"platform has {self.config.noc.num_vcs} VCs"
                    )

    def _validate_intermittent(
        self, schedule: IntermittentFaultSchedule
    ) -> None:
        num_nodes = self.topology.num_nodes
        for fault in schedule:
            if fault.node >= num_nodes:
                raise ValueError(
                    f"intermittent fault names node {fault.node} but the "
                    f"topology has {num_nodes} nodes"
                )
            if fault.direction not in self.topology.connected_directions(
                fault.node
            ):
                raise ValueError(
                    f"intermittent fault names link "
                    f"{fault.node}:{fault.direction.name.lower()} "
                    "but no such link exists in this topology"
                )

    def _advance_lifecycle(self) -> None:
        """Advance every burst process by one cycle and escalate worn-out
        sites.  Runs at the top of :meth:`step` right after scheduled
        faults — identically ahead of both cycle loops — and draws only
        from per-site streams, so the shared transient stream (and with it
        the fast-path equivalence) is untouched."""
        lifecycle = self.lifecycle
        assert lifecycle is not None
        due = lifecycle.advance(self.cycle)
        for site in due:
            self._escalate_site(site)

    def _escalate_site(self, site: "_SiteState") -> None:
        """Wear-out escalation: the site's accumulated stress crossed the
        threshold, so its link dies *now* — the same teardown, counters,
        reroute recomputation and telemetry as a scheduled
        :class:`PermanentFault` link death at this cycle."""
        fault = site.fault
        site.escalated = True
        if (
            fault.key in self._dead_links
            or fault.node in self._dead_routers
        ):
            # Already dead through another path (scheduled death, router
            # kill): nothing left to escalate.
            return
        lifecycle = self.lifecycle
        assert lifecycle is not None
        self.stats.count("wear_out_escalations")
        if self.telemetry is not None:
            self.telemetry.publish(
                self.cycle,
                "wear_out_escalation",
                fault.node,
                direction=fault.direction.name.lower(),
                strikes=site.strikes,
                stress=lifecycle.stress(site),
            )
        self._apply_fault(
            PermanentFault(
                kind="link",
                node=fault.node,
                direction=fault.direction,
                cycle=self.cycle,
            )
        )
        self._reconfigure_routing()

    def _advance_fault_cursor(self) -> None:
        if self._fault_index < len(self._pending_faults):
            self._next_fault_cycle = max(
                self._pending_faults[self._fault_index].cycle, 0
            )
        else:
            self._next_fault_cycle = None

    def _apply_due_faults(self) -> None:
        """Apply every fault scheduled at or before the current cycle, then
        reconfigure routing once.  Runs at the top of :meth:`step` —
        identically ahead of both cycle loops — and draws no randomness, so
        the fast path stays bit-for-bit equivalent to the polling loop."""
        applied = False
        while (
            self._next_fault_cycle is not None
            and self._next_fault_cycle <= self.cycle
        ):
            fault = self._pending_faults[self._fault_index]
            self._fault_index += 1
            self._advance_fault_cursor()
            self._apply_fault(fault)
            applied = True
        if applied:
            self._reconfigure_routing()

    def _apply_fault(self, fault: PermanentFault) -> None:
        self.stats.count("permanent_faults_applied")
        if self.telemetry is not None:
            self.telemetry.publish(
                self.cycle,
                "permanent_fault",
                fault.node,
                kind=fault.kind,
                direction=(
                    fault.direction.name.lower() if fault.direction else None
                ),
                vc=fault.vc,
            )
        if fault.kind == "link":
            assert fault.direction is not None
            self._kill_link(fault.node, fault.direction)
        elif fault.kind == "router":
            self._kill_router(fault.node)
        else:
            assert fault.direction is not None and fault.vc is not None
            self._kill_vc(fault.node, fault.direction, fault.vc)

    def _account_lost_flits(self, lost: List[Flit]) -> None:
        if not lost:
            return
        self.stats.count("permanent_fault_flits_dropped", len(lost))
        for flit in lost:
            self.note_packet_casualty(flit.packet_id)

    def _kill_link(self, node: int, direction: Direction) -> None:
        key = (node, direction)
        if key in self._dead_links:
            return
        self._dead_links.add(key)
        link = self._link_map[key]
        lost: List[Flit] = [t.flit for t in link.flits.peek_pending()]
        link.kill()
        src_router = self.routers[link.src_node]
        dst_router = self.routers[link.dst_node]
        if not src_router.dead:
            lost.extend(src_router.on_output_dead(self.cycle, int(direction)))
        if not dst_router.dead:
            lost.extend(
                dst_router.on_input_dead(self.cycle, int(link.dst_port))
            )
        self._account_lost_flits(lost)

    def _kill_router(self, node: int) -> None:
        if node in self._dead_routers:
            return
        self._dead_routers.add(node)
        # Every mesh link touching the router dies with it (each tears down
        # the wormholes crossing it at the surviving endpoint) ...
        for direction in self.topology.connected_directions(node):
            self._kill_link(node, direction)
            neighbor = self.topology.neighbor(node, direction)
            if neighbor is not None:
                self._kill_link(neighbor, direction.opposite)
        # ... as do the local links and the NI behind them.
        ni = self.interfaces[node]
        lost: List[Flit] = []
        for local_link in (ni.inj_link, ni.ej_link):
            if local_link is not None:
                lost.extend(t.flit for t in local_link.flits.peek_pending())
                local_link.kill()
        lost.extend(self.routers[node].on_router_dead(self.cycle))
        ni.on_router_dead()
        self._account_lost_flits(lost)

    def _kill_vc(self, node: int, direction: Direction, vc: int) -> None:
        """Kill one VC buffer: the input VC fed by the link leaving
        ``node`` through ``direction``, together with the upstream output
        channel that targets it.  The link itself survives (its other VCs
        keep flowing) unless this was its last living VC."""
        lost: List[Flit] = []
        src_router = self.routers[node]
        if not src_router.dead:
            lost.extend(
                src_router._kill_output_channel(self.cycle, int(direction), vc)
            )
        neighbor = self.topology.neighbor(node, direction)
        if neighbor is not None and not self.routers[neighbor].dead:
            lost.extend(
                self.routers[neighbor].on_vc_dead(
                    self.cycle, int(direction.opposite), vc
                )
            )
        self._account_lost_flits(lost)
        if (node, direction) not in self._dead_links and all(
            channel.dead for channel in src_router.outputs[int(direction)]
        ):
            # Last VC gone: the channel is useless; kill the link so the
            # routing tables stop steering packets into it.
            self._kill_link(node, direction)

    def _reconfigure_routing(self) -> None:
        """Rebuild fault-aware tables and flush every router's memoized
        routing decisions (the PR-2 caches) after a topology change."""
        fn = self.routing_fn
        if isinstance(fn, FaultAwareRouting):
            fn.rebuild(self._dead_links, self._dead_routers)
            self.stats.count("reroute_recomputations")
            if self.telemetry is not None:
                self.telemetry.publish(
                    self.cycle,
                    "reroute",
                    dead_links=len(self._dead_links),
                    dead_routers=len(self._dead_routers),
                )
        for router in self.routers:
            if not router.dead:
                router.invalidate_route_cache()

    def is_reachable(self, src: int, dst: int) -> bool:
        """Whether the current routing can deliver ``src -> dst``."""
        fn = self.routing_fn
        if isinstance(fn, FaultAwareRouting):
            return fn.is_reachable(src, dst)
        return dst not in self._dead_routers and src not in self._dead_routers

    def note_packet_casualty(self, packet_id: int) -> None:
        """A permanent fault destroyed (part of) this packet: under
        tail-based reassembly it can never complete, so it is counted lost
        — exactly once, however many of its flits die."""
        if packet_id in self._lost_packets:
            return
        self._lost_packets.add(packet_id)
        self.stats.count("packets_lost")
        self.note_lost()
        if self.telemetry is not None:
            self.telemetry.publish(
                self.cycle, "packet_lost", packet=packet_id, reason="casualty"
            )

    # -- delivery accounting ----------------------------------------------------

    def note_delivered(self) -> None:
        self.delivered += 1

    def note_lost(self) -> None:
        self.lost += 1

    @property
    def completed(self) -> int:
        """Messages that reached a final outcome (delivered or lost)."""
        return self.delivered + self.lost

    # -- the cycle loop ---------------------------------------------------------

    def step(self) -> None:
        """Advance the whole system by one cycle.

        Dispatches to the activity-driven loop (default) or the full
        polling loop; both produce bit-for-bit identical runs.
        """
        next_fault = self._next_fault_cycle
        if next_fault is not None and next_fault <= self.cycle:
            self._apply_due_faults()
        if self.lifecycle is not None:
            self._advance_lifecycle()
        if self._deferred_wakes:
            # Signals pushed onto slow (multi-cycle) links become due now:
            # land their consumers in the wake sets before dispatch, exactly
            # as a 1-cycle link would have done at push time.
            bucket = self._deferred_wakes.pop(self.cycle, None)
            if bucket is not None:
                for wake_set, node in bucket:
                    wake_set.add(node)
        kernel = self.kernel
        if kernel is not None:
            kernel.step()
        elif self._activity_driven:
            self._step_active()
        else:
            self._step_full()

    def _step_full(self) -> None:
        """The reference loop: poll every component every cycle."""
        cycle = self.cycle
        for ni in self.interfaces:
            ni.receive(cycle)
        self._run_due_events()
        for router in self.routers:
            router.receive(cycle)
        for ni in self.interfaces:
            ni.inject(cycle)
        sends = 0
        for router in self.routers:
            sends += router.compute(cycle)
        self._send_history.append(sends)
        if self.config.collect_utilization:
            self._sample_utilization()
        tel = self.telemetry
        if tel is not None:
            tel.on_cycle_end(self)
        self.stats.cycles += 1
        self.cycle += 1

    def _step_active(self) -> None:
        """The activity-driven loop: visit only components with work.

        Equivalence argument (details in ``docs/PERFORMANCE.md``): a
        skipped component performs no state change and draws no fault-
        injector randomness in the full loop, because every phase of
        :class:`NetworkInterface` and :class:`Router` is a no-op without
        link arrivals or buffered work.  Active components are visited in
        ascending node order — the same order the full loop uses — so the
        shared RNG stream, and therefore every injected fault, is
        identical.  The one deliberate deferral is credit consumption by a
        fully drained NI: credits accumulate on the injection link until
        the NI next has a packet, and ``pop_due`` then delivers the same
        total (credit arithmetic is order- and time-insensitive, and the
        NI's credit path draws no randomness).
        """
        cycle = self.cycle
        interfaces = self.interfaces
        routers = self.routers

        ni_rx = self._ni_rx_pending
        if ni_rx:
            todo = sorted(ni_rx)
            ni_rx.clear()
            for node in todo:
                interfaces[node].receive(cycle)
        self._run_due_events()

        router_rx = self._router_rx_pending
        active = self._router_active
        if router_rx:
            todo = sorted(router_rx)
            router_rx.clear()
            for node in todo:
                routers[node].receive(cycle)
                # Added unconditionally: compute on a traffic-less router
                # (e.g. after a credit-only receive) is a free no-op, and
                # the compute phase prunes it again — cheaper than probing
                # buffer occupancy here.
                active.add(node)

        ni_tx = self._ni_tx_active
        if ni_tx:
            drained: List[int] = []
            for node in sorted(ni_tx):
                ni = interfaces[node]
                ni.inject(cycle)
                if ni.queued_packets == 0:
                    drained.append(node)
            if drained:
                ni_tx.difference_update(drained)

        sends = 0
        if active:
            quiescent: List[int] = []
            for node in sorted(active):
                router = routers[node]
                sends += router.compute(cycle)
                if not router.has_traffic:
                    quiescent.append(node)
            if quiescent:
                active.difference_update(quiescent)

        self._send_history.append(sends)
        if self.config.collect_utilization:
            self._sample_utilization()
        tel = self.telemetry
        if tel is not None:
            tel.on_cycle_end(self)
        self.stats.cycles += 1
        self.cycle += 1

    def verify_activity_invariants(self) -> None:
        """Assert the active sets cover every component that has work.

        Called between steps (tests, the equivalence suite).  Violations
        mean the activity-driven loop could skip live work — exactly the
        bug class the fast path must never exhibit.
        """
        for router in self.routers:
            if router.has_traffic and router.node not in self._router_active:
                raise AssertionError(
                    f"router {router.node} has traffic but is not in the "
                    "compute active set"
                )
        for ni in self.interfaces:
            if ni.queued_packets and ni.node not in self._ni_tx_active:
                raise AssertionError(
                    f"NI {ni.node} has queued packets but is not in the "
                    "injection active set"
                )
        def _wake_scheduled(wake_set: Set[int], node: int) -> bool:
            if node in wake_set:
                return True
            # Slow links park their wakes in the deferred buckets until the
            # pushed signal's due cycle.
            return any(
                entry[0] is wake_set and entry[1] == node
                for bucket in self._deferred_wakes.values()
                for entry in bucket
            )

        for link in self.links:
            if len(link.flits) or len(link.control):
                wake_set = link._fwd_wake_set
                if wake_set is not None and not _wake_scheduled(
                    wake_set, link._fwd_wake_node
                ):
                    raise AssertionError(
                        f"{link!r} has in-flight forward traffic but its "
                        "consumer is not in the receive wake set"
                    )
            if len(link.credits) or len(link.nacks):
                wake_set = link._rev_wake_set
                if wake_set is not None and not _wake_scheduled(
                    wake_set, link._rev_wake_node
                ):
                    raise AssertionError(
                        f"{link!r} has in-flight reverse traffic but its "
                        "consumer is not in the receive wake set"
                    )

    def _sample_utilization(self) -> None:
        tx_occupied = sum(r.buffered_flits for r in self.routers)
        # A retransmission-buffer slot is live for the replay window after a
        # send (the barrel shifter holds the flit until a NACK can no longer
        # arrive) plus any replay/absorption occupancy.
        retx_occupied = sum(self._send_history) + sum(
            r.retx_pending_flits for r in self.routers
        )
        self.stats.record_utilization(
            tx_occupied,
            self._tx_capacity,
            min(retx_occupied, self._retx_capacity),
            self._retx_capacity,
        )

    def run_cycles(self, cycles: int) -> None:
        """Advance a fixed number of cycles (tests and scripted scenarios)."""
        for _ in range(cycles):
            self.step()

    def finalize_stats(self) -> None:
        """Fold per-router controller/handshake counters into the collector.

        Idempotent; called once when a result is built.
        """
        if getattr(self, "_stats_finalized", False):
            return
        self._stats_finalized = True
        probes_sent = probes_discarded = 0
        masked = lost_signals = 0
        for router in self.routers:
            if router.deadlock is not None:
                probes_sent += router.deadlock.probes_sent
                probes_discarded += router.deadlock.probes_discarded
            masked += router.handshake.glitches_masked
            lost_signals += router.handshake.signals_lost
        if probes_sent:
            self.stats.count("probes_sent", probes_sent)
        if probes_discarded:
            self.stats.count("probes_discarded", probes_discarded)
        if masked:
            self.stats.count("handshake_glitches_masked", masked)
        if lost_signals:
            self.stats.count("handshake_signals_lost", lost_signals)

    @property
    def in_flight_flits(self) -> int:
        if self.kernel is not None:
            return self.kernel.in_flight_flits
        buffered = sum(r.buffered_flits for r in self.routers)
        on_links = sum(len(link.flits) for link in self.links)
        pending_out = sum(r.retx_pending_flits for r in self.routers)
        return buffered + on_links + pending_out

    def __repr__(self) -> str:
        shape = "x".join(str(d) for d in self.topology.shape)
        return (
            f"Network({shape}, "
            f"cycle={self.cycle}, delivered={self.delivered})"
        )
