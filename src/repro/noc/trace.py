"""Non-invasive packet tracing.

A :class:`PacketTracer` snapshots, each cycle, where the flits of watched
packets are — input VC buffers, link pipelines, replay/absorption queues or
source queues — by scanning the network state.  Because it only *reads*,
it adds zero overhead when unused and cannot perturb simulation outcomes.

Intended for debugging and for the ``examples/trace_packet.py`` walkthrough
of a flit's journey (including retransmission events, which show up as a
flit re-appearing on a link it already crossed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.noc.network import Network
from repro.types import Direction


@dataclass(frozen=True)
class FlitSighting:
    """One watched flit observed at one location in one cycle."""

    cycle: int
    packet_id: int
    flit_seq: int
    location: str  # human-readable, stable format (see _scan)

    def __str__(self) -> str:
        return f"[{self.cycle:>5}] p{self.packet_id}.{self.flit_seq} @ {self.location}"


@dataclass
class PacketTrace:
    """All sightings of one packet, in cycle order."""

    packet_id: int
    sightings: List[FlitSighting] = field(default_factory=list)

    def journey(self, flit_seq: int) -> List[FlitSighting]:
        return [s for s in self.sightings if s.flit_seq == flit_seq]

    def locations_visited(self) -> List[str]:
        seen: List[str] = []
        for s in self.sightings:
            if not seen or seen[-1] != s.location:
                seen.append(s.location)
        return seen

    def link_crossings(self, flit_seq: int) -> int:
        """Times the flit was observed in flight on an inter-router link;
        a count above its hop count means it was retransmitted."""
        return sum(
            1
            for s in self.journey(flit_seq)
            if s.location.startswith("link ") and "LOCAL" not in s.location
        )


class PacketTracer:
    """Scans a network each cycle for the flits of watched packets."""

    def __init__(self, network: Network, watch: Iterable[int], telemetry=None):
        if network.kernel is not None:
            # The batched kernel keeps flit state in flat token arrays, not
            # Flit objects, so there is nothing for _scan to walk.  Tracing
            # is a debugging aid; run it on the object backend.
            raise ValueError(
                "PacketTracer cannot observe a batched-kernel network; "
                "construct the run with backend='object' to trace packets"
            )
        self.network = network
        self.watch: Set[int] = set(watch)
        self.traces: Dict[int, PacketTrace] = {
            pid: PacketTrace(pid) for pid in self.watch
        }
        #: Telemetry bus sightings are mirrored onto (``trace_sighting``
        #: events, very chatty).  Defaults to the network's own bus; pass
        #: an explicit bus to divert, or ``False`` to disable mirroring.
        self.telemetry = network.telemetry if telemetry is None else telemetry or None

    def step_and_observe(self) -> None:
        """Advance the network one cycle, then record sightings."""
        self.network.step()
        self.observe()

    def observe(self) -> None:
        cycle = self.network.cycle
        bus = self.telemetry
        for packet_id, flit_seq, location in self._scan():
            if packet_id in self.watch:
                self.traces[packet_id].sightings.append(
                    FlitSighting(cycle, packet_id, flit_seq, location)
                )
                if bus is not None:
                    bus.publish(
                        cycle,
                        "trace_sighting",
                        packet=packet_id,
                        flit=flit_seq,
                        location=location,
                    )

    def _scan(self):
        net = self.network
        for router in net.routers:
            node = router.node
            for port_vcs in router.inputs:
                for ivc in port_vcs:
                    for flit in ivc.buffer:
                        yield (
                            flit.packet_id,
                            flit.seq,
                            f"router {node} in[{Direction(ivc.port).name}].vc{ivc.vc}",
                        )
            for port, channels in enumerate(router.outputs):
                for channel in channels:
                    for _, flit in channel.replay_queue:
                        yield (
                            flit.packet_id,
                            flit.seq,
                            f"router {node} replay[{Direction(port).name}].vc{channel.vc}",
                        )
                    for flit in channel.absorption_queue:
                        yield (
                            flit.packet_id,
                            flit.seq,
                            f"router {node} retxbuf[{Direction(port).name}].vc{channel.vc}",
                        )
        for link in net.links:
            kind = "LOCAL" if link.is_local else "mesh"
            for transfer in link.flits.peek_pending():
                yield (
                    transfer.flit.packet_id,
                    transfer.flit.seq,
                    f"link {link.src_node}.{link.src_port.name}->"
                    f"{link.dst_node} ({kind})",
                )
        for ni in net.interfaces:
            for packet in ni.pending:
                yield (packet.packet_id, 0, f"NI {ni.node} source queue")

    def trace(self, packet_id: int) -> PacketTrace:
        return self.traces[packet_id]

    def run_until_delivered(
        self, expected: int, max_cycles: int = 10_000
    ) -> Optional[int]:
        """Drive the network (observing each cycle) until ``expected``
        packets complete; returns the cycle, or None on timeout."""
        for _ in range(max_cycles):
            if self.network.completed >= expected:
                return self.network.cycle
            self.step_and_observe()
        return None
