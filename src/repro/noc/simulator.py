"""The simulation driver.

Reproduces the paper's methodology (Section 2.2): traffic is injected at a
configured rate until a target number of messages has been ejected, the
first ``warmup_messages`` ejections are excluded from measurement, and the
run reports average message latency, energy per message and the error/
recovery counters.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.config import SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.power.energy import EnergyModel
from repro.telemetry.report import TelemetryReport
from repro.traffic.injection import InjectionProcess, PeriodicInjection
from repro.traffic.patterns import TrafficPattern, make_traffic_pattern


@dataclass
class SimulationResult:
    """Everything a run produced, in experiment-friendly form."""

    config: SimulationConfig
    cycles: int
    packets_injected: int
    packets_delivered: int
    packets_lost: int
    measured_packets: int
    avg_latency: float
    avg_hops: float
    energy_per_packet_nj: float
    tx_buffer_utilization: float
    retx_buffer_utilization: float
    counters: Dict[str, int] = field(default_factory=dict)
    energy_events: Dict[str, int] = field(default_factory=dict)
    hit_cycle_limit: bool = False
    #: The run's :class:`~repro.telemetry.report.TelemetryReport`, or None
    #: when telemetry was disabled.  Excluded from equality so telemetry-on
    #: and telemetry-off runs of the same config compare equal on the
    #: simulation observables.
    telemetry: Optional[TelemetryReport] = field(default=None, compare=False)

    @property
    def throughput_flits_per_node_cycle(self) -> float:
        """Accepted traffic over the whole run (delivered flits rate)."""
        if self.cycles == 0:
            return 0.0
        flits = self.packets_delivered * self.config.noc.flits_per_packet
        return flits / (self.cycles * self.config.noc.num_nodes)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def to_dict(self, include_config: bool = True) -> Dict[str, Any]:
        """JSON-safe dict form (see :func:`repro.serialization.result_to_dict`)."""
        from repro.serialization import result_to_dict

        return result_to_dict(self, include_config=include_config)

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], config: Optional[SimulationConfig] = None
    ) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (telemetry reports do not round-trip)."""
        from repro.serialization import result_from_dict

        return result_from_dict(data, config=config)

    def summary_lines(self) -> str:
        lines = [
            f"cycles                 {self.cycles}",
            f"packets injected       {self.packets_injected}",
            f"packets delivered      {self.packets_delivered}",
            f"packets lost           {self.packets_lost}",
            f"avg latency (cycles)   {self.avg_latency:.2f}",
            f"avg hops               {self.avg_hops:.2f}",
            f"energy/packet (nJ)     {self.energy_per_packet_nj:.4f}",
        ]
        return "\n".join(lines)


class Simulator:
    """Drives a :class:`Network` with generated traffic to completion."""

    def __init__(
        self,
        config: SimulationConfig,
        pattern: Optional[TrafficPattern] = None,
        injection: Optional[InjectionProcess] = None,
        energy_model: Optional[EnergyModel] = None,
    ):
        self.config = config
        self.network = Network(config)
        self.rng = random.Random(config.workload.seed)
        self.pattern = pattern or make_traffic_pattern(
            config.workload.pattern, self.network.topology
        )
        self.injection = injection or PeriodicInjection(
            config.noc.num_nodes,
            config.workload.injection_rate,
            config.noc.flits_per_packet,
        )
        self.energy_model = energy_model or EnergyModel()
        self._next_packet_id = 0
        #: Set while :meth:`should_continue` trips the max_cycles guard, so
        #: a resumed run rebuilds the same result as an uninterrupted one.
        self._hit_limit = False
        #: Cycle this simulator was restored at by
        #: :func:`repro.checkpoint.load_checkpoint`, or None for a fresh
        #: run.  Deliberately *not* a stats counter: resumed and
        #: uninterrupted runs must produce identical counters.
        self.resumed_from_cycle: Optional[int] = None
        self.sanitizer = None
        if config.invariant_checks:
            from repro.analysis.sanitizer import InvariantSanitizer

            self.sanitizer = InvariantSanitizer(
                self.network, raise_on_violation=True
            )

    # -- traffic generation -----------------------------------------------------

    def _generate_traffic(self, cycle: int) -> None:
        for node in range(self.config.noc.num_nodes):
            if not self.injection.fires(node, cycle, self.rng):
                continue
            dst = self.pattern.destination(node, self.rng)
            if dst is None:
                continue
            packet = Packet(
                packet_id=self._next_packet_id,
                src=node,
                dst=dst,
                num_flits=self.config.noc.flits_per_packet,
                injection_cycle=cycle,
            )
            self._next_packet_id += 1
            self.network.interfaces[node].enqueue(packet)
            self.network.stats.packets_injected += 1

    # -- the run loop --------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run (or, after :func:`repro.checkpoint.load_checkpoint`, finish)
        the closed-loop schedule and build the result.

        All loop state lives on the simulator/network objects — not in
        locals — so a checkpointed simulator resumes mid-run bit-for-bit.
        """
        while self.should_continue():
            self.advance()
        return self._build_result(self._hit_limit)

    def should_continue(self) -> bool:
        """True while the closed-loop run has cycles left to simulate."""
        workload = self.config.workload
        if self.network.completed >= workload.num_messages:
            return False
        if self.network.cycle >= workload.max_cycles:
            self._hit_limit = True
            return False
        return True

    def advance(self) -> None:
        """One closed-loop scheduling quantum: inject traffic, open the
        measurement window once warmup completes, step the network, run the
        optional sanitizer, and honour the auto-checkpoint schedule."""
        stats = self.network.stats
        self._generate_traffic(self.network.cycle)
        if (
            not stats.measuring
            and self.network.completed >= self.config.workload.warmup_messages
        ):
            stats.start_measurement()
        self.network.step()
        if self.sanitizer is not None:
            self._checked_sanitize()
        interval = self.config.checkpoint_interval
        if interval is not None and self.network.cycle % interval == 0:
            self.write_checkpoint()

    def run_to_cycle(self, cycle: int) -> None:
        """Advance the closed-loop schedule up to ``cycle`` (stopping early
        at the run's natural end) without building a result — the partial-run
        primitive behind checkpoint tests and the overhead benchmark."""
        while self.network.cycle < cycle and self.should_continue():
            self.advance()

    def write_checkpoint(self, path: Optional[str] = None) -> None:
        """Snapshot this simulator to ``path`` (default: the configured
        ``checkpoint_path``).  Counted as ``checkpoints_written`` *before*
        pickling, so the snapshot already includes its own write and a
        resumed run's counters match an uninterrupted one."""
        from repro.checkpoint import save_checkpoint

        target = path if path is not None else self.config.checkpoint_path
        if target is None:
            raise ValueError(
                "no checkpoint path: pass path= or set "
                "SimulationConfig.checkpoint_path"
            )
        self.network.stats.count("checkpoints_written")
        save_checkpoint(self, target)

    def run_cycles(self, cycles: int, measure_from: int = 0) -> SimulationResult:
        """Run a fixed number of cycles (open-loop experiments)."""
        stats = self.network.stats
        for i in range(cycles):
            if i == measure_from:
                stats.start_measurement()
            self._generate_traffic(self.network.cycle)
            self.network.step()
            if self.sanitizer is not None:
                self._checked_sanitize()
        return self._build_result(False)

    def _checked_sanitize(self) -> None:
        """Run the invariant sanitizer; on a violation, dump the telemetry
        flight recorder onto the exception (``exc.flight_record``) so the
        last events before the violation survive the crash."""
        try:
            self.sanitizer.check()
        except Exception as exc:
            bus = self.network.telemetry
            if bus is not None:
                bus.publish(
                    self.network.cycle,
                    "sanitizer_violation",
                    error=type(exc).__name__,
                    message=str(exc)[:200],
                )
                exc.flight_record = bus.flight_dicts()
            raise

    def _build_result(self, hit_limit: bool) -> SimulationResult:
        self.network.finalize_stats()
        stats = self.network.stats
        energy_events = dict(stats.energy_events)
        if self.config.collect_power and stats.measured_packets:
            energy = self.energy_model.energy_per_packet_nj(
                energy_events, stats.measured_packets
            )
        else:
            energy = 0.0
        bus = self.network.telemetry
        telemetry_report = (
            bus.build_report(self.network) if bus is not None else None
        )
        return SimulationResult(
            config=self.config,
            cycles=stats.cycles,
            packets_injected=stats.packets_injected,
            packets_delivered=self.network.delivered,
            packets_lost=self.network.lost,
            measured_packets=stats.measured_packets,
            avg_latency=stats.latency.mean,
            avg_hops=stats.hops.mean,
            energy_per_packet_nj=energy,
            tx_buffer_utilization=stats.tx_utilization.utilization,
            retx_buffer_utilization=stats.retx_utilization.utilization,
            counters=dict(stats.counters),
            energy_events=energy_events,
            hit_cycle_limit=hit_limit,
            telemetry=telemetry_report,
        )


def run_simulation(
    config: SimulationConfig,
    *,
    pattern: Optional[TrafficPattern] = None,
    injection: Optional[InjectionProcess] = None,
    energy_model: Optional[EnergyModel] = None,
    **deprecated: Any,
) -> SimulationResult:
    """One-call convenience wrapper used by examples and benchmarks.

    The keyword surface is explicit (pattern, injection, energy_model);
    unknown keywords are ignored with a :class:`DeprecationWarning` for
    callers of the old ``**kwargs`` passthrough.
    """
    if deprecated:
        warnings.warn(
            "run_simulation() no longer forwards arbitrary keyword "
            f"arguments; ignoring {sorted(deprecated)} (pass pattern=, "
            "injection= or energy_model=, or construct a Simulator "
            "directly)",
            DeprecationWarning,
            stacklevel=2,
        )
    return Simulator(
        config,
        pattern=pattern,
        injection=injection,
        energy_model=energy_model,
    ).run()
