"""Mesh and torus topologies, and the generic node/port-graph surface.

The paper evaluates an 8x8 MESH (Section 2.2); the torus is provided as the
natural extension (the tornado traffic pattern of [19] originates there) and
for ablation studies.  Both generalize to N dimensions via ``shape=``:
``MeshTopology(shape=(4, 4, 4))`` is a 3D mesh whose vertical (TSV)
channels use the :attr:`~repro.types.Direction.UP`/``DOWN`` ports, and
:class:`Mesh3D`/:class:`Torus3D` are the ready-made 3D instantiations with
slower vertical links (docs/TOPOLOGY.md).

A topology answers purely structural questions: node-id/coordinate mapping,
which ports are connected, who the neighbor on a port is, and how many
cycles a hop through a port takes (:meth:`MeshTopology.link_latency`).  It
owns no simulation state.

The static-analysis layer (channel-dependency graphs, the routing
certification engine) does not need coordinates at all — only the
:class:`PortGraph` surface: nodes, per-node ports, the neighbor behind a
port, and the *arrival port* a channel lands on at its downstream node.
:class:`MeshTopology` satisfies it natively; :class:`GraphTopology` lifts
any irregular node/port graph (a chiplet hierarchy, a degraded mesh with
whole regions removed, a test fixture) onto the same surface so the
verifiers work unchanged on topologies the simulator does not ship yet.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.types import AXIS_DIRECTIONS, Coordinate, Direction

LatencySpec = Union[int, Sequence[int]]


@runtime_checkable
class PortGraph(Protocol):
    """The minimal structural surface static analysis routes over.

    Node ids and port labels may be anything hashable and mutually
    sortable (ints, strings, tuples); :class:`MeshTopology` uses ints and
    :class:`~repro.types.Direction`.  ``arrival_port`` must be consistent
    with ``neighbor``: for every channel ``(node, port)`` with a live
    reverse channel, ``neighbor(neighbor(node, port), arrival_port(node,
    port)) == node``.

    Implementations may additionally expose ``link_latency(node, port) ->
    int`` (cycles per hop through that port); consumers treat a missing
    method as uniform 1-cycle links.
    """

    @property
    def num_nodes(self) -> int: ...

    def nodes(self) -> Iterator[Any]: ...

    def connected_directions(self, node: Any) -> List[Any]: ...

    def neighbor(self, node: Any, port: Any) -> Optional[Any]: ...

    def arrival_port(self, node: Any, port: Any) -> Optional[Any]: ...


def _normalize_shape(
    width: Optional[int],
    height: Optional[int],
    shape: Optional[Sequence[int]],
) -> Tuple[int, ...]:
    if shape is not None:
        if width is not None or height is not None:
            raise ValueError("pass either shape= or width/height, not both")
        dims = tuple(int(d) for d in shape)
    else:
        if width is None or height is None:
            raise ValueError("a mesh needs width and height (or shape=)")
        dims = (int(width), int(height))
    if len(dims) not in (2, 3):
        raise ValueError(
            f"only 2D and 3D topologies are supported, got shape {dims}"
        )
    if any(d < 1 for d in dims):
        raise ValueError("mesh dimensions must be positive")
    return dims


def _normalize_latency(spec: LatencySpec, ndim: int) -> Tuple[int, ...]:
    if isinstance(spec, int):
        latencies: Tuple[int, ...] = (spec,) * ndim
    else:
        latencies = tuple(int(v) for v in spec)
        if len(latencies) != ndim:
            raise ValueError(
                f"link_latency needs one entry per axis ({ndim}), got "
                f"{len(latencies)}"
            )
    if any(v < 1 for v in latencies):
        raise ValueError("link latencies must be >= 1 cycle")
    return latencies


class MeshTopology:
    """A ``width`` x ``height`` (x ``depth``) mesh.

    Node ids are row-major with x fastest: ``node = x + width * (y +
    height * z)``; x grows EAST, y grows NORTH and z grows UP, matching
    :attr:`repro.types.Direction.delta`.  2D meshes keep the historical
    ``node = y * width + x`` mapping bit-for-bit.

    ``link_latency`` is cycles per hop, either uniform (int) or per axis
    (tuple) — the TSV model makes vertical hops slower than planar ones.
    """

    def __init__(
        self,
        width: Optional[int] = None,
        height: Optional[int] = None,
        *,
        shape: Optional[Sequence[int]] = None,
        link_latency: LatencySpec = 1,
    ):
        self.shape = _normalize_shape(width, height, shape)
        self.axis_latency = _normalize_latency(link_latency, self.ndim)
        dirs: Tuple[Direction, ...] = (
            Direction.NORTH,
            Direction.EAST,
            Direction.SOUTH,
            Direction.WEST,
        )
        if self.ndim == 3:
            dirs += (Direction.UP, Direction.DOWN)
        self._directions = dirs

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def width(self) -> int:
        return self.shape[0]

    @property
    def height(self) -> int:
        return self.shape[1]

    @property
    def depth(self) -> int:
        """Extent of the z axis (1 for 2D meshes)."""
        return self.shape[2] if self.ndim > 2 else 1

    @property
    def num_nodes(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def num_ports(self) -> int:
        """Router ports: two per axis plus LOCAL (5 in 2D, 7 in 3D)."""
        return 2 * self.ndim + 1

    @property
    def directions(self) -> Tuple[Direction, ...]:
        """The inter-router directions this topology wires, in canonical
        (port-index) order."""
        return self._directions

    def coordinates_of(self, node: int) -> Coordinate:
        self._check_node(node)
        coords = []
        for extent in self.shape:
            coords.append(node % extent)
            node //= extent
        return Coordinate(*coords)

    def node_at(self, coord: Coordinate) -> int:
        if not self.contains(coord):
            raise ValueError(f"{tuple(coord)} outside {self!r}")
        node = 0
        for axis in reversed(range(self.ndim)):
            node = node * self.shape[axis] + coord[axis]
        return node

    def contains(self, coord: Sequence[int]) -> bool:
        if len(coord) > self.ndim and any(c != 0 for c in coord[self.ndim:]):
            return False
        return all(
            0 <= (coord[axis] if axis < len(coord) else 0) < self.shape[axis]
            for axis in range(self.ndim)
        )

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor node on ``direction``, or None at a mesh edge.

        LOCAL has no neighbor router (it connects to the PE), and axes the
        topology does not have (UP/DOWN on a 2D mesh) have no neighbor.
        """
        if direction is Direction.LOCAL or direction.axis >= self.ndim:
            return None
        coord = self.coordinates_of(node) + direction.delta
        return self.node_at(coord) if self.contains(coord) else None

    def connected_directions(self, node: int) -> List[Direction]:
        """Inter-router directions that have a link at ``node``."""
        return [d for d in self._directions if self.neighbor(node, d) is not None]

    def edge_directions(self, node: int) -> List[Direction]:
        """Directions that fall off the mesh at ``node`` (no link)."""
        return [d for d in self._directions if self.neighbor(node, d) is None]

    def arrival_port(self, node: int, direction: Direction) -> Optional[Direction]:
        """The port a flit sent from ``node`` via ``direction`` arrives on
        at the downstream router.  Mesh links come in bidirectional pairs,
        so this is simply the opposite direction (None off the edge)."""
        if direction is Direction.LOCAL or self.neighbor(node, direction) is None:
            return None
        return direction.opposite

    def link_latency(self, node: int, direction: Direction) -> int:
        """Cycles one flit spends traversing the ``(node, direction)``
        link (1 everywhere historically; vertical TSV hops may be slower)."""
        if direction is Direction.LOCAL:
            return 1
        return self.axis_latency[direction.axis]

    @property
    def max_link_latency(self) -> int:
        return max(self.axis_latency)

    def distance(self, a: int, b: int) -> int:
        """Minimal hop count between two nodes."""
        return self.coordinates_of(a).manhattan_distance(self.coordinates_of(b))

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        """All directions that reduce the distance to ``dst`` from ``src``,
        in axis order (E/W, then N/S, then UP/DOWN)."""
        if src == dst:
            return []
        a = self.coordinates_of(src)
        b = self.coordinates_of(dst)
        dirs = []
        for axis in range(self.ndim):
            positive, negative = AXIS_DIRECTIONS[axis]
            if b[axis] > a[axis]:
                dirs.append(positive)
            elif b[axis] < a[axis]:
                dirs.append(negative)
        return dirs

    def average_minimal_hops(self) -> float:
        """Mean minimal distance over all ordered src != dst pairs.

        Used by experiments to sanity-check latency floors.
        """
        total = 0
        pairs = 0
        for a in self.nodes():
            for b in self.nodes():
                if a != b:
                    total += self.distance(a, b)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside 0..{self.num_nodes - 1}")

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"{type(self).__name__}({dims})"


class TorusTopology(MeshTopology):
    """A torus: the mesh with wraparound links on every axis."""

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if direction is Direction.LOCAL or direction.axis >= self.ndim:
            return None
        coord = self.coordinates_of(node) + direction.delta
        wrapped = Coordinate(
            *(coord[axis] % self.shape[axis] for axis in range(self.ndim))
        )
        return self.node_at(wrapped)

    def distance(self, a: int, b: int) -> int:
        ca, cb = self.coordinates_of(a), self.coordinates_of(b)
        total = 0
        for axis in range(self.ndim):
            d = abs(ca[axis] - cb[axis])
            total += min(d, self.shape[axis] - d)
        return total

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return []
        a = self.coordinates_of(src)
        b = self.coordinates_of(dst)
        dirs = []
        for axis in range(self.ndim):
            positive, negative = AXIS_DIRECTIONS[axis]
            d = (b[axis] - a[axis]) % self.shape[axis]
            if d:
                if d <= self.shape[axis] - d:
                    dirs.append(positive)
                if d >= self.shape[axis] - d:
                    dirs.append(negative)
        return dirs


#: Default per-axis hop latency of the shipped 3D topologies: planar links
#: stay 1-cycle, vertical TSV hops cost 2 (the ``--vlink-slowdown`` model).
DEFAULT_TSV_LATENCY: Tuple[int, int, int] = (1, 1, 2)


class Mesh3D(MeshTopology):
    """A ``width x height x depth`` 3D mesh with TSV vertical links."""

    def __init__(
        self,
        width: int,
        height: int,
        depth: int,
        *,
        link_latency: LatencySpec = DEFAULT_TSV_LATENCY,
    ):
        super().__init__(shape=(width, height, depth), link_latency=link_latency)


class Torus3D(TorusTopology):
    """A ``width x height x depth`` 3D torus with TSV vertical links."""

    def __init__(
        self,
        width: int,
        height: int,
        depth: int,
        *,
        link_latency: LatencySpec = DEFAULT_TSV_LATENCY,
    ):
        super().__init__(shape=(width, height, depth), link_latency=link_latency)


def make_topology(
    name: str,
    shape: Sequence[int],
    link_latency: LatencySpec = 1,
) -> MeshTopology:
    """Build the topology a config names (shared by the network, the
    linter and the certification engine so they can never disagree)."""
    if name in ("torus", "torus3d"):
        return TorusTopology(shape=shape, link_latency=link_latency)
    if name in ("mesh", "mesh3d"):
        return MeshTopology(shape=shape, link_latency=link_latency)
    raise ValueError(f"unknown topology {name!r}")


class GraphTopology:
    """An arbitrary node/port graph behind the :class:`PortGraph` surface.

    Built from an adjacency mapping ``{node: {port: neighbor}}``: each entry
    is one directed channel leaving ``node`` through the port labelled
    ``port``.  Node ids and port labels may be any hashable, mutually
    sortable values; nodes appearing only as neighbors are added with no
    outgoing channels.  This is what lets the CDG verifier and the routing
    certification engine analyze irregular topologies (express links,
    chiplet bridges, hand-built test graphs) without a coordinate system.
    """

    def __init__(self, adjacency: Mapping[Any, Mapping[Any, Any]]):
        self._ports: Dict[Any, Dict[Any, Any]] = {
            node: dict(ports) for node, ports in adjacency.items()
        }
        for ports in list(self._ports.values()):
            for neighbor in ports.values():
                self._ports.setdefault(neighbor, {})
        self._node_order = sorted(self._ports)
        # Arrival ports: for channel (u, p) -> v, the smallest port of v
        # that leads back to u (None for one-way channels).
        self._arrival: Dict[Any, Dict[Any, Any]] = {}
        for node, ports in self._ports.items():
            for port, neighbor in ports.items():
                back = sorted(
                    q
                    for q, target in self._ports[neighbor].items()
                    if target == node
                )
                self._arrival.setdefault(node, {})[port] = (
                    back[0] if back else None
                )
        #: source -> {reachable node -> hops}, filled one BFS per source.
        self._distance_cache: Dict[Any, Dict[Any, int]] = {}

    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    def nodes(self) -> Iterator[Any]:
        return iter(self._node_order)

    def connected_directions(self, node: Any) -> List[Any]:
        return sorted(self._ports[node])

    def neighbor(self, node: Any, port: Any) -> Optional[Any]:
        return self._ports[node].get(port)

    def arrival_port(self, node: Any, port: Any) -> Optional[Any]:
        return self._arrival.get(node, {}).get(port)

    def link_latency(self, node: Any, port: Any) -> int:
        return 1

    def distance(self, a: Any, b: Any) -> int:
        """Minimal hop count ``a -> b`` over directed channels (-1 when
        unreachable).  Memoized: the first query from ``a`` runs one full
        BFS and caches every distance from ``a``, so table-routing
        construction over all pairs costs one BFS per source instead of
        one per query."""
        dist = self._distance_cache.get(a)
        if dist is None:
            dist = {a: 0}
            frontier = deque([a])
            while frontier:
                node = frontier.popleft()
                for port in self._ports[node]:
                    neighbor = self._ports[node][port]
                    if neighbor not in dist:
                        dist[neighbor] = dist[node] + 1
                        frontier.append(neighbor)
            self._distance_cache[a] = dist
        return dist.get(b, -1)

    def __repr__(self) -> str:
        num_channels = sum(len(p) for p in self._ports.values())
        return f"{type(self).__name__}({self.num_nodes} nodes, {num_channels} channels)"
