"""Mesh and torus topologies, and the generic node/port-graph surface.

The paper evaluates an 8x8 MESH (Section 2.2); the torus is provided as the
natural extension (the tornado traffic pattern of [19] originates there) and
for ablation studies.

A topology answers purely structural questions: node-id/coordinate mapping,
which ports are connected, and who the neighbor on a port is.  It owns no
simulation state.

The static-analysis layer (channel-dependency graphs, the routing
certification engine) does not need coordinates at all — only the
:class:`PortGraph` surface: nodes, per-node ports, the neighbor behind a
port, and the *arrival port* a channel lands on at its downstream node.
:class:`MeshTopology` satisfies it natively; :class:`GraphTopology` lifts
any irregular node/port graph (a chiplet hierarchy, a degraded mesh with
whole regions removed, a test fixture) onto the same surface so the
verifiers work unchanged on topologies the simulator does not ship yet.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.types import Coordinate, Direction


@runtime_checkable
class PortGraph(Protocol):
    """The minimal structural surface static analysis routes over.

    Node ids and port labels may be anything hashable and mutually
    sortable (ints, strings, tuples); :class:`MeshTopology` uses ints and
    :class:`~repro.types.Direction`.  ``arrival_port`` must be consistent
    with ``neighbor``: for every channel ``(node, port)`` with a live
    reverse channel, ``neighbor(neighbor(node, port), arrival_port(node,
    port)) == node``.
    """

    @property
    def num_nodes(self) -> int: ...

    def nodes(self) -> Iterator[Any]: ...

    def connected_directions(self, node: Any) -> List[Any]: ...

    def neighbor(self, node: Any, port: Any) -> Optional[Any]: ...

    def arrival_port(self, node: Any, port: Any) -> Optional[Any]: ...


class MeshTopology:
    """A ``width`` x ``height`` 2-D mesh.

    Node ids are row-major: ``node = y * width + x``; x grows EAST and y
    grows NORTH, matching :attr:`repro.types.Direction.delta`.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coordinates_of(self, node: int) -> Coordinate:
        self._check_node(node)
        return Coordinate(node % self.width, node // self.width)

    def node_at(self, coord: Coordinate) -> int:
        if not self.contains(coord):
            raise ValueError(f"{coord} outside {self.width}x{self.height} mesh")
        return coord.y * self.width + coord.x

    def contains(self, coord: Coordinate) -> bool:
        return 0 <= coord.x < self.width and 0 <= coord.y < self.height

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Neighbor node on ``direction``, or None at a mesh edge.

        LOCAL has no neighbor router (it connects to the PE).
        """
        if direction is Direction.LOCAL:
            return None
        coord = self.coordinates_of(node) + direction.delta
        return self.node_at(coord) if self.contains(coord) else None

    def connected_directions(self, node: int) -> List[Direction]:
        """Inter-router directions that have a link at ``node``."""
        return [
            d
            for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)
            if self.neighbor(node, d) is not None
        ]

    def edge_directions(self, node: int) -> List[Direction]:
        """Directions that fall off the mesh at ``node`` (no link)."""
        return [
            d
            for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)
            if self.neighbor(node, d) is None
        ]

    def arrival_port(self, node: int, direction: Direction) -> Optional[Direction]:
        """The port a flit sent from ``node`` via ``direction`` arrives on
        at the downstream router.  Mesh links come in bidirectional pairs,
        so this is simply the opposite direction (None off the edge)."""
        if direction is Direction.LOCAL or self.neighbor(node, direction) is None:
            return None
        return direction.opposite

    def distance(self, a: int, b: int) -> int:
        """Minimal hop count between two nodes."""
        return self.coordinates_of(a).manhattan_distance(self.coordinates_of(b))

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        """All directions that reduce the distance to ``dst`` from ``src``."""
        if src == dst:
            return []
        a = self.coordinates_of(src)
        b = self.coordinates_of(dst)
        dirs = []
        if b.x > a.x:
            dirs.append(Direction.EAST)
        elif b.x < a.x:
            dirs.append(Direction.WEST)
        if b.y > a.y:
            dirs.append(Direction.NORTH)
        elif b.y < a.y:
            dirs.append(Direction.SOUTH)
        return dirs

    def average_minimal_hops(self) -> float:
        """Mean minimal distance over all ordered src != dst pairs.

        Used by experiments to sanity-check latency floors.
        """
        total = 0
        pairs = 0
        for a in self.nodes():
            for b in self.nodes():
                if a != b:
                    total += self.distance(a, b)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside 0..{self.num_nodes - 1}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.width}x{self.height})"


class TorusTopology(MeshTopology):
    """A 2-D torus: the mesh with wraparound links."""

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        if direction is Direction.LOCAL:
            return None
        coord = self.coordinates_of(node) + direction.delta
        wrapped = Coordinate(coord.x % self.width, coord.y % self.height)
        return self.node_at(wrapped)

    def distance(self, a: int, b: int) -> int:
        ca, cb = self.coordinates_of(a), self.coordinates_of(b)
        dx = abs(ca.x - cb.x)
        dy = abs(ca.y - cb.y)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def minimal_directions(self, src: int, dst: int) -> List[Direction]:
        if src == dst:
            return []
        a = self.coordinates_of(src)
        b = self.coordinates_of(dst)
        dirs = []
        dx = (b.x - a.x) % self.width
        if dx:
            if dx <= self.width - dx:
                dirs.append(Direction.EAST)
            if dx >= self.width - dx:
                dirs.append(Direction.WEST)
        dy = (b.y - a.y) % self.height
        if dy:
            if dy <= self.height - dy:
                dirs.append(Direction.NORTH)
            if dy >= self.height - dy:
                dirs.append(Direction.SOUTH)
        return dirs


class GraphTopology:
    """An arbitrary node/port graph behind the :class:`PortGraph` surface.

    Built from an adjacency mapping ``{node: {port: neighbor}}``: each entry
    is one directed channel leaving ``node`` through the port labelled
    ``port``.  Node ids and port labels may be any hashable, mutually
    sortable values; nodes appearing only as neighbors are added with no
    outgoing channels.  This is what lets the CDG verifier and the routing
    certification engine analyze irregular topologies (express links,
    chiplet bridges, hand-built test graphs) without a coordinate system.
    """

    def __init__(self, adjacency: Mapping[Any, Mapping[Any, Any]]):
        self._ports: Dict[Any, Dict[Any, Any]] = {
            node: dict(ports) for node, ports in adjacency.items()
        }
        for ports in list(self._ports.values()):
            for neighbor in ports.values():
                self._ports.setdefault(neighbor, {})
        self._node_order = sorted(self._ports)
        # Arrival ports: for channel (u, p) -> v, the smallest port of v
        # that leads back to u (None for one-way channels).
        self._arrival: Dict[Any, Dict[Any, Any]] = {}
        for node, ports in self._ports.items():
            for port, neighbor in ports.items():
                back = sorted(
                    q
                    for q, target in self._ports[neighbor].items()
                    if target == node
                )
                self._arrival.setdefault(node, {})[port] = (
                    back[0] if back else None
                )

    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    def nodes(self) -> Iterator[Any]:
        return iter(self._node_order)

    def connected_directions(self, node: Any) -> List[Any]:
        return sorted(self._ports[node])

    def neighbor(self, node: Any, port: Any) -> Optional[Any]:
        return self._ports[node].get(port)

    def arrival_port(self, node: Any, port: Any) -> Optional[Any]:
        return self._arrival.get(node, {}).get(port)

    def distance(self, a: Any, b: Any) -> int:
        """Minimal hop count ``a -> b`` over directed channels (-1 when
        unreachable)."""
        if a == b:
            return 0
        dist = {a: 0}
        frontier = deque([a])
        while frontier:
            node = frontier.popleft()
            for port in self._ports[node]:
                neighbor = self._ports[node][port]
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    if neighbor == b:
                        return dist[neighbor]
                    frontier.append(neighbor)
        return -1

    def __repr__(self) -> str:
        num_channels = sum(len(p) for p in self._ports.values())
        return f"{type(self).__name__}({self.num_nodes} nodes, {num_channels} channels)"
