"""Routing functions (the RT unit) and the XY turn-legality check.

The paper's two evaluated algorithms are deterministic XY ("DT") and a
minimal adaptive algorithm ("AD"); we implement west-first as the adaptive
algorithm because it is deadlock-free on a mesh, plus a *fully* adaptive
minimal function (which can deadlock and therefore exercises the deadlock
recovery scheme) and source routing for scripted scenarios.

A routing function returns the set of *candidate output directions*; the VA
then tries all VCs of those directions ("here we assume that the routing
function returns all VCs of a single PC", Figure 12 — XY returns one
direction; the adaptive functions may return two).

:func:`xy_arrival_is_legal` is the receiving-router check of Section 4.2: a
misdirected header is detected behaviourally because its arrival violates an
invariant of minimal XY (no reversals, never X-movement needed after
travelling in Y).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Protocol, Set, Tuple

from repro.noc.flit import Flit
from repro.noc.topology import MeshTopology, PortGraph
from repro.types import AXIS_DIRECTIONS, Direction, RoutingAlgorithm


class RoutingFunction(Protocol):
    """Computes candidate output directions for a header flit.

    Implementations whose candidate set is a pure function of
    ``(current, flit.dst)`` set ``cacheable = True``; routers then memoize
    the result in a per-node routing-decision table keyed by destination
    (see :class:`repro.noc.router.Router`).  Functions that read any other
    flit state (source routing consumes ``flit.source_route``) must leave
    it False.
    """

    cacheable: bool = False

    #: Port-aware functions route on ``(current, in_port, dst)`` rather than
    #: ``(current, dst)`` — the extra input lets turn-model table routing
    #: (up*/down*) know which channel the packet currently holds.  Routers
    #: call :meth:`FaultAwareRouting.candidates_from` for these and key
    #: their decision caches by ``(in_port, dst)``.
    port_aware: bool = False

    def candidates(
        self, topology: Any, current: Any, flit: Flit
    ) -> List[Any]:
        """Candidate output directions (LOCAL means eject here).

        ``topology`` is at least a :class:`~repro.noc.topology.PortGraph`;
        coordinate-based functions (XY, west-first, ...) additionally
        require a :class:`~repro.noc.topology.MeshTopology`, while table
        routing (:class:`FaultAwareRouting`) works on any port graph.
        """
        ...


class XYRouting:
    """Dimension-ordered routing (DOR): correct the lowest uncorrected axis
    first — X, then Y, then Z (deterministic).  Deadlock-free on meshes of
    any dimension; the 2D case is the paper's XY."""

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        a = topology.coordinates_of(current)
        b = topology.coordinates_of(flit.dst)
        for axis in range(topology.ndim):
            positive, negative = AXIS_DIRECTIONS[axis]
            if b[axis] > a[axis]:
                return [positive]
            if b[axis] < a[axis]:
                return [negative]
        return [Direction.LOCAL]  # unreachable: current != dst

    # Backward-compatible alias: the class predates the generalization.


DimensionOrderedRouting = XYRouting


class TorusXYRouting:
    """Wrap-aware dimension-ordered routing for tori (any dimension).

    Routes the lowest uncorrected axis first using the minimal wrap
    direction (positive preferred on a tie).  Unlike mesh DOR this is
    *not* deadlock-free: the wraparound links close cyclic channel
    dependencies, which is exactly why torus networks use dateline VC
    classes — or, here, the paper's deadlock recovery scheme.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        minimal = topology.minimal_directions(current, flit.dst)
        for axis in range(topology.ndim):
            positive, negative = AXIS_DIRECTIONS[axis]
            if positive in minimal:
                return [positive]
            if negative in minimal:
                return [negative]
        return [Direction.LOCAL]  # unreachable for a valid destination


class WestFirstRouting:
    """Minimal adaptive west-first turn-model routing (deadlock-free).

    2D (the paper's AD): if the destination lies to the west, the packet
    must travel west first (no turns into west are ever allowed);
    otherwise any minimal direction among {E, N, S} may be chosen
    adaptively.

    3D: plain west-first is *not* deadlock-free (the Y/Z plane retains all
    its turns, so N/S/UP/DOWN channels can close a cycle), so the 3D form
    is the negative-first turn model — all negative-axis movement (W, S,
    DOWN) happens first, adaptively; afterwards the packet moves only in
    positive directions, and no positive->negative turn ever occurs.
    Negative channels strictly decrease ``x+y+z`` and positive ones
    strictly increase it, so any dependency cycle would need the
    forbidden turn class; the CDG verifier certifies both forms.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        minimal = topology.minimal_directions(current, flit.dst)
        if topology.ndim == 2:
            if Direction.WEST in minimal:
                return [Direction.WEST]
            return minimal
        negatives = [d for d in minimal if d.sign < 0]
        return negatives if negatives else minimal


class FullyAdaptiveRouting:
    """Minimal fully-adaptive routing with **no** escape channels.

    All minimal directions are candidates; cyclic channel dependencies are
    possible, so networks using this function rely on the paper's deadlock
    recovery scheme (Section 3.2) for forward progress.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        return topology.minimal_directions(current, flit.dst)


class SourceRouting:
    """Routes are attached to packets by the injector.

    Each header flit carries the remaining direction list; the RT unit pops
    one entry per hop.  Used to script deterministic scenarios such as the
    Figure 10/11 deadlock configurations.  Not cacheable: the candidate set
    depends on per-flit route state, not on ``(current, dst)``.
    """

    cacheable = False

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        route = flit.source_route
        if not route:
            return [Direction.LOCAL]
        return [route[0]]

    @staticmethod
    def consume_hop(flit: Flit) -> None:
        """Advance the source route after the header wins VA."""
        if flit.source_route:
            flit.source_route.pop(0)


#: A directed channel: the link leaving ``node`` through ``direction``.
#: Node ids and port labels are :class:`int`/:class:`Direction` on a mesh
#: but may be any sortable hashables on a generic :class:`PortGraph`.
_Chan = Tuple[Any, Any]


class FaultAwareRouting:
    """Fault-aware table routing: up*/down* over the surviving links.

    The table is rebuilt (:meth:`rebuild`) on every permanent-fault event
    from the set of surviving directed channels:

    1. **Orientation.**  An undirected *both-alive* graph is formed over
       the live routers, keeping an edge only where both directions of the
       channel pair survive.  Each connected component is levelled by BFS
       from its lowest-id router, and every node gets the global total
       order key ``(level, node)``.  A directed channel ``u -> v`` is *up*
       iff ``key(v) < key(u)``, else *down*.  Channels with only one
       surviving direction do not shape the levels but are still oriented
       and usable — the levels must come from the bidirectional core, or a
       node whose only up-channel is half-dead could be stranded with
       all-down paths that may never turn up again.
    2. **Turn rule.**  A packet may never make a *down -> up* turn.  Up
       channels strictly decrease the key and down channels strictly
       increase it, so any channel-dependency cycle would need a down->up
       turn: the restricted channel-dependency graph is acyclic for *any*
       total order, hence deadlock-free (certified independently by
       ``analysis.cdg``).
    3. **Tables.**  Per destination, a backward BFS over directed-channel
       states (relaxing only turn-legal predecessors) yields the shortest
       legal distance from every channel.  The routing entry for
       ``(node, in_port, dst)`` is the alive, turn-legal output channel
       with minimal distance (ties broken by direction index), so greedy
       table-following strictly decreases the distance each hop and always
       terminates at ``dst``.

    Every pair of routers connected in the both-alive graph is routable:
    climb all-up to the component's root (level 0, minimal key), then
    descend all-down to the destination — up*-then-down* paths contain no
    down->up turn.  Pairs outside any bidirectional component may still be
    routable through half-alive channels; pairs with no table entry are
    *unreachable* and reported as such (``is_reachable``), letting NIs
    refuse undeliverable packets instead of wedging the network.

    On a healthy mesh the key reduces to ``(x + y, node)``; up = {WEST,
    SOUTH} and down = {EAST, NORTH}, and all four quadrant cases admit
    minimal paths (pure-down, pure-up, west-then-north, south-then-east),
    so the fault-free latency matches XY.
    """

    cacheable = True
    port_aware = True

    def __init__(
        self,
        topology: PortGraph,
        dead_links: Iterable[_Chan] = (),
        dead_routers: Iterable[Any] = (),
    ):
        self.topology = topology
        #: Bumped on every rebuild; lets observers detect reconfiguration.
        self.version = 0
        self._alive_channels: Set[_Chan] = set()
        self._table: Dict[Tuple[Any, Any, Any], Any] = {}
        self._num_nodes = topology.num_nodes
        self.rebuild(dead_links, dead_routers)

    # -- construction ------------------------------------------------------

    def rebuild(
        self, dead_links: Iterable[_Chan] = (), dead_routers: Iterable[Any] = ()
    ) -> None:
        """Recompute orientation and routing tables for the current
        surviving-link set.  ``dead_links`` entries are ``(node,
        direction)`` — the directed channel leaving ``node`` through
        ``direction``."""
        topology = self.topology
        dead_link_set = set(dead_links)
        dead_router_set = set(dead_routers)

        # Surviving directed channels.
        alive: Dict[_Chan, Any] = {}
        for u in topology.nodes():
            if u in dead_router_set:
                continue
            for d in topology.connected_directions(u):
                v = topology.neighbor(u, d)
                if v is None or v in dead_router_set:
                    continue
                if (u, d) in dead_link_set:
                    continue
                alive[(u, d)] = v
        self._alive_channels = set(alive)

        # Levels over the both-alive graph, per component from its min id.
        both_alive: Dict[Any, List[Any]] = {}
        for (u, d), v in alive.items():
            back = topology.arrival_port(u, d)
            if back is not None and (v, back) in alive:
                both_alive.setdefault(u, []).append(v)
        level: Dict[Any, int] = {}
        for root in topology.nodes():
            if root in dead_router_set or root in level:
                continue
            level[root] = 0
            frontier = deque([root])
            while frontier:
                u = frontier.popleft()
                for v in both_alive.get(u, ()):
                    if v not in level:
                        level[v] = level[u] + 1
                        frontier.append(v)

        def key(n: Any) -> Tuple[int, Any]:
            return (level[n], n)

        is_up: Dict[_Chan, bool] = {
            ch: key(v) < key(ch[0]) for ch, v in alive.items()
        }

        # Reverse adjacency: channels arriving at each node.
        arriving: Dict[Any, List[_Chan]] = {}
        for ch, v in alive.items():
            arriving.setdefault(v, []).append(ch)

        table: Dict[Tuple[Any, Any, Any], Any] = {}
        local: Any = Direction.LOCAL
        for dst in topology.nodes():
            if dst in dead_router_set:
                continue
            # Backward BFS over channel states; dist[ch] = shortest legal
            # hop count from entering ch to reaching dst.
            dist: Dict[_Chan, int] = {}
            frontier = deque()
            for ch in arriving.get(dst, ()):
                dist[ch] = 1
                frontier.append(ch)
            while frontier:
                ch = frontier.popleft()
                ch_up = is_up[ch]
                next_dist = dist[ch] + 1
                for pc in arriving.get(ch[0], ()):
                    # Forward turn pc -> ch is illegal iff down -> up.
                    if pc not in dist and not (not is_up[pc] and ch_up):
                        dist[pc] = next_dist
                        frontier.append(pc)

            for u in topology.nodes():
                if u == dst or u in dead_router_set:
                    continue
                # Ties broken by port-label order (Direction index on a mesh).
                outs = [
                    (dist[(u, d)], d)
                    for d in topology.connected_directions(u)
                    if (u, d) in dist
                ]
                if not outs:
                    continue
                # Injection: no held channel, any output is turn-legal.
                table[(u, local, dst)] = min(outs)[1]
                for pc in arriving.get(u, ()):
                    in_port = topology.arrival_port(pc[0], pc[1])
                    if in_port is None:
                        # A one-way channel has no arrival-port label to key
                        # the table by; packets holding it are re-planned by
                        # candidates_from's dead-held-channel fallback.
                        continue
                    if is_up[pc]:
                        best = min(outs)
                    else:
                        legal = [o for o in outs if not is_up[(u, o[1])]]
                        if not legal:
                            continue
                        best = min(legal)
                    table[(u, in_port, dst)] = best[1]

        self._table = table
        self.version += 1

    # -- routing -----------------------------------------------------------

    def candidates(
        self, topology: PortGraph, current: Any, flit: Flit
    ) -> List[Any]:
        """Injection-context lookup (no held channel, all turns legal)."""
        if current == flit.dst:
            return [Direction.LOCAL]
        d = self._table.get((current, Direction.LOCAL, flit.dst))
        return [d] if d is not None else []

    def candidates_from(
        self,
        topology: PortGraph,
        current: Any,
        in_port: Any,
        flit: Flit,
    ) -> List[Any]:
        """Port-aware lookup for a header arriving through ``in_port``.

        A missing entry with a *live* held channel means the packet is
        turn-stuck after a reconfiguration (every legal continuation died):
        it is unroutable and the caller must drop it.  If the held channel
        itself is dead, nothing can wait on it any more, so the packet is
        re-planned as if freshly injected (no turn constraint).
        """
        if current == flit.dst:
            return [Direction.LOCAL]
        if in_port is Direction.LOCAL:
            return self.candidates(topology, current, flit)
        d = self._table.get((current, in_port, flit.dst))
        if d is not None:
            return [d]
        src = topology.neighbor(current, in_port)
        back = (
            topology.arrival_port(current, in_port) if src is not None else None
        )
        held = (src, back) if back is not None else None
        if held is None or held not in self._alive_channels:
            return self.candidates(topology, current, flit)
        return []

    # -- reachability ------------------------------------------------------

    def is_reachable(self, src: Any, dst: Any) -> bool:
        """Whether the current tables can deliver ``src -> dst``."""
        if src == dst:
            return True
        return (src, Direction.LOCAL, dst) in self._table

    def reachable_fraction(self) -> float:
        """Fraction of ordered ``(src, dst)`` pairs (src != dst) the
        current tables can deliver — 1.0 on a healthy network."""
        n = self._num_nodes
        if n < 2:
            return 1.0
        local = Direction.LOCAL
        entries = sum(1 for (_, p, _) in self._table if p == local)
        return entries / (n * (n - 1))


def make_routing_function(algorithm: RoutingAlgorithm) -> RoutingFunction:
    """Factory mapping the config enum to a routing function instance."""
    if algorithm is RoutingAlgorithm.XY:
        return XYRouting()
    if algorithm is RoutingAlgorithm.WEST_FIRST:
        return WestFirstRouting()
    if algorithm is RoutingAlgorithm.FULLY_ADAPTIVE:
        return FullyAdaptiveRouting()
    if algorithm is RoutingAlgorithm.SOURCE:
        return SourceRouting()
    if algorithm is RoutingAlgorithm.FT_TABLE:
        raise ValueError(
            "FT_TABLE routing needs a topology to build its tables; "
            "use resolve_routing_function(algorithm, topology)"
        )
    raise ValueError(f"unknown routing algorithm: {algorithm}")


def resolve_routing_function(
    algorithm: RoutingAlgorithm, topology: MeshTopology
) -> RoutingFunction:
    """The routing function a :class:`~repro.noc.network.Network` actually
    instantiates for ``(algorithm, topology)``.

    Mesh XY ignores wraparound links, so on a torus the wrap-aware
    :class:`TorusXYRouting` is substituted.  The static-analysis layer uses
    this same resolution so that its channel-dependency graph describes the
    routing function the simulator will really run.
    """
    from repro.noc.topology import TorusTopology

    if algorithm is RoutingAlgorithm.FT_TABLE:
        return FaultAwareRouting(topology)
    if algorithm is RoutingAlgorithm.XY and isinstance(topology, TorusTopology):
        return TorusXYRouting()
    return make_routing_function(algorithm)


def xy_arrival_is_legal(
    topology: MeshTopology,
    current: int,
    arrival_port: Optional[Direction],
    dst: int,
) -> bool:
    """Receiving-router misroute detection for deterministic XY routing.

    Under fault-free XY a packet (a) never reverses direction and (b) never
    needs X movement after travelling in Y.  A header whose arrival violates
    either invariant was misdirected by the previous router's RT unit
    (Section 4.2); the receiver NACKs it back.

    ``arrival_port`` is the input port the header arrived on (None or LOCAL
    for freshly injected packets, which are always legal).
    """
    if arrival_port is None or arrival_port is Direction.LOCAL:
        return True
    if current == dst:
        return True
    minimal = topology.minimal_directions(current, dst)
    # Reversal: the packet would have to exit through the port it came in.
    if arrival_port in minimal:
        return False
    # Out-of-order axes: arriving on axis k means the packet last moved
    # along axis k, so under DOR every lower axis must be corrected (the
    # 2D case is the classic "no X movement needed after travelling Y").
    a = topology.coordinates_of(current)
    b = topology.coordinates_of(dst)
    for axis in range(arrival_port.axis):
        if a[axis] != b[axis]:
            return False
    return True
