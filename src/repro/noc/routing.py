"""Routing functions (the RT unit) and the XY turn-legality check.

The paper's two evaluated algorithms are deterministic XY ("DT") and a
minimal adaptive algorithm ("AD"); we implement west-first as the adaptive
algorithm because it is deadlock-free on a mesh, plus a *fully* adaptive
minimal function (which can deadlock and therefore exercises the deadlock
recovery scheme) and source routing for scripted scenarios.

A routing function returns the set of *candidate output directions*; the VA
then tries all VCs of those directions ("here we assume that the routing
function returns all VCs of a single PC", Figure 12 — XY returns one
direction; the adaptive functions may return two).

:func:`xy_arrival_is_legal` is the receiving-router check of Section 4.2: a
misdirected header is detected behaviourally because its arrival violates an
invariant of minimal XY (no reversals, never X-movement needed after
travelling in Y).
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro.noc.flit import Flit
from repro.noc.topology import MeshTopology
from repro.types import Direction, RoutingAlgorithm


class RoutingFunction(Protocol):
    """Computes candidate output directions for a header flit.

    Implementations whose candidate set is a pure function of
    ``(current, flit.dst)`` set ``cacheable = True``; routers then memoize
    the result in a per-node routing-decision table keyed by destination
    (see :class:`repro.noc.router.Router`).  Functions that read any other
    flit state (source routing consumes ``flit.source_route``) must leave
    it False.
    """

    cacheable: bool = False

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        """Candidate output directions (LOCAL means eject here)."""
        ...


class XYRouting:
    """Dimension-ordered routing: correct X first, then Y (deterministic)."""

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        a = topology.coordinates_of(current)
        b = topology.coordinates_of(flit.dst)
        if b.x > a.x:
            return [Direction.EAST]
        if b.x < a.x:
            return [Direction.WEST]
        if b.y > a.y:
            return [Direction.NORTH]
        return [Direction.SOUTH]


class TorusXYRouting:
    """Wrap-aware dimension-ordered routing for tori.

    Routes the X dimension first using the minimal wrap direction, then Y.
    Unlike mesh XY this is *not* deadlock-free: the wraparound links close
    cyclic channel dependencies, which is exactly why torus networks use
    dateline VC classes — or, here, the paper's deadlock recovery scheme.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        minimal = topology.minimal_directions(current, flit.dst)
        for d in (Direction.EAST, Direction.WEST):
            if d in minimal:
                return [d]
        for d in (Direction.NORTH, Direction.SOUTH):
            if d in minimal:
                return [d]
        return [Direction.LOCAL]  # unreachable for a valid destination


class WestFirstRouting:
    """Minimal adaptive west-first turn-model routing (deadlock-free).

    If the destination lies to the west, the packet must travel west first
    (no turns into west are ever allowed); otherwise any minimal direction
    among {E, N, S} may be chosen adaptively.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        minimal = topology.minimal_directions(current, flit.dst)
        if Direction.WEST in minimal:
            return [Direction.WEST]
        return minimal


class FullyAdaptiveRouting:
    """Minimal fully-adaptive routing with **no** escape channels.

    All minimal directions are candidates; cyclic channel dependencies are
    possible, so networks using this function rely on the paper's deadlock
    recovery scheme (Section 3.2) for forward progress.
    """

    cacheable = True

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        if current == flit.dst:
            return [Direction.LOCAL]
        return topology.minimal_directions(current, flit.dst)


class SourceRouting:
    """Routes are attached to packets by the injector.

    Each header flit carries the remaining direction list; the RT unit pops
    one entry per hop.  Used to script deterministic scenarios such as the
    Figure 10/11 deadlock configurations.  Not cacheable: the candidate set
    depends on per-flit route state, not on ``(current, dst)``.
    """

    cacheable = False

    def candidates(
        self, topology: MeshTopology, current: int, flit: Flit
    ) -> List[Direction]:
        route = flit.source_route
        if not route:
            return [Direction.LOCAL]
        return [route[0]]

    @staticmethod
    def consume_hop(flit: Flit) -> None:
        """Advance the source route after the header wins VA."""
        if flit.source_route:
            flit.source_route.pop(0)


def make_routing_function(algorithm: RoutingAlgorithm) -> RoutingFunction:
    """Factory mapping the config enum to a routing function instance."""
    if algorithm is RoutingAlgorithm.XY:
        return XYRouting()
    if algorithm is RoutingAlgorithm.WEST_FIRST:
        return WestFirstRouting()
    if algorithm is RoutingAlgorithm.FULLY_ADAPTIVE:
        return FullyAdaptiveRouting()
    if algorithm is RoutingAlgorithm.SOURCE:
        return SourceRouting()
    raise ValueError(f"unknown routing algorithm: {algorithm}")


def resolve_routing_function(
    algorithm: RoutingAlgorithm, topology: MeshTopology
) -> RoutingFunction:
    """The routing function a :class:`~repro.noc.network.Network` actually
    instantiates for ``(algorithm, topology)``.

    Mesh XY ignores wraparound links, so on a torus the wrap-aware
    :class:`TorusXYRouting` is substituted.  The static-analysis layer uses
    this same resolution so that its channel-dependency graph describes the
    routing function the simulator will really run.
    """
    from repro.noc.topology import TorusTopology

    if algorithm is RoutingAlgorithm.XY and isinstance(topology, TorusTopology):
        return TorusXYRouting()
    return make_routing_function(algorithm)


def xy_arrival_is_legal(
    topology: MeshTopology,
    current: int,
    arrival_port: Optional[Direction],
    dst: int,
) -> bool:
    """Receiving-router misroute detection for deterministic XY routing.

    Under fault-free XY a packet (a) never reverses direction and (b) never
    needs X movement after travelling in Y.  A header whose arrival violates
    either invariant was misdirected by the previous router's RT unit
    (Section 4.2); the receiver NACKs it back.

    ``arrival_port`` is the input port the header arrived on (None or LOCAL
    for freshly injected packets, which are always legal).
    """
    if arrival_port is None or arrival_port is Direction.LOCAL:
        return True
    if current == dst:
        return True
    minimal = topology.minimal_directions(current, dst)
    # Reversal: the packet would have to exit through the port it came in.
    if arrival_port in minimal:
        return False
    # Y-then-X: arrived travelling vertically but still needs X correction.
    if arrival_port in (Direction.NORTH, Direction.SOUTH):
        a = topology.coordinates_of(current)
        b = topology.coordinates_of(dst)
        if a.x != b.x:
            return False
    return True
