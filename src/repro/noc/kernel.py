"""The batched struct-of-arrays cycle kernel (``backend="batched"``).

The object model in :mod:`repro.noc.router` spends most of a loaded cycle
on attribute lookups and small-method dispatch.  This module replays the
exact same fault-free pipeline — BW→RT→VA→SA→ST→LT, credits, wormhole
streaming, round-robin arbitration — over preallocated flat integer
vectors, visiting only routers that hold flits.  Checkpoints serialize
those vectors as typed int64 arrays (numpy-backed where available,
``array('q')`` otherwise); at runtime they are plain flat lists, the
fastest scalar-indexed container CPython has.  One :class:`BatchedKernel`
replaces the per-object cycle loop of a
:class:`~repro.noc.network.Network` when

* ``SimulationConfig.backend == "batched"``, and
* :func:`kernel_supports` finds the configuration inside the batchable
  domain (fault-free, HBH/NONE protection, deterministic distributed
  routing, no deadlock recovery / payload ECC / invariant sanitizer).

Outside that domain the network silently falls back to the object loop,
so fault experiments keep their bit-accurate model while fault-free
baselines and warm-up sweeps run an order of magnitude faster.

Equivalence is structural, not approximate: every counter, energy tally,
latency sample, telemetry event and time-series sample is produced at the
same cycle with the same value as the object model — the argument is
written out in ``docs/KERNEL.md`` and enforced bit-for-bit by
``tests/noc/test_fast_path_equivalence.py``.  The arrays pickle with the
network, so checkpoint/resume (``docs/CHECKPOINTING.md``) works unchanged.

Array layout, token encoding and the per-phase dataflow are specified in
``docs/KERNEL.md``; keep that document in sync with any change here.
"""

from __future__ import annotations

from array import array
from bisect import insort
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.noc.flit import Flit
from repro.types import FlitType, LinkProtection, RoutingAlgorithm

try:  # pragma: no cover - exercised implicitly by the import outcome
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Port index of the local (NI-facing) port; matches ``Direction.LOCAL``.
_LOCAL = 4
#: Opposite port per port index (N<->S, E<->W), used for link endpoints.
_OPP = (2, 3, 0, 1, 4)
#: Flit tokens pack ``(packet_slot << 20) | flit_seq``; 20 bits of sequence
#: bounds packets at ~1M flits, far beyond any configured flits_per_packet.
_SEQ_BITS = 20
_SEQ_MASK = (1 << _SEQ_BITS) - 1
#: Mirrors ``repro.noc.router.EJECTION_CREDITS`` (the NI sinks instantly).
_EJECTION_CREDITS = 1 << 30

#: Routing algorithms whose candidate sets are pure functions of
#: (router, destination) on a healthy topology — the kernel memoizes them.
_SUPPORTED_ROUTING = (
    RoutingAlgorithm.XY,
    RoutingAlgorithm.WEST_FIRST,
    RoutingAlgorithm.FULLY_ADAPTIVE,
)


def kernel_supports(config: Any) -> Optional[str]:
    """Why the batched kernel cannot run this config, or None if it can.

    The batchable domain is the fault-free fast path: everything the object
    model does outside it (fault injection, NACK rollback, E2E reverse
    traffic, deadlock probing, table rerouting, bit-level payload checks,
    the per-cycle sanitizer) is event-driven control flow that the flat
    arrays deliberately do not model.  ``Network`` falls back to the object
    loop when this returns a reason, so ``backend="batched"`` is always
    safe to request.
    """
    noc = config.noc
    if noc.ndim != 2:
        return "the batched kernel models 2D meshes only"
    if noc.max_link_latency != 1:
        return "multi-cycle link latencies are outside the batched domain"
    if any(config.faults.rates.values()):
        return "transient fault rates are nonzero"
    if config.faults.permanent:
        return "a permanent-fault schedule is configured"
    if config.faults.intermittent:
        return "an intermittent/wear-out fault lifecycle is configured"
    if noc.link_protection is LinkProtection.E2E:
        return "end-to-end protection schedules reverse-path events"
    if noc.routing not in _SUPPORTED_ROUTING:
        return f"routing {noc.routing.value!r} is outside the batched domain"
    if noc.deadlock_recovery_enabled:
        return "deadlock recovery probes are enabled"
    if config.payload_ecc_check:
        return "payload ECC checking models per-flit codewords"
    if config.invariant_checks:
        return "the invariant sanitizer audits object state"
    return None


class KernelSampler:
    """Telemetry sampler over kernel arrays.

    Drop-in replacement for ``repro.telemetry.bus._NetworkSampler``: emits
    the same series, for the same components, in the same record order,
    with the same values — so NDJSON exports are byte-identical across
    backends.  Selected by ``TelemetryBus.attach`` when the network carries
    a kernel.
    """

    def __init__(self, kernel: "BatchedKernel"):
        self.kernel = kernel
        net = kernel.net
        P = kernel.P
        # Same enumeration order as _NetworkSampler: the network's wiring
        # order, local links filtered out.
        self._links: List[Tuple[int, str]] = [
            (link.src_node * P + int(link.src_port), link.telemetry_id)
            for link in net.links
            if not link.is_local
        ]
        self._last_traversals = [0] * len(self._links)
        n = kernel.R
        self._last_sent = [0] * n
        self._last_ejected = [0] * n

    def sample(self, record: Any, cycle: int, interval: float) -> None:
        k = self.kernel
        net = k.net
        ln = k.ln
        last_t = self._last_traversals
        for i, (li, tid) in enumerate(self._links):
            total = ln[li]
            record("link_utilization", tid, cycle, (total - last_t[i]) / interval)
            last_t[i] = total
        P, V = k.P, k.V
        depth = k.retx_depth
        nseq = k.nseq
        rcap = k.rcap
        for r in range(k.R):
            node = str(r)
            record("vc_occupancy", node, cycle, float(k.rbuf[r]))
            cap = rcap[r]
            if cap:
                # Barrel-shifter occupancy: min(flits ever sent, depth) per
                # mesh output channel (nothing replays in the fault-free
                # domain, so the retransmission ring only ever fills).
                occupied = 0
                base = r * P * V
                for pv in range(4 * V):
                    s = nseq[base + pv]
                    occupied += s if s < depth else depth
                record("retx_pressure", node, cycle, occupied / cap)
            else:  # pragma: no cover - every mesh router has links
                record("retx_pressure", node, cycle, 0.0)
        last_s = self._last_sent
        last_e = self._last_ejected
        for r in range(k.R):
            node = str(r)
            sent = k.nsent[r]
            record("injection_rate", node, cycle, (sent - last_s[r]) / interval)
            last_s[r] = sent
            ejected = k.nej[r]
            record("ejection_rate", node, cycle, (ejected - last_e[r]) / interval)
            last_e[r] = ejected
        record(
            "in_flight_flits",
            "global",
            cycle,
            float(k.total_buffered + k.line_flits),
        )
        record("delivered_packets", "global", cycle, float(net.delivered))
        record("lost_packets", "global", cycle, float(net.lost))
        counters = net.stats.snapshot(("flits_retransmitted", "flits_dropped"))
        record(
            "ctr_flits_retransmitted",
            "global",
            cycle,
            float(counters["flits_retransmitted"]),
        )
        record(
            "ctr_flits_dropped", "global", cycle, float(counters["flits_dropped"])
        )


class BatchedKernel:
    """Struct-of-arrays replay of the object model's fault-free cycle.

    All per-VC / per-channel / per-NI state lives in flat integer vectors
    (see ``docs/KERNEL.md`` for the full inventory; pickled as ``int64``
    arrays); the only structured Python state is the per-router sorted
    occupancy lists, the wake sets, and the growable packet descriptor
    table.  ``step()`` advances one cycle in the same phase order as
    ``Network._step_active``.
    """

    def __init__(self, network: Any):
        self.net = network
        config = network.config
        noc = config.noc
        topo = network.topology
        R = topo.num_nodes
        P = noc.num_ports
        V = noc.num_vcs
        D = noc.vc_buffer_depth
        self.R, self.P, self.V, self.D = R, P, V, D
        self.retx_depth = noc.retx_buffer_depth
        # Pipeline gating, identical to Router.__init__: 3+ stages separate
        # RT from VA by a cycle; 4 stages separate VA from SA/ST too.
        self._va_delay = 1 if noc.pipeline_stages >= 3 else 0
        self._sa_delay = 1 if noc.pipeline_stages == 4 else 0

        # State tables: preallocated flat int vectors, one entry per
        # (router, port, vc, ...) coordinate.  At runtime they are plain
        # Python lists — CPython scalar list indexing is ~2.5x faster than
        # going through a buffer view, and the hot loop is pure scalar
        # access — while __getstate__ packs each one into an int64 array
        # (numpy where available, array('q') otherwise) so checkpoints
        # carry compact typed buffers (docs/KERNEL.md, "Checkpoint
        # payload").
        new = self._new_array
        # -- input VC state, indexed r*P*V + p*V + v ------------------------
        new("buf", R * P * V * D, 0)  # flit-token rings
        new("bh", R * P * V, 0)  # ring head index
        new("bc", R * P * V, 0)  # ring occupancy
        new("st", R * P * V, 0)  # 0 idle / 1 waiting-VA / 2 active
        new("op", R * P * V, -1)  # granted output port
        new("ov", R * P * V, -1)  # granted output VC
        new("rtc", R * P * V, -1)  # cycle RT completed
        new("vac", R * P * V, -1)  # cycle VA granted
        new("varot", R * P * V, 0)  # VA input-choice rotation
        # -- per-router allocator state ------------------------------------
        new("va_arb", R * P * V, 0)  # VA output arbiter, by out-channel
        new("sa_in", R * P, 0)  # SA stage-1 arbiter, by in-port
        new("sa_out", R * P, 0)  # SA stage-2 arbiter, by out-port
        # -- output channel state, indexed r*P*V + o*V + v ------------------
        new("cred", R * P * V, 0)  # downstream credits
        new("alloc", R * P * V, -1)  # owning input VC (p*V+v) or -1
        new("nseq", R * P * V, 0)  # per-channel link sequence counter
        # -- NI state -------------------------------------------------------
        new("nic", R * V, D)  # injection-link credits per VC
        new("nis_slot", R * V, -1)  # streaming packet slot per VC
        new("nis_next", R * V, 0)  # next flit seq of that stream
        new("nirr", R, 0)  # stream round-robin pointer
        new("nsent", R, 0)  # flits pushed onto the injection link
        new("nej", R, 0)  # flits consumed by completed reassembly
        # -- per-router gauges ----------------------------------------------
        new("rbuf", R, 0)  # buffered flits (occupancy gauge)
        new("ln", R * P, 0)  # mesh-link flit traversals, by (src, port)
        # -- 1-cycle delay lines (cur = arriving now, next = in flight) -----
        new("rxt_cur", R * P, -1)  # flit token toward router in-port
        new("rxt_next", R * P, -1)
        new("rxv_cur", R * P, -1)  # its virtual channel
        new("rxv_next", R * P, -1)
        new("ejt_cur", R, -1)  # flit token toward the NI
        new("ejt_next", R, -1)
        new("crv_cur", R * P, -1)  # credit VC toward router out-port
        new("crv_next", R * P, -1)

        # Mesh credits: depth per neighbor-connected port, the effectively
        # infinite ejection credit on LOCAL (attach_output_link semantics).
        nb = [-1] * (R * P)
        cred = self.cred
        for r in range(R):
            base = r * P * V
            for v in range(V):
                cred[base + _LOCAL * V + v] = _EJECTION_CREDITS
            for d in topo.connected_directions(r):
                p = int(d)
                nb[r * P + p] = topo.neighbor(r, d)
                for v in range(V):
                    cred[base + p * V + v] = D
        self.nb = nb
        self.valid_ports: List[frozenset] = [
            frozenset(
                {_LOCAL} | {p for p in range(4) if nb[r * P + p] >= 0}
            )
            for r in range(R)
        ]
        self.rcap = [
            sum(1 for p in range(4) if nb[r * P + p] >= 0)
            * V
            * self.retx_depth
            for r in range(R)
        ]

        # Python-side state.
        #: Per-input-VC routing candidates (tuple of ports) while a head
        #: waits in the pipeline; indexed like the VC arrays.
        self.cands: List[Optional[Tuple[int, ...]]] = [None] * (R * P * V)
        #: Per-router sorted list of non-empty input VCs (p*V+v); drives
        #: every pipeline stage in the object model's scan order.
        self.occ: List[List[int]] = [[] for _ in range(R)]
        #: Routers holding at least one buffered flit.
        self.live: Set[int] = set()
        #: Wake sets fed by the delay lines (swapped with the lines).
        self.wr_cur: Set[int] = set()
        self.wr_next: Set[int] = set()
        self.wn_cur: Set[int] = set()
        self.wn_next: Set[int] = set()
        # Growable packet descriptor table, slots recycled LIFO.
        self.pk_dst: List[int] = []
        self.pk_inj: List[int] = []
        self.pk_nf: List[int] = []
        self.pk_hops: List[int] = []
        self.pk_free: List[int] = []
        #: (router, dst) -> candidate ports.  The supported routing
        #: functions are pure and the topology never degrades inside the
        #: batched domain, so the whole table is computed here, off the
        #: cycle loop (~4 us/entry; a few ms on an 8x8 mesh).  ``_route_for``
        #: keeps the lazy path as a fallback for exotic callers.
        self.route_table: Dict[int, Tuple[int, ...]] = {}
        self._route_probe = Flit(0, 0, FlitType.HEAD, 0, 0)
        for r in range(self.R):
            for dst in range(self.R):
                if r != dst:
                    self._route_for(r, dst)
        #: Flits buffered in routers / in flight on delay lines; together
        #: these are ``Network.in_flight_flits``.
        self.total_buffered = 0
        self.line_flits = 0

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    #: Every state table, in checkpoint-payload order (docs/KERNEL.md).
    ARRAY_NAMES: Tuple[str, ...] = (
        "buf", "bh", "bc", "st", "op", "ov", "rtc", "vac", "varot",
        "va_arb", "sa_in", "sa_out", "cred", "alloc", "nseq",
        "nic", "nis_slot", "nis_next", "nirr", "nsent", "nej",
        "rbuf", "ln",
        "rxt_cur", "rxt_next", "rxv_cur", "rxv_next",
        "ejt_cur", "ejt_next", "crv_cur", "crv_next",
    )

    def _new_array(self, name: str, n: int, fill: int) -> None:
        assert name in self.ARRAY_NAMES
        setattr(self, name, [fill] * n)

    def __getstate__(self) -> Dict[str, Any]:
        # Pack each state table into a typed int64 buffer for the pickle
        # stream: numpy arrays where numpy exists, array('q') otherwise.
        # Both round-trip exactly and keep checkpoints compact.
        state = dict(self.__dict__)
        for name in self.ARRAY_NAMES:
            values = state[name]
            if _np is not None:
                state[name] = _np.asarray(values, dtype=_np.int64)
            else:
                state[name] = array("q", values)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name in self.ARRAY_NAMES:
            # .tolist() yields Python ints from numpy and array('q') alike
            # (plain list() over a numpy array would leak np.int64 scalars
            # into counters and break result serialization).
            state[name] = state[name].tolist()
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _route_for(self, r: int, dst: int) -> Tuple[int, ...]:
        key = r * self.R + dst
        cands = self.route_table.get(key)
        if cands is None:
            probe = self._route_probe
            probe.dst = dst
            net = self.net
            valid = self.valid_ports[r]
            cands = tuple(
                int(d)
                for d in net.routing_fn.candidates(net.topology, r, probe)
                if int(d) in valid
            )
            self.route_table[key] = cands
        return cands

    # ------------------------------------------------------------------
    # packet descriptors
    # ------------------------------------------------------------------

    def _alloc_slot(self, packet: Any) -> int:
        free = self.pk_free
        if free:
            slot = free.pop()
            self.pk_dst[slot] = packet.dst
            self.pk_inj[slot] = packet.injection_cycle
            self.pk_nf[slot] = packet.num_flits
            self.pk_hops[slot] = 0
        else:
            slot = len(self.pk_dst)
            self.pk_dst.append(packet.dst)
            self.pk_inj.append(packet.injection_cycle)
            self.pk_nf.append(packet.num_flits)
            self.pk_hops.append(0)
        return slot

    # ------------------------------------------------------------------
    # the cycle
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one cycle; phase order mirrors ``Network._step_active``."""
        net = self.net
        stats = net.stats
        tel = net.telemetry
        cycle = net.cycle
        R, P, V, D = self.R, self.P, self.V, self.D
        PV = P * V
        buf, bh, bc = self.buf, self.bh, self.bc
        st, op, ov = self.st, self.op, self.ov
        rtc, vac, varot = self.rtc, self.vac, self.varot
        va_arb, sa_in, sa_out = self.va_arb, self.sa_in, self.sa_out
        cred, alloc, nseq = self.cred, self.alloc, self.nseq
        cands = self.cands
        pk_dst, pk_nf, pk_hops = self.pk_dst, self.pk_nf, self.pk_hops
        nb = self.nb
        ln = self.ln
        route_table = self.route_table
        rxt_next, rxv_next = self.rxt_next, self.rxv_next
        wr_next = self.wr_next
        nsent = self.nsent
        # Flit-conservation gauges, kept in locals for the hot loop and
        # written back before anything (the sampler) can observe them.
        tb = self.total_buffered
        lf = self.line_flits
        # Energy tallies, flushed once at the end of the cycle (identical
        # totals to the object model's per-event calls).
        n_local = n_bufw = n_rt = n_vagrant = n_st = n_credit = n_mesh = 0

        # Phase 1: NIs consume ejections delivered by the previous cycle.
        wn = self.wn_cur
        if wn:
            ejt = self.ejt_cur
            pk_inj = self.pk_inj
            nej = self.nej
            for r in sorted(wn):  # ascending node order, like the object loop
                token = ejt[r]
                ejt[r] = -1
                slot = token >> _SEQ_BITS
                nf = pk_nf[slot]
                if (token & _SEQ_MASK) == nf - 1:
                    # Tail arrived: the reassembly completes and delivers.
                    stats.count("flits_ejected", nf)
                    nej[r] += nf
                    stats.record_ejection(cycle - pk_inj[slot], pk_hops[slot])
                    net.note_delivered()
                    self.pk_free.append(slot)
            lf -= len(wn)
            wn.clear()

        # Phase 2: scheduled events — none exist inside the batched domain
        # (E2E reverse-path traffic is excluded by kernel_supports).

        # Phase 3: routers consume link deliveries (credits, then flits,
        # both in port order — the object model's receive() ordering).
        wr = self.wr_cur
        if wr:
            rxt, rxv, crv = self.rxt_cur, self.rxv_cur, self.crv_cur
            occ = self.occ
            rbuf = self.rbuf
            live = self.live
            for r in sorted(wr):
                base = r * P
                for p in range(P):
                    v = crv[base + p]
                    if v >= 0:
                        crv[base + p] = -1
                        cred[(base + p) * V + v] += 1
                for p in range(P):
                    token = rxt[base + p]
                    if token >= 0:
                        rxt[base + p] = -1
                        v = rxv[base + p]
                        rxv[base + p] = -1
                        idx = (base + p) * V + v
                        n = bc[idx]
                        buf[idx * D + (bh[idx] + n) % D] = token
                        if n == 0:
                            insort(occ[r], p * V + v)
                        bc[idx] = n + 1
                        rbuf[r] += 1
                        tb += 1
                        lf -= 1
                        live.add(r)
                        n_bufw += 1
            wr.clear()

        # Phase 4: NIs inject (stream continuation first, round-robin over
        # VCs, then at most one new packet — NetworkInterface.inject).
        ni_tx = net._ni_tx_active
        if ni_tx:
            nic, nis_slot, nis_next = self.nic, self.nis_slot, self.nis_next
            nirr = self.nirr
            interfaces = net.interfaces
            drained: List[int] = []
            for node in sorted(ni_tx):
                ni = interfaces[node]
                nbase = node * V
                sent = False
                rr = nirr[node]
                for offset in range(V):
                    vc = (rr + offset) % V
                    si = nbase + vc
                    slot = nis_slot[si]
                    if slot >= 0 and nic[si] > 0:
                        seq = nis_next[si]
                        if seq + 1 >= pk_nf[slot]:
                            nis_slot[si] = -1
                        else:
                            nis_next[si] = seq + 1
                        nic[si] -= 1
                        nsent[node] += 1
                        i = node * P + _LOCAL
                        rxt_next[i] = (slot << _SEQ_BITS) | seq
                        rxv_next[i] = vc
                        wr_next.add(node)
                        lf += 1
                        n_local += 1
                        nirr[node] = (vc + 1) % V
                        sent = True
                        break
                if not sent and ni.pending:
                    for vc in range(V):
                        si = nbase + vc
                        if nis_slot[si] < 0 and nic[si] > 0:
                            packet = ni.pending.popleft()
                            slot = self._alloc_slot(packet)
                            if pk_nf[slot] > 1:
                                nis_slot[si] = slot
                                nis_next[si] = 1
                            nic[si] -= 1
                            nsent[node] += 1
                            i = node * P + _LOCAL
                            rxt_next[i] = slot << _SEQ_BITS
                            rxv_next[i] = vc
                            wr_next.add(node)
                            lf += 1
                            n_local += 1
                            break
                if not ni.pending:
                    for vc in range(V):
                        if nis_slot[nbase + vc] >= 0:
                            break
                    else:
                        drained.append(node)
            if drained:
                ni_tx.difference_update(drained)

        # Phase 5: router pipelines, ascending node order.  Cross-router
        # effects travel only on the delay lines, so within-phase order
        # cannot change outcomes — but telemetry event order can, hence
        # the same sorted order as the object loop.
        sends = 0
        live = self.live
        if live:
            va_gate = cycle - self._va_delay
            sa_gate = cycle - self._sa_delay
            rxt_next, rxv_next = self.rxt_next, self.rxv_next
            crv_next, ejt_next = self.crv_next, self.ejt_next
            wr_next, wn_next = self.wr_next, self.wn_next
            nic = self.nic
            rbuf = self.rbuf
            for r in sorted(live):
                rbase = r * PV
                occ_r = self.occ[r]

                # RT: route the head flit of every idle non-empty VC.
                for pv in occ_r:
                    idx = rbase + pv
                    if st[idx] != 0:
                        continue
                    token = buf[idx * D + bh[idx]]
                    if token & _SEQ_MASK:
                        continue  # body flit; RT waits for a header
                    dst = pk_dst[token >> _SEQ_BITS]
                    c = route_table.get(r * R + dst)
                    cands[idx] = c if c is not None else self._route_for(r, dst)
                    st[idx] = 1
                    rtc[idx] = cycle
                    n_rt += 1

                # VA: separable two-stage allocation (VCAllocator.allocate).
                va_requests: List[int] = []
                for pv in occ_r:
                    idx = rbase + pv
                    if st[idx] == 1 and rtc[idx] <= va_gate:
                        va_requests.append(pv)
                if va_requests:
                    # Stage 1: each requester picks one free output channel
                    # by its private rotation over the usable set; the free
                    # set is a snapshot (grants apply after stage 2).
                    contested: Dict[int, List[int]] = {}
                    for pv in va_requests:
                        idx = rbase + pv
                        usable = [
                            p_ * V + v_
                            for p_ in cands[idx]
                            for v_ in range(V)
                            if alloc[rbase + p_ * V + v_] < 0
                        ]
                        if not usable:
                            continue  # rotation not advanced, as the object
                        rot = varot[idx]
                        varot[idx] = rot + 1
                        contested.setdefault(
                            usable[rot % len(usable)], []
                        ).append(pv)
                    # Stage 2: one round-robin arbiter per output channel.
                    grants: List[Tuple[int, int]] = []
                    for oc, reqs in contested.items():
                        aidx = rbase + oc
                        if len(reqs) == 1:
                            winner = reqs[0]
                        else:
                            reqset = set(reqs)
                            nxt = va_arb[aidx]
                            winner = -1
                            for offset in range(PV):
                                i = (nxt + offset) % PV
                                if i in reqset:
                                    winner = i
                                    break
                        va_arb[aidx] = (winner + 1) % PV
                        grants.append((winner, oc))
                    if not grants:
                        if tel is not None:
                            tel.publish(
                                cycle,
                                "vc_alloc_fail",
                                r,
                                count=len(va_requests),
                            )
                    else:
                        failed = len(va_requests) - len(grants)
                        if failed and tel is not None:
                            tel.publish(
                                cycle, "vc_alloc_fail", r, count=failed
                            )
                        for pv, oc in grants:
                            idx = rbase + pv
                            op[idx] = oc // V
                            ov[idx] = oc % V
                            st[idx] = 2
                            vac[idx] = cycle
                            alloc[rbase + oc] = pv
                            n_vagrant += 1

                # SA: input stage (RR over VCs per in-port) then output
                # stage (RR over in-ports per out-port) — SwitchAllocator.
                bids: List[int] = []
                for pv in occ_r:
                    idx = rbase + pv
                    if (
                        st[idx] == 2
                        and vac[idx] <= sa_gate
                        and cred[rbase + op[idx] * V + ov[idx]] > 0
                    ):
                        bids.append(pv)
                if bids:
                    by_in: Dict[int, List[int]] = {}
                    for pv in bids:
                        by_in.setdefault(pv // V, []).append(pv % V)
                    stage1: Dict[int, int] = {}
                    for p_, vcs in by_in.items():
                        aidx = r * P + p_
                        if len(vcs) == 1:
                            w = vcs[0]
                        else:
                            vset = set(vcs)
                            nxt = sa_in[aidx]
                            w = -1
                            for offset in range(V):
                                i = (nxt + offset) % V
                                if i in vset:
                                    w = i
                                    break
                        sa_in[aidx] = (w + 1) % V
                        stage1[p_] = w
                    by_out: Dict[int, List[int]] = {}
                    for p_, w in stage1.items():
                        by_out.setdefault(op[rbase + p_ * V + w], []).append(p_)
                    for o, ports in by_out.items():
                        aidx = r * P + o
                        if len(ports) == 1:
                            wp = ports[0]
                        else:
                            pset = set(ports)
                            nxt = sa_out[aidx]
                            wp = -1
                            for offset in range(P):
                                i = (nxt + offset) % P
                                if i in pset:
                                    wp = i
                                    break
                        sa_out[aidx] = (wp + 1) % P

                        # ST/LT for the winning input VC.
                        w = stage1[wp]
                        pv = wp * V + w
                        idx = rbase + pv
                        h = bh[idx]
                        token = buf[idx * D + h]
                        bh[idx] = (h + 1) % D
                        n = bc[idx] - 1
                        bc[idx] = n
                        if n == 0:
                            occ_r.remove(pv)
                        rbuf[r] -= 1
                        tb -= 1
                        n_st += 1
                        # Upstream credit for the freed buffer slot.
                        if wp == _LOCAL:
                            # NI credits skip the delay line: injection
                            # happens before compute, so a +1 here is first
                            # observable next cycle — 1-cycle latency.
                            nic[r * V + w] += 1
                        else:
                            u = nb[r * P + wp]
                            crv_next[u * P + _OPP[wp]] = w
                            wr_next.add(u)
                        n_credit += 1
                        out_vc = ov[idx]
                        cidx = rbase + o * V + out_vc
                        nseq[cidx] += 1
                        cred[cidx] -= 1
                        fseq = token & _SEQ_MASK
                        slot = token >> _SEQ_BITS
                        if o == _LOCAL:
                            n_local += 1
                            ejt_next[r] = token
                            wn_next.add(r)
                        else:
                            if fseq == 0:
                                pk_hops[slot] += 1
                            ln[r * P + o] += 1
                            n_mesh += 1
                            d_ = nb[r * P + o]
                            di = d_ * P + _OPP[o]
                            rxt_next[di] = token
                            rxv_next[di] = out_vc
                            wr_next.add(d_)
                        lf += 1
                        sends += 1
                        if fseq == pk_nf[slot] - 1:
                            # Tail: release the channel, reset the pipeline.
                            alloc[cidx] = -1
                            st[idx] = 0
                            op[idx] = -1
                            ov[idx] = -1
                            rtc[idx] = -1
                            vac[idx] = -1
                            cands[idx] = None
                if rbuf[r] == 0:
                    live.discard(r)

        # Publish the gauges before anything downstream (the utilization
        # recorder, the telemetry sampler) can read them off the kernel.
        self.total_buffered = tb
        self.line_flits = lf
        net._send_history.append(sends)
        if net.config.collect_utilization:
            stats.record_utilization(
                tb,
                net._tx_capacity,
                min(sum(net._send_history), net._retx_capacity),
                net._retx_capacity,
            )
        if tel is not None:
            tel.on_cycle_end(net)
        if stats.measuring:
            # One flush per cycle; dict equality is order-insensitive and
            # the `if` guards keep zero-valued keys from appearing.
            energy = stats.energy_events
            if n_local:
                energy["local_link"] += n_local
            if n_bufw:
                energy["buffer_write"] += n_bufw
            if n_rt:
                energy["rt_op"] += n_rt
            if n_vagrant:
                energy["va_grant"] += n_vagrant
            if n_st:
                energy["buffer_read"] += n_st
                energy["sa_grant"] += n_st
                energy["xbar"] += n_st
            if n_credit:
                energy["credit"] += n_credit
            if n_mesh:
                energy["link"] += n_mesh
                energy["retx_write"] += n_mesh
        stats.cycles += 1
        net.cycle += 1

        # Swap the delay lines and wake sets: everything sent this cycle
        # arrives next cycle.  The consumed *_cur sides were reset to empty
        # (-1 / cleared) as they were drained, so they can carry next
        # cycle's traffic.
        self.rxt_cur, self.rxt_next = self.rxt_next, self.rxt_cur
        self.rxv_cur, self.rxv_next = self.rxv_next, self.rxv_cur
        self.ejt_cur, self.ejt_next = self.ejt_next, self.ejt_cur
        self.crv_cur, self.crv_next = self.crv_next, self.crv_cur
        self.wr_cur, self.wr_next = self.wr_next, self.wr_cur
        self.wn_cur, self.wn_next = self.wn_next, self.wn_cur

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def in_flight_flits(self) -> int:
        return self.total_buffered + self.line_flits

    def make_sampler(self) -> KernelSampler:
        return KernelSampler(self)

    def __repr__(self) -> str:
        return (
            f"BatchedKernel({self.R} routers, buffered="
            f"{self.total_buffered}, lines={self.line_flits})"
        )
