"""Separable virtual-channel and switch allocators (Figure 1's VA and SA).

Both allocators use the standard two-stage *separable input-first* structure
built from per-resource arbiters:

* **VA**: an input VC requests one output VC out of the candidate set the
  routing function returned; stage 1 selects one candidate per input VC
  (rotating), stage 2 arbitrates each contested output VC among requesters.
  Granted pairings persist in the router's state table until the tail flit
  releases the wormhole.
* **SA**: an active input VC with a buffered flit and downstream credit bids
  for the crossbar; stage 1 picks one VC per input port (one crossbar input
  per cycle), stage 2 picks one input port per output port.

The allocators are *mechanism only*: fault injection perturbs their grants
from the outside and the Allocation Comparator (:mod:`repro.core`) checks
them, exactly as in Figure 12 where the AC observes the VA/SA state tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.noc.arbiters import RoundRobinArbiter

#: (port, vc) pair identifying an input or output virtual channel.
VCId = Tuple[int, int]


class VCAllocator:
    """Separable input-first virtual-channel allocator.

    Parameters
    ----------
    num_ports, num_vcs:
        Router geometry; there are ``num_ports * num_vcs`` input VCs and as
        many output VCs.
    """

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._input_rotation: Dict[VCId, int] = {}
        self._output_arbiters: Dict[VCId, RoundRobinArbiter] = {}
        n = num_ports * num_vcs
        for port in range(num_ports):
            for vc in range(num_vcs):
                self._output_arbiters[(port, vc)] = RoundRobinArbiter(n)

    def _input_choice(self, requester: VCId, candidates: Sequence[VCId]) -> VCId:
        """Stage 1: rotate through the candidate output VCs."""
        rotation = self._input_rotation.get(requester, 0)
        choice = candidates[rotation % len(candidates)]
        self._input_rotation[requester] = rotation + 1
        return choice

    def allocate(
        self,
        requests: Mapping[VCId, Sequence[VCId]],
        available: Mapping[VCId, bool],
    ) -> Dict[VCId, VCId]:
        """Run one allocation cycle.

        Parameters
        ----------
        requests:
            input VC -> non-empty sequence of candidate output VCs.
        available:
            output VC -> True if currently unallocated (and creditable).

        Returns
        -------
        dict mapping each granted input VC to its output VC.  Input VCs that
        lost arbitration simply retry next cycle.
        """
        # Stage 1: each input VC picks one available candidate.
        picks: Dict[VCId, VCId] = {}
        for requester, candidates in requests.items():
            usable = [c for c in candidates if available.get(c, False)]
            if not usable:
                continue
            picks[requester] = self._input_choice(requester, usable)

        # Stage 2: arbitrate contested output VCs.
        grants: Dict[VCId, VCId] = {}
        contested: Dict[VCId, List[VCId]] = {}
        for requester, out_vc in picks.items():
            contested.setdefault(out_vc, []).append(requester)
        for out_vc, requesters in contested.items():
            lines = [False] * (self.num_ports * self.num_vcs)
            index_of = {}
            for req in requesters:
                idx = req[0] * self.num_vcs + req[1]
                lines[idx] = True
                index_of[idx] = req
            winner_idx = self._output_arbiters[out_vc].arbitrate(lines)
            if winner_idx is not None:
                grants[index_of[winner_idx]] = out_vc
        return grants


class SwitchAllocator:
    """Separable input-first switch allocator.

    One crossbar input per input *port* per cycle and one crossbar output
    per output *port* per cycle.
    """

    def __init__(self, num_ports: int, num_vcs: int):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._input_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_ports)]
        self._output_arbiters = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]

    def allocate(self, requests: Mapping[VCId, int]) -> Dict[VCId, int]:
        """Run one switch-allocation cycle.

        Parameters
        ----------
        requests:
            input VC -> requested output port.

        Returns
        -------
        dict mapping granted input VCs to output ports; at most one grant
        per input port and per output port.
        """
        # Stage 1: per input port, pick one requesting VC.
        requesting_ports: Dict[int, List[int]] = {}
        for port, vc in requests:
            requesting_ports.setdefault(port, []).append(vc)
        stage1: Dict[int, VCId] = {}
        for port, vcs in requesting_ports.items():
            lines = [False] * self.num_vcs
            for vc in vcs:
                lines[vc] = True
            winner_vc = self._input_arbiters[port].arbitrate(lines)
            if winner_vc is not None:
                stage1[port] = (port, winner_vc)

        # Stage 2: per output port, pick one input port.
        grants: Dict[VCId, int] = {}
        bids: Dict[int, List[VCId]] = {}
        for in_vc in stage1.values():
            bids.setdefault(requests[in_vc], []).append(in_vc)
        for out_port, requesters in bids.items():
            lines = [False] * self.num_ports
            by_port: Dict[int, VCId] = {}
            for req in requesters:
                lines[req[0]] = True
                by_port[req[0]] = req
            winner_port = self._output_arbiters[out_port].arbitrate(lines)
            if winner_port is not None:
                grants[by_port[winner_port]] = out_port
        return grants
