#!/usr/bin/env python
"""Chaos drill: the campaign service must survive everything at once.

Runs a pinned six-variant campaign three times and injects supervisor-level
faults into the middle one (the unit suite proves each mechanism alone;
this proves they compose across real process boundaries):

1. **golden** — undisturbed run to completion; its per-variant canonical
   result envelopes (:func:`repro.service.cache.canonical_envelope`) are
   the reference bytes.
2. **chaos** — the same campaign with the works thrown at it:

   * one worker process is SIGSTOPped mid-run until the per-attempt
     watchdog SIGKILLs it (``error="timeout"``), and its variant's
     checkpoint is then truncated during the retry backoff window, so the
     retry must *discard* the corrupt checkpoint and restart from cycle 0;
   * another worker is SIGKILLed outright (``worker died without a
     result``), exercising checkpoint-resume on its retry;
   * the supervisor itself is SIGKILLed mid-journal — after at least one
     variant committed ``done`` but before the campaign finished — and the
     campaign is completed with ``repro campaign --resume``.

   The final row set must be complete (every variant exactly once, none
   failed), variants finished before the supervisor kill must not be
   re-leased after resume, the corrupt checkpoint must surface as
   ``metadata["checkpoint_discarded"]`` — and every variant's canonical
   envelope must be **bit-for-bit equal** to the golden run's.
3. **cache** — a fresh campaign pointed at the chaos run's result cache:
   every variant must be served from cache (``metadata["cache_hit"]``,
   zero attempts) with, again, byte-identical envelopes.

Exit status 0 on success, 1 on any divergence or sequencing failure.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.cache import canonical_envelope  # noqa: E402
from repro.service.journal import JournalError, read_journal  # noqa: E402

#: ~2-3s of simulation per variant locally (several x that on CI runners):
#: long enough that every injection lands mid-run, short enough for CI.
BASE = {
    "noc": {"shape": [6, 6]},
    "workload": {
        "num_messages": 2500,
        "warmup_messages": 200,
        "max_cycles": 200_000,
    },
}
#: v5 duplicates v0's config under a different name — the in-campaign
#: dedup case for the content-addressed cache.
RATES = [0.05, 0.07, 0.09, 0.11, 0.13, 0.05]

#: Generous per-attempt watchdog: far above an honest variant's runtime on
#: a slow runner, and the bound the SIGSTOPped worker must be killed at.
TIMEOUT = 20.0
#: First-retry backoff — the window in which the drill truncates the
#: stalled variant's checkpoint before its retry leases.
BACKOFF_BASE = 1.5

CLI = [sys.executable, "-m", "repro", "campaign"]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _fail(message: str) -> "NoReturn":  # noqa: F821 - py3.9 compat
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _spec(path: pathlib.Path) -> None:
    variants = [
        {
            "name": f"v{i}-rate{rate}",
            "config": {
                **BASE,
                "workload": {**BASE["workload"], "injection_rate": rate},
            },
        }
        for i, rate in enumerate(RATES)
    ]
    path.write_text(json.dumps({"variants": variants}))


def _worker_pids(supervisor_pid: int) -> "list[int]":
    """Live worker children of the supervisor (resource tracker excluded)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as fh:
                stat = fh.read().decode("ascii", "replace")
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
            if ppid != supervisor_pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmdline = fh.read().replace(b"\0", b" ").decode("utf-8", "replace")
        except (OSError, ValueError, IndexError):
            continue
        if "resource_tracker" in cmdline:
            continue
        pids.append(int(entry))
    return pids


def _journal_records(journal: pathlib.Path) -> "list[dict]":
    if not journal.exists():
        return []
    try:
        return read_journal(journal).records
    except JournalError:
        return []


def _wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
    _fail(f"timed out after {timeout:.0f}s waiting for {what}")


def _run_cli(argv: "list[str]", what: str) -> dict:
    proc = subprocess.run(
        CLI + argv, env=_env(), capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        _fail(f"{what} exited {proc.returncode}:\n{proc.stderr}\n{proc.stdout}")
    return json.loads(proc.stdout)


def _envelopes(rows: "list[dict]") -> "dict[str, bytes]":
    """name -> canonical result envelope for a ``--json`` row list."""
    out = {}
    for row in rows:
        if row["error"] is not None:
            _fail(f"variant {row['name']} failed: {row['error']}")
        if row["name"] in out:
            _fail(f"variant {row['name']} appears twice in the row set")
        out[row["name"]] = canonical_envelope(row["config"], row)
    return out


def _assert_equal(
    got: "dict[str, bytes]", golden: "dict[str, bytes]", what: str
) -> None:
    if set(got) != set(golden):
        _fail(
            f"{what}: row set mismatch — got {sorted(got)}, "
            f"expected {sorted(golden)}"
        )
    for name, envelope in golden.items():
        if got[name] != envelope:
            _fail(
                f"{what}: variant {name} envelope differs from golden:\n"
                f"  golden: {envelope!r}\n  got:    {got[name]!r}"
            )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = pathlib.Path(tmp)
        spec = root / "spec.json"
        _spec(spec)
        stopped: "list[int]" = []

        # ---- phase 1: golden -------------------------------------------
        print("golden: undisturbed campaign ...", file=sys.stderr)
        data = _run_cli(
            [str(spec), "--dir", str(root / "golden"), "--processes", "2",
             "--timeout", str(TIMEOUT), "--json"],
            "golden campaign",
        )
        golden = _envelopes(data["result"]["rows"])
        print(f"golden: {len(golden)} variants ok", file=sys.stderr)

        # ---- phase 2: chaos --------------------------------------------
        chaos_dir = root / "chaos"
        journal = chaos_dir / "journal.jsonl"
        checkpoints = chaos_dir / "checkpoints"
        print("chaos: starting victim supervisor ...", file=sys.stderr)
        supervisor = subprocess.Popen(
            CLI + [str(spec), "--dir", str(chaos_dir), "--processes", "2",
                   "--retries", "8", "--timeout", str(TIMEOUT),
                   "--backoff-base", str(BACKOFF_BASE),
                   "--backoff-seed", "7", "--json"],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until both workers are mid-run with checkpoints on disk,
            # so the stall victim has durable state to corrupt.
            _wait_for(
                lambda: len(_worker_pids(supervisor.pid)) >= 2
                and len(list(checkpoints.glob("*.ckpt"))) >= 2,
                60,
                "two workers with checkpoints",
            )
            workers = sorted(_worker_pids(supervisor.pid))

            # Injection 1: stall one worker past the per-attempt watchdog.
            os.kill(workers[0], signal.SIGSTOP)
            stopped.append(workers[0])
            print(f"chaos: SIGSTOP worker {workers[0]} (watchdog must kill "
                  f"it at {TIMEOUT:.0f}s)", file=sys.stderr)

            # Injection 2: SIGKILL the other worker outright.
            os.kill(workers[1], signal.SIGKILL)
            print(f"chaos: SIGKILL worker {workers[1]}", file=sys.stderr)
            _wait_for(
                lambda: any(
                    r["type"] == "attempt"
                    and r["error"].startswith("worker died")
                    for r in _journal_records(journal)
                ),
                30,
                "the killed worker's attempt record",
            )

            # The watchdog reaps the stalled worker; truncate that
            # variant's checkpoint inside its retry backoff window.
            timeout_record = _wait_for(
                lambda: next(
                    (r for r in _journal_records(journal)
                     if r["type"] == "attempt" and r["error"] == "timeout"),
                    None,
                ),
                TIMEOUT + 40,
                "the stalled worker's timeout record",
            )
            stalled = timeout_record["variant"]
            ckpt = checkpoints / f"variant_{stalled:04d}.ckpt"
            if not ckpt.exists():
                _fail(f"no checkpoint to corrupt for stalled variant {stalled}")
            with open(ckpt, "r+b") as fh:
                fh.truncate(40)  # mid-header: unreadable, not just stale
            print(f"chaos: truncated {ckpt.name} of stalled variant "
                  f"{stalled}", file=sys.stderr)

            # Injection 3: SIGKILL the supervisor mid-journal — after at
            # least one variant committed done, before the campaign ends.
            _wait_for(
                lambda: any(
                    r["type"] == "done" for r in _journal_records(journal)
                ),
                60,
                "a done record before the supervisor kill",
            )
            if supervisor.poll() is not None:
                _fail("supervisor finished before it could be killed — "
                      "the drill's workload is too short")
            os.kill(supervisor.pid, signal.SIGKILL)
            supervisor.wait(timeout=30)
            state = read_journal(journal)
            done_before = set(state.rows)
            if not done_before or len(done_before) >= len(RATES):
                _fail(
                    f"supervisor killed at the wrong moment: "
                    f"{len(done_before)}/{len(RATES)} variants terminal"
                )
            print(f"chaos: SIGKILLed supervisor with {len(done_before)} "
                  f"done, {len(RATES) - len(done_before)} unfinished",
                  file=sys.stderr)
        finally:
            if supervisor.poll() is None:  # pragma: no cover - safety net
                supervisor.kill()
                supervisor.wait()

        # ---- resume from the journal -----------------------------------
        print("chaos: resuming from the journal ...", file=sys.stderr)
        data = _run_cli(
            ["--resume", str(chaos_dir), "--json"], "campaign resume"
        )
        rows = data["result"]["rows"]
        _assert_equal(_envelopes(rows), golden, "chaos+resume")

        records = _journal_records(journal)
        resumed_at = next(
            i for i, r in enumerate(records) if r["type"] == "resumed"
        )
        releases = {
            r["variant"]
            for r in records[resumed_at:]
            if r["type"] == "leased"
        }
        if releases & done_before:
            _fail(
                f"variants {sorted(releases & done_before)} were done "
                "before the supervisor kill but re-leased after resume"
            )
        if not any(r["type"] == "checkpoint_discarded" for r in records):
            _fail("no checkpoint_discarded record: the truncated checkpoint "
                  "was never noticed")
        by_name = {row["name"]: row for row in rows}
        discarded = [
            row for row in rows
            if row["metadata"].get("checkpoint_discarded")
        ]
        if not discarded:
            _fail("no row carries metadata['checkpoint_discarded']")
        retried = [
            row for row in rows
            if row["metadata"]["attempts"] > 1
            and row["metadata"].get("attempt_errors")
        ]
        if not retried:
            _fail("no row records a retried attempt with attempt_errors")
        print(
            f"chaos: complete — {len(done_before)} rows carried over, "
            f"{len(retried)} variant(s) retried with full attempt history, "
            f"checkpoint discard recorded on "
            f"{discarded[0]['name']}", file=sys.stderr,
        )

        # ---- phase 3: cache reuse --------------------------------------
        print("cache: fresh campaign against the chaos cache ...",
              file=sys.stderr)
        data = _run_cli(
            [str(spec), "--dir", str(root / "rerun"),
             "--cache-dir", str(chaos_dir / "cache"), "--json"],
            "cached campaign",
        )
        cached_rows = data["result"]["rows"]
        _assert_equal(_envelopes(cached_rows), golden, "cache rerun")
        misses = [
            row["name"]
            for row in cached_rows
            if not row["metadata"].get("cache_hit")
            or row["metadata"]["attempts"] != 0
        ]
        if misses:
            _fail(f"variants not served from cache: {misses}")
        stats = data["result"]["stats"]
        if stats["cache_hits"] != len(RATES):
            _fail(f"expected {len(RATES)} cache hits, got "
                  f"{stats['cache_hits']}")

        for pid in stopped:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

        print(
            f"PASS: {len(golden)} variants survived worker SIGKILL, "
            "watchdog stall, checkpoint corruption and a supervisor "
            "SIGKILL+resume with bit-for-bit golden envelopes; full "
            "cache replay verified"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
