#!/usr/bin/env python
"""Regenerate ``tests/telemetry/golden_run.ndjson``.

The golden file pins the NDJSON export of one seeded scenario byte for
byte: schema drift, event reordering, or a publish site gaining or losing
a firing all show up as a diff.  ``tests/telemetry/test_export_golden.py``
imports :func:`golden_config` from here so the committed file and the test
can never disagree about the scenario.

Run after an *intentional* schema or event-taxonomy change::

    python tools/regen_telemetry_golden.py

then commit the updated golden file together with the change that moved it.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_PATH = REPO_ROOT / "tests" / "telemetry" / "golden_run.ndjson"


def golden_config():
    """The pinned scenario: 4x4 mesh, link faults, telemetry every 50 cycles."""
    from repro.config import (
        FaultConfig,
        NoCConfig,
        SimulationConfig,
        WorkloadConfig,
    )
    from repro.telemetry import TelemetryConfig

    return SimulationConfig(
        noc=NoCConfig(width=4, height=4),
        faults=FaultConfig.link_only(0.02, seed=7),
        workload=WorkloadConfig(
            injection_rate=0.1,
            num_messages=120,
            warmup_messages=20,
            max_cycles=50_000,
        ),
        telemetry=TelemetryConfig(enabled=True, metrics_interval=50),
    )


def golden_lines():
    """The NDJSON lines the pinned scenario produces (no file I/O)."""
    from repro.noc.simulator import run_simulation
    from repro.serialization import config_to_dict
    from repro.telemetry import ndjson_lines

    config = golden_config()
    result = run_simulation(config)
    return list(ndjson_lines(result.telemetry, config=config_to_dict(config)))


def regenerate(path: Path = GOLDEN_PATH) -> int:
    lines = golden_lines()
    path.write_text("\n".join(lines) + "\n")
    return len(lines)


if __name__ == "__main__":
    count = regenerate()
    print(f"wrote {GOLDEN_PATH} ({count} lines)")
