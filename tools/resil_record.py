#!/usr/bin/env python
"""Record the simulator's resilience trajectory in ``RESIL_noc.json``.

The fault-tolerance twin of ``tools/bench_record.py``: runs a pinned
scenario matrix — the graceful-degradation campaign per routing algorithm
(fault-aware ``ft_table`` vs non-reroutable ``west_first``) plus the
intermittent/wear-out burst sweep — and appends one record to the JSON
trajectory file, so the repo carries its own resilience history across
PRs and a change that silently degrades fault tolerance fails CI exactly
like a performance regression would (docs/FAULTS.md).

Usage::

    PYTHONPATH=src python tools/resil_record.py [--label "PR 8"]
    PYTHONPATH=src python tools/resil_record.py --check --no-append

``--check`` additionally enforces the resilience floors on the freshly
measured numbers:

* **ft_table delivery** — with ``--kills`` dead links, fault-aware
  routing must still deliver at least ``--min-ft-delivery`` of injected
  packets (and 100% on the healthy mesh);
* **ft_table latency inflation** — detours at the deepest kill level may
  not exceed ``--max-ft-inflation`` of healthy latency;
* **reconvergence** — every kill level must finish its drain (no
  ``hit_cycle_limit``) and absorb the mid-run kill within
  ``--max-reconvergence`` cycles;
* **rerouting must matter** — ft_table's deepest-level delivery must
  beat west_first's by at least ``--min-reroute-gain`` (the reason the
  fault-aware machinery exists);
* **pillar kills** — on the 3D stack, delivery with every TSV pillar of
  ``--kills`` columns severed must stay at least ``--min-pillar-delivery``
  (and 100% on the healthy stack), with every drain finishing;
* **burst storm** — under the stormy cell (strike rate
  ``--burst-rate``, wear threshold ``--wear-threshold``) delivery must
  stay at least ``--min-burst-delivery``, the wear-out lifecycle must
  actually escalate at least one site, and the burst-free cell must
  deliver everything.

Exits non-zero when a floor is violated, so CI can gate on it.

File schema (list of records, oldest first)::

    [
      {
        "timestamp": "...",
        "label": "PR 8",
        "git_rev": "abc1234",
        "scenario": {"width": 6, "height": 6, "kills": 4, ...},
        "degradation": {
          "ft_table":   [{"kills": 0, "delivery_rate": 1.0, ...}, ...],
          "west_first": [...]
        },
        "burst": [{"burst_rate": 0.0, "wear_threshold": null, ...}, ...]
      },
      ...
    ]
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import pathlib
import subprocess
import sys
import warnings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.degradation import (  # noqa: E402
    run_burst_degradation,
    run_degradation,
)
from repro.types import RoutingAlgorithm  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "RESIL_noc.json"

#: The pinned scenario matrix.  Small enough for CI, large enough that
#: every layer (reroute, drain, burst, escalation) genuinely engages.
SCENARIO = {
    "width": 6,
    "height": 6,
    "kills": 4,
    "injection_rate": 0.08,
    "inject_cycles": 800,
    "drain_cycles": 15_000,
    "seed": 2006,
    "burst": {
        "width": 4,
        "height": 4,
        "burst_rates": [0.0, 0.5],
        "wear_thresholds": [None, 10.0],
        "num_sites": 4,
        "mean_on": 40.0,
        "mean_off": 120.0,
        "injection_rate": 0.1,
        "inject_cycles": 800,
        "drain_cycles": 15_000,
        "seed": 2006,
    },
    # Whole-pillar TSV failures on the 3D stack: each kill level severs
    # every vertical link of one more (x, y) column, the characteristic
    # 3D-integration fault unit, under 2-cycle TSV link latency.
    "pillar": {
        "shape": [3, 3, 3],
        "link_latency": [1, 1, 2],
        "kills": 3,
        "injection_rate": 0.08,
        "inject_cycles": 800,
        "drain_cycles": 15_000,
        "seed": 2006,
    },
}

ROUTINGS = (RoutingAlgorithm.FT_TABLE, RoutingAlgorithm.WEST_FIRST)


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def _round(value: float, digits: int = 4) -> float:
    return round(value, digits)


def measure() -> dict:
    scenario = SCENARIO
    degradation = {}
    for routing in ROUTINGS:
        with warnings.catch_warnings():
            # west_first deliberately runs without rerouting; the NOC013
            # warning is the point of the comparison, not noise for CI.
            warnings.filterwarnings("ignore", message=".*NOC013.*")
            points = run_degradation(
                width=scenario["width"],
                height=scenario["height"],
                max_kills=scenario["kills"],
                injection_rate=scenario["injection_rate"],
                inject_cycles=scenario["inject_cycles"],
                drain_cycles=scenario["drain_cycles"],
                seed=scenario["seed"],
                routing=routing,
            )
        rows = []
        for p in points:
            row = dataclasses.asdict(p)
            for key in ("delivery_rate", "reachable_fraction",
                        "avg_latency", "latency_inflation"):
                row[key] = _round(row[key])
            rows.append(row)
        degradation[routing.value] = rows
        worst = rows[-1]
        print(
            f"{routing.value:>12}: delivery {rows[0]['delivery_rate']:.3f}"
            f" -> {worst['delivery_rate']:.3f} over {scenario['kills']} kills,"
            f" inflation {worst['latency_inflation']:.2f}x,"
            f" reconvergence {worst['reconvergence_cycles']} cycles",
            file=sys.stderr,
        )

    pillar_cfg = scenario["pillar"]
    pillar_points = run_degradation(
        max_kills=pillar_cfg["kills"],
        injection_rate=pillar_cfg["injection_rate"],
        inject_cycles=pillar_cfg["inject_cycles"],
        drain_cycles=pillar_cfg["drain_cycles"],
        seed=pillar_cfg["seed"],
        routing=RoutingAlgorithm.FT_TABLE,
        shape=tuple(pillar_cfg["shape"]),
        link_latency=tuple(pillar_cfg["link_latency"]),
        kill_pillars=True,
    )
    pillar_rows = []
    for p in pillar_points:
        row = dataclasses.asdict(p)
        for key in ("delivery_rate", "reachable_fraction",
                    "avg_latency", "latency_inflation"):
            row[key] = _round(row[key])
        pillar_rows.append(row)
    worst_pillar = pillar_rows[-1]
    print(
        f"{'pillar':>12}: delivery {pillar_rows[0]['delivery_rate']:.3f}"
        f" -> {worst_pillar['delivery_rate']:.3f} over"
        f" {pillar_cfg['kills']} TSV-pillar kills,"
        f" inflation {worst_pillar['latency_inflation']:.2f}x",
        file=sys.stderr,
    )

    burst_cfg = scenario["burst"]
    burst_points = run_burst_degradation(
        width=burst_cfg["width"],
        height=burst_cfg["height"],
        burst_rates=tuple(burst_cfg["burst_rates"]),
        wear_thresholds=tuple(burst_cfg["wear_thresholds"]),
        num_sites=burst_cfg["num_sites"],
        mean_on=burst_cfg["mean_on"],
        mean_off=burst_cfg["mean_off"],
        injection_rate=burst_cfg["injection_rate"],
        inject_cycles=burst_cfg["inject_cycles"],
        drain_cycles=burst_cfg["drain_cycles"],
        seed=burst_cfg["seed"],
    )
    burst_rows = []
    for p in burst_points:
        row = dataclasses.asdict(p)
        for key in ("delivery_rate", "avg_latency", "latency_inflation"):
            row[key] = _round(row[key])
        burst_rows.append(row)
        wear = row["wear_threshold"]
        print(
            f"{'burst':>12}: rate {row['burst_rate']:.1f}"
            f" wear {'off' if wear is None else wear}"
            f" -> delivery {row['delivery_rate']:.3f},"
            f" strikes {row['intermittent_strikes']},"
            f" escalated {row['escalations']}",
            file=sys.stderr,
        )
    return {
        "degradation": degradation,
        "pillar": pillar_rows,
        "burst": burst_rows,
    }


def _burst_cell(rows: list, rate: float, threshold) -> dict:
    for row in rows:
        if row["burst_rate"] == rate and row["wear_threshold"] == threshold:
            return row
    raise KeyError(f"burst cell (rate={rate}, wear={threshold}) not measured")


def check_floors(
    results: dict,
    min_ft_delivery: float,
    max_ft_inflation: float,
    max_reconvergence: int,
    min_reroute_gain: float,
    min_burst_delivery: float,
    burst_rate: float,
    wear_threshold: float,
    min_pillar_delivery: float,
) -> list:
    failures = []
    ft = results["degradation"]["ft_table"]
    wf = results["degradation"]["west_first"]

    healthy = ft[0]
    if healthy["delivery_rate"] < 1.0:
        failures.append(
            f"healthy ft_table mesh delivered only "
            f"{healthy['delivery_rate']:.3f} of injected packets"
        )
    worst = ft[-1]
    if worst["delivery_rate"] < min_ft_delivery:
        failures.append(
            f"ft_table delivery {worst['delivery_rate']:.3f} with "
            f"{worst['kills']} dead links is below the "
            f"{min_ft_delivery:.2f} floor"
        )
    if worst["latency_inflation"] > max_ft_inflation:
        failures.append(
            f"ft_table latency inflation {worst['latency_inflation']:.2f}x "
            f"with {worst['kills']} dead links exceeds the "
            f"{max_ft_inflation:.1f}x ceiling"
        )
    for row in ft:
        if row["hit_cycle_limit"]:
            failures.append(
                f"ft_table level {row['kills']} never finished its drain "
                "(hit_cycle_limit)"
            )
        if row["reconvergence_cycles"] > max_reconvergence:
            failures.append(
                f"ft_table level {row['kills']} took "
                f"{row['reconvergence_cycles']} cycles to reconverge, over "
                f"the {max_reconvergence} ceiling"
            )
    gain = worst["delivery_rate"] - wf[-1]["delivery_rate"]
    if gain < min_reroute_gain:
        failures.append(
            f"fault-aware rerouting gains only {gain:.3f} delivery over "
            f"west_first at {worst['kills']} kills, below the "
            f"{min_reroute_gain:.2f} floor — the reroute machinery is not "
            "earning its keep"
        )

    pillar = results["pillar"]
    if pillar[0]["delivery_rate"] < 1.0:
        failures.append(
            f"healthy 3D stack delivered only "
            f"{pillar[0]['delivery_rate']:.3f} of injected packets"
        )
    worst_pillar = pillar[-1]
    if worst_pillar["delivery_rate"] < min_pillar_delivery:
        failures.append(
            f"pillar-kill delivery {worst_pillar['delivery_rate']:.3f} with "
            f"{worst_pillar['kills']} dead TSV pillars is below the "
            f"{min_pillar_delivery:.2f} floor"
        )
    for row in pillar:
        if row["hit_cycle_limit"]:
            failures.append(
                f"pillar level {row['kills']} never finished its drain "
                "(hit_cycle_limit)"
            )

    burst = results["burst"]
    clean = _burst_cell(burst, 0.0, None)
    if clean["delivery_rate"] < 1.0:
        failures.append(
            f"burst-free cell delivered only {clean['delivery_rate']:.3f}"
        )
    stormy = _burst_cell(burst, burst_rate, wear_threshold)
    if stormy["delivery_rate"] < min_burst_delivery:
        failures.append(
            f"burst-storm delivery {stormy['delivery_rate']:.3f} (rate "
            f"{burst_rate}, wear {wear_threshold}) is below the "
            f"{min_burst_delivery:.2f} floor"
        )
    if stormy["intermittent_strikes"] == 0:
        failures.append("the burst storm landed zero intermittent strikes")
    if stormy["escalations"] < 1:
        failures.append(
            "the wear-out lifecycle never escalated a site in the storm "
            "cell — the soft-to-hard path is not engaging"
        )
    if stormy["hit_cycle_limit"]:
        failures.append("the burst-storm cell never finished its drain")
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"trajectory file to append to (default {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument("--label", default="", help="free-form record label")
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the resilience floors; exit 1 on violation",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="measure (and --check) without writing the trajectory file",
    )
    parser.add_argument("--min-ft-delivery", type=float, default=0.93)
    parser.add_argument("--max-ft-inflation", type=float, default=1.5)
    parser.add_argument("--max-reconvergence", type=int, default=2000)
    parser.add_argument("--min-reroute-gain", type=float, default=0.01)
    parser.add_argument("--min-burst-delivery", type=float, default=0.90)
    parser.add_argument("--min-pillar-delivery", type=float, default=0.90)
    args = parser.parse_args(argv)

    results = measure()
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "label": args.label,
        "git_rev": git_rev(),
        "scenario": SCENARIO,
        "degradation": results["degradation"],
        "pillar": results["pillar"],
        "burst": results["burst"],
    }

    if not args.no_append:
        history = []
        if args.output.exists():
            history = json.loads(args.output.read_text())
        history.append(record)
        args.output.write_text(json.dumps(history, indent=2) + "\n")
        print(f"appended record {len(history)} to {args.output}", file=sys.stderr)

    if args.check:
        stormy_rate = max(SCENARIO["burst"]["burst_rates"])
        stormy_wear = next(
            t for t in SCENARIO["burst"]["wear_thresholds"] if t is not None
        )
        failures = check_floors(
            results,
            args.min_ft_delivery,
            args.max_ft_inflation,
            args.max_reconvergence,
            args.min_reroute_gain,
            args.min_burst_delivery,
            stormy_rate,
            stormy_wear,
            args.min_pillar_delivery,
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("all resilience floors hold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
