#!/usr/bin/env python
"""Validate a telemetry NDJSON stream (CI smoke check).

Reads one or more NDJSON files produced by ``repro run --telemetry`` (or
stdin when no paths are given) and checks every line against the
``repro/v1`` schema: a well-formed header envelope, known event kinds,
integer cycles and node ids, numeric sample values.  Exits non-zero and
prints one problem per line when anything is off.

Usage::

    python tools/validate_telemetry.py out.ndjson [more.ndjson ...]
    repro run --telemetry /dev/stdout ... | python tools/validate_telemetry.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main(argv=None) -> int:
    from repro.telemetry import validate_ndjson_lines

    argv = sys.argv[1:] if argv is None else argv
    sources = argv or ["-"]
    failed = False
    for source in sources:
        if source == "-":
            name, lines = "<stdin>", sys.stdin.read().splitlines()
        else:
            name, lines = source, Path(source).read_text().splitlines()
        problems = validate_ndjson_lines(lines)
        if problems:
            failed = True
            for problem in problems:
                print(f"{name}: {problem}")
        else:
            print(f"{name}: OK ({len(lines)} lines)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
