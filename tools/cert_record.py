#!/usr/bin/env python
"""Regenerate and check the ``CERT_routing.json`` routing certificate.

The certificate (built by :func:`repro.analysis.verify.build_standard_certificate`)
statically proves connectivity, livelock-freedom and deadlock-freedom for the
repo's standard platforms, including exhaustive single-link-kill and seeded
multi-kill robustness sweeps of the fault-aware table routing.  Unlike the
performance trajectory in ``BENCH_simulator.json`` it is fully deterministic
— no timestamps, fixed sweep seeds — so CI regenerates it and *diffs* it
against the committed artifact: any resilience regression (a platform losing
its certificate, a witness cycle changing) shows up as a failing job and a
reviewable diff.

Usage::

    PYTHONPATH=src:. python tools/cert_record.py            # rewrite artifact
    PYTHONPATH=src:. python tools/cert_record.py --check    # CI gate

``--check`` regenerates the certificate in memory and fails when

* it differs from the committed ``CERT_routing.json`` (stale artifact), or
* any target violates its pinned ``expect`` block (e.g. the 5x5 ft_table
  mesh no longer certifies under exhaustive single-link kills) — this
  catches regressions even if someone regenerates the artifact without
  looking at it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.verify import (  # noqa: E402
    build_standard_certificate,
    check_expectations,
)

DEFAULT_OUTPUT = REPO_ROOT / "CERT_routing.json"


def render(certificate: dict) -> str:
    return json.dumps(certificate, indent=2, sort_keys=True) + "\n"


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"certificate file (default {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regenerate in memory, diff against the committed artifact and "
        "enforce every target's expect block; exit 1 on any mismatch",
    )
    args = parser.parse_args(argv)

    certificate = build_standard_certificate()
    text = render(certificate)
    failures = []
    for entry in certificate["targets"]:
        failures.extend(check_expectations(entry, entry["expect"]))

    if args.check:
        if not args.output.exists():
            failures.append(f"{args.output.name} is not committed")
        elif args.output.read_text() != text:
            failures.append(
                f"{args.output.name} is stale: regenerate with "
                "`PYTHONPATH=src python tools/cert_record.py` and commit the diff"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"certificate up to date: {len(certificate['targets'])} targets, "
            "all expectations hold",
            file=sys.stderr,
        )
        return 0

    args.output.write_text(text)
    print(f"wrote {args.output}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"WARNING: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
