#!/usr/bin/env python
"""The lint session: every static check the repo defines, in one command.

Runs, in order:

1. ``ruff check`` over ``src`` and ``tests`` (if ruff is installed),
2. ``mypy`` over the strictly-typed ``repro.analysis`` package (if mypy is
   installed),
3. ``repro lint examples/configs`` — the repo's own NoC config linter over
   the shipped example configs (always; no third-party dependency),
4. the determinism analyzer (``repro.analysis.determinism``) over
   ``src/repro`` — zero findings required (always; stdlib-only).

Ruff and mypy are optional extras (``pip install -e .[lint]``): when absent
they are skipped with a notice rather than failing, so the session works in
the dependency-free environment the simulator itself targets.  Pass
``--require-tools`` (CI does) to turn a missing ruff/mypy into a hard
failure instead of a skip — a CI image that silently lost its linters must
not report green.  Exit status is non-zero if any check that actually ran
failed.

Usage::

    python tools/lint.py [--require-tools]
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_step(name: str, argv: list) -> int:
    print(f"== {name}: {' '.join(argv)}")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(argv, cwd=REPO, env=env)
    status = "ok" if result.returncode == 0 else f"FAILED ({result.returncode})"
    print(f"== {name}: {status}\n")
    return result.returncode


def main(argv: "list | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--require-tools",
        action="store_true",
        help="fail (instead of skip) when ruff or mypy is not installed",
    )
    args = parser.parse_args(argv)

    failures = 0

    for tool, tool_argv in (
        ("ruff", [sys.executable, "-m", "ruff", "check", "src", "tests"]),
        ("mypy", [sys.executable, "-m", "mypy", "-p", "repro.analysis"]),
    ):
        if importlib.util.find_spec(tool) is not None:
            failures += bool(run_step(tool, tool_argv))
        elif args.require_tools:
            print(f"== {tool}: not installed, FAILED (--require-tools)\n")
            failures += 1
        else:
            print(f"== {tool}: not installed, skipping (pip install -e .[lint])\n")

    env_cmd = [sys.executable, "-m", "repro", "lint", "examples/configs"]
    failures += bool(run_step("repro lint", env_cmd))

    det_cmd = [sys.executable, "-m", "repro.analysis.determinism", "src/repro"]
    failures += bool(run_step("determinism", det_cmd))

    if failures:
        print(f"lint session: {failures} check(s) failed")
        return 1
    print("lint session: all checks passed")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(SRC))
    sys.exit(main())
