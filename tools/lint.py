#!/usr/bin/env python
"""The lint session: every static check the repo defines, in one command.

Runs, in order:

1. ``ruff check`` over ``src`` and ``tests`` (if ruff is installed),
2. ``mypy`` over the strictly-typed ``repro.analysis`` package (if mypy is
   installed),
3. ``repro lint examples/configs`` — the repo's own NoC config linter over
   the shipped example configs (always; no third-party dependency).

Ruff and mypy are optional extras (``pip install -e .[lint]``): when absent
they are skipped with a notice rather than failing, so the session works in
the dependency-free environment the simulator itself targets.  Exit status
is non-zero if any check that actually ran failed.

Usage::

    python tools/lint.py
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_step(name: str, argv: list) -> int:
    print(f"== {name}: {' '.join(argv)}")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(argv, cwd=REPO, env=env)
    status = "ok" if result.returncode == 0 else f"FAILED ({result.returncode})"
    print(f"== {name}: {status}\n")
    return result.returncode


def main() -> int:
    failures = 0

    if importlib.util.find_spec("ruff") is not None:
        failures += bool(
            run_step(
                "ruff", [sys.executable, "-m", "ruff", "check", "src", "tests"]
            )
        )
    else:
        print("== ruff: not installed, skipping (pip install -e .[lint])\n")

    if importlib.util.find_spec("mypy") is not None:
        failures += bool(
            run_step(
                "mypy",
                [sys.executable, "-m", "mypy", "-p", "repro.analysis"],
            )
        )
    else:
        print("== mypy: not installed, skipping (pip install -e .[lint])\n")

    env_cmd = [sys.executable, "-m", "repro", "lint", "examples/configs"]
    failures += bool(run_step("repro lint", env_cmd))

    if failures:
        print(f"lint session: {failures} check(s) failed")
        return 1
    print("lint session: all checks passed")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(SRC))
    sys.exit(main())
