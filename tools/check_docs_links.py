#!/usr/bin/env python
"""Check relative links and anchors in the repo's markdown documentation.

Scans the documentation set (README.md, DESIGN.md, EXPERIMENTS.md, and
everything under docs/) for ``[text](target)`` links and verifies:

* relative file targets exist (relative to the containing file),
* ``#anchor`` fragments — same-file or on a linked markdown file — match a
  heading in the target (GitHub slug rules),
* no link points outside the repository.

External links (``http://``, ``https://``, ``mailto:``) are skipped — CI
must not flake on someone else's server.

Additionally enforces **module coverage**: every module under
``src/repro/noc/``, ``src/repro/faults/`` and ``src/repro/service/``
must be referenced from at least one page in ``docs/`` (as
``noc/<mod>.py``, ``noc.<mod>``, or inside a ``noc/{a,b}.py`` brace
group — likewise for ``faults/`` and ``service/``), so new simulator,
fault-model and campaign-service modules cannot land undocumented.

Exits non-zero listing every broken link or uncovered module.  Also usable
as a library (``tests/test_docs_links.py``).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
DOC_DIRS = ["docs"]

#: Inline markdown links.  Deliberately simple: no nested parentheses in
#: targets (none of our docs need them), images share the same syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> List[pathlib.Path]:
    files = [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]
    for dirname in DOC_DIRS:
        files.extend(sorted((REPO_ROOT / dirname).glob("**/*.md")))
    return files


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's heading-to-anchor slug, with duplicate numbering."""
    # Inline code/emphasis markers disappear, then punctuation (except
    # hyphens/underscores), then spaces become hyphens.
    text = re.sub(r"[`*]", "", heading.lower())
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def anchors_of(markdown_path: pathlib.Path) -> Set[str]:
    text = CODE_FENCE.sub("", markdown_path.read_text())
    seen: Dict[str, int] = {}
    return {github_slug(h, seen) for h in HEADING.findall(text)}


def check_file(path: pathlib.Path) -> List[str]:
    problems = []
    text = CODE_FENCE.sub("", path.read_text())
    rel = path.relative_to(REPO_ROOT)
    for target in LINK.findall(text):
        if target.startswith(SKIP_SCHEMES):
            continue
        target, _, fragment = target.partition("#")
        if not target:
            # Same-file anchor.
            if fragment and fragment not in anchors_of(path):
                problems.append(f"{rel}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.is_relative_to(REPO_ROOT):
            problems.append(f"{rel}: link escapes the repository: {target}")
            continue
        if not resolved.exists():
            problems.append(f"{rel}: broken link {target}")
            continue
        if fragment:
            if resolved.suffix.lower() != ".md":
                problems.append(
                    f"{rel}: anchor on non-markdown target {target}#{fragment}"
                )
            elif fragment not in anchors_of(resolved):
                problems.append(f"{rel}: broken anchor {target}#{fragment}")
    return problems


#: Directories whose modules every docs page set must cover, relative to
#: the repo root.
MODULE_DIRS = ["src/repro/noc", "src/repro/faults", "src/repro/service"]

#: How a docs page may reference a module: ``noc/kernel.py``,
#: ``repro.noc.kernel``, or a brace group like ``noc/{flit,packet}.py``
#: (the dependency diagram's idiom) — and the same three shapes under
#: ``faults/``.  Scanned on raw text — the ARCHITECTURE.md diagram lives
#: inside a code fence.
MODULE_REF = re.compile(
    r"(?:noc|faults|service)/\{([\w,]+)\}\.py"
    r"|(?:noc|faults|service)/(\w+)\.py"
    r"|(?:noc|faults|service)\.(\w+)"
)


def check_module_coverage() -> List[str]:
    problems = []
    pages = [
        path
        for path in doc_files()
        if path.parent != REPO_ROOT  # pages under docs/, not top-level
    ]
    referenced: Set[str] = set()
    for path in pages:
        for match in MODULE_REF.finditer(path.read_text()):
            group, single, dotted = match.groups()
            if group:
                referenced.update(group.split(","))
            else:
                referenced.add(single or dotted)
    for dirname in MODULE_DIRS:
        for module in sorted((REPO_ROOT / dirname).glob("*.py")):
            if module.stem != "__init__" and module.stem not in referenced:
                problems.append(
                    f"{dirname}/{module.name} is not referenced from any "
                    "page under docs/"
                )
    return problems


#: Pages the documentation set must always carry (each is the reference
#: for a subsystem CI gates on); deleting one fails the link check even
#: though no link would dangle after an index edit.
REQUIRED_PAGES = [
    "docs/ARCHITECTURE.md",
    "docs/PERFORMANCE.md",
    "docs/KERNEL.md",
    "docs/OBSERVABILITY.md",
    "docs/CHECKPOINTING.md",
    "docs/VERIFICATION.md",
    "docs/FAULTS.md",
    "docs/TOPOLOGY.md",
    "docs/CAMPAIGNS.md",
]


def check_required_pages() -> List[str]:
    return [
        f"required documentation page {page} is missing"
        for page in REQUIRED_PAGES
        if not (REPO_ROOT / page).exists()
    ]


def check_all() -> List[str]:
    problems = []
    for path in doc_files():
        problems.extend(check_file(path))
    problems.extend(check_module_coverage())
    problems.extend(check_required_pages())
    return problems


def main() -> int:
    files = doc_files()
    problems = check_all()
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} files, {len(problems)} problems "
        "(broken links/anchors + undocumented modules)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
