#!/usr/bin/env python
"""Kill-and-resume smoke: SIGKILL a checkpointing run, resume, compare.

The end-to-end crash drill that CI runs on every push (the unit suite
proves resume equivalence in-process; this proves it across a real process
boundary with a real ``kill -9``):

1. run ``repro run --checkpoint ... --json`` to completion — the golden
   envelope;
2. start the *identical* command as a child process, wait for its first
   checkpoint file to land, and SIGKILL it mid-run (no atexit, no flush —
   the only survivor is the atomically-written checkpoint);
3. ``repro run --resume <checkpoint> --json`` and require the resumed
   envelope to be byte-identical to the golden one.

Both runs use the same checkpoint path, so the envelopes (which embed the
config, checkpoint fields included) are comparable byte-for-byte.

Exit status 0 on success, 1 on any divergence or sequencing failure.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.checkpoint import CheckpointError, read_checkpoint_header  # noqa: E402

#: A run long enough (tens of seconds of wall clock on CI hardware) that the
#: SIGKILL reliably lands mid-run, with transient link faults so the resume
#: is exercised on a stressed configuration, not a toy one.
RUN_FLAGS = [
    "--width", "8", "--height", "8",
    "--rate", "0.3",
    "--messages", "3000",
    "--warmup", "400",
    "--link-error-rate", "0.01",
    "--seed", "7",
]
CHECKPOINT_INTERVAL = 200


def _run_cmd(checkpoint: pathlib.Path) -> list:
    return [
        sys.executable, "-m", "repro", "run",
        *RUN_FLAGS,
        "--checkpoint", str(checkpoint),
        "--checkpoint-interval", str(CHECKPOINT_INTERVAL),
        "--json",
    ]


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--checkpoint-wait",
        type=float,
        default=120.0,
        help="seconds to wait for the victim's first checkpoint (default 120)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-kill-resume-") as tmp:
        ckpt = pathlib.Path(tmp) / "run.ckpt"
        cmd = _run_cmd(ckpt)
        env = _child_env()

        print("golden: running to completion ...", file=sys.stderr)
        golden = subprocess.run(
            cmd, env=env, capture_output=True, text=True, check=False
        )
        if golden.returncode != 0:
            return _fail(
                f"golden run exited {golden.returncode}:\n{golden.stderr}"
            )
        golden_envelope = golden.stdout
        written = json.loads(golden_envelope)["result"]["counters"].get(
            "checkpoints_written", 0
        )
        if written < 2:
            return _fail(
                f"golden run wrote only {written} checkpoint(s); the "
                "workload is too short for a meaningful mid-run kill"
            )
        ckpt.unlink()  # the victim must produce its own

        print("victim: starting, will SIGKILL after first checkpoint ...",
              file=sys.stderr)
        victim = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + args.checkpoint_wait
        try:
            while not ckpt.exists():
                if victim.poll() is not None:
                    return _fail(
                        f"victim exited {victim.returncode} before its "
                        "first checkpoint — nothing to kill"
                    )
                if time.monotonic() > deadline:
                    return _fail(
                        f"no checkpoint after {args.checkpoint_wait:.0f}s"
                    )
                time.sleep(0.05)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:  # pragma: no cover - safety net
                victim.kill()
                victim.wait()
        if victim.returncode != -signal.SIGKILL:
            return _fail(
                f"victim exited {victim.returncode}, expected death by "
                "SIGKILL — it finished before the kill landed"
            )
        try:
            killed_at = read_checkpoint_header(ckpt)["cycle"]
        except CheckpointError as exc:
            return _fail(f"checkpoint unreadable after SIGKILL: {exc}")
        print(f"victim: killed; last durable checkpoint at cycle {killed_at}",
              file=sys.stderr)

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--resume", str(ckpt),
             "--json"],
            env=env, capture_output=True, text=True, check=False,
        )
        if resumed.returncode != 0:
            return _fail(
                f"resume exited {resumed.returncode}:\n{resumed.stderr}"
            )
        if resumed.stdout != golden_envelope:
            for i, (g, r) in enumerate(
                zip(golden_envelope.splitlines(), resumed.stdout.splitlines())
            ):
                if g != r:
                    print(f"first diff at line {i + 1}:", file=sys.stderr)
                    print(f"  golden:  {g}", file=sys.stderr)
                    print(f"  resumed: {r}", file=sys.stderr)
                    break
            return _fail("resumed envelope differs from golden")

        cycles = json.loads(golden_envelope)["result"]["cycles"]
        print(
            f"PASS: killed at cycle {killed_at}, resumed to cycle {cycles}, "
            "envelope byte-identical to the uninterrupted run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
