#!/usr/bin/env python
"""Record the simulator's cycles/second trajectory in ``BENCH_simulator.json``.

Measures each workload point from :mod:`benchmarks.workloads` (idle, loaded,
saturation) under both cycle loops — the activity-driven fast path and the
full polling loop — and appends one record to the JSON trajectory file, so
the repo carries its own performance history across PRs.

Usage::

    PYTHONPATH=src:. python tools/bench_record.py [--label "PR 2"]
    PYTHONPATH=src:. python tools/bench_record.py --check

``--check`` additionally enforces the regression floors of ISSUE 2 /
docs/PERFORMANCE.md on the freshly measured numbers:

* idle mesh: activity-driven must be at least ``--min-idle-speedup`` (2x)
  faster than the full loop;
* saturation: activity-driven must not fall below ``--max-sat-regression``
  (0.8x) of the full loop's throughput;
* checkpointing: a loaded Simulator with the auto-checkpoint schedule on
  must keep at least ``--min-checkpoint-ratio`` (0.9x) of the plain run's
  throughput — the "at most 10% overhead" budget of docs/CHECKPOINTING.md;
* batched kernel (ISSUE 7 / docs/KERNEL.md): the ``backend="batched"``
  loaded point must clear the absolute ratchet ``--min-batched-loaded``
  (5130.5 cycles/s — 5x the PR 5 activity-driven loaded record) *and* run
  at least ``--min-batched-speedup`` (4.0x) faster than the concurrently
  measured activity-driven loaded point, so the floor also holds on
  machines slower or faster than the one that set the ratchet.

Exits non-zero when a floor is violated, so CI can gate on it.

File schema (list of records, oldest first)::

    [
      {
        "timestamp": "2026-08-07T12:00:00+00:00",
        "label": "PR 2",
        "git_rev": "abc1234",
        "cycles_per_second": {
          "idle":       {"activity_driven": 3.1e6, "full": 1.4e3, "batched": ...},
          "loaded":     {"activity_driven": ..., "full": ..., "batched": ...},
          "saturation": {"activity_driven": ..., "full": ..., "batched": ...},
          "checkpoint": {"plain": ..., "checkpointed": ...}
        }
      },
      ...
    ]

(The ``checkpoint`` point first appears in PR 5 records and the
``batched`` backend dimension in PR 7 records; older records simply lack
those keys.)
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.workloads import (  # noqa: E402
    WORKLOADS,
    measure_checkpoint_overhead,
    measure_cycles_per_second,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simulator.json"


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def measure(rounds: int) -> dict:
    points = {}
    for workload in WORKLOADS:
        points[workload] = {
            "activity_driven": round(
                measure_cycles_per_second(workload, True, rounds=rounds), 1
            ),
            "full": round(
                measure_cycles_per_second(workload, False, rounds=rounds), 1
            ),
            "batched": round(
                measure_cycles_per_second(
                    workload, True, rounds=rounds, backend="batched"
                ),
                1,
            ),
        }
        print(
            f"{workload:>10}: fast {points[workload]['activity_driven']:>12,.0f}"
            f"  full {points[workload]['full']:>12,.0f}"
            f"  batched {points[workload]['batched']:>12,.0f} cycles/s",
            file=sys.stderr,
        )
    ckpt = measure_checkpoint_overhead(rounds=rounds)
    points["checkpoint"] = {
        "plain": round(ckpt["plain"], 1),
        "checkpointed": round(ckpt["checkpointed"], 1),
    }
    print(
        f"{'checkpoint':>10}: plain {points['checkpoint']['plain']:>11,.0f}"
        f"  ckpt {points['checkpoint']['checkpointed']:>12,.0f} cycles/s"
        f"  ({points['checkpoint']['checkpointed'] / points['checkpoint']['plain']:.2f}x)",
        file=sys.stderr,
    )
    return points


def check_floors(
    points: dict,
    min_idle_speedup: float,
    max_sat_regression: float,
    min_checkpoint_ratio: float,
    min_batched_loaded: float,
    min_batched_speedup: float,
) -> list:
    failures = []
    idle = points["idle"]
    speedup = idle["activity_driven"] / idle["full"]
    if speedup < min_idle_speedup:
        failures.append(
            f"idle-mesh speedup {speedup:.2f}x is below the "
            f"{min_idle_speedup:.1f}x floor"
        )
    sat = points["saturation"]
    ratio = sat["activity_driven"] / sat["full"]
    if ratio < max_sat_regression:
        failures.append(
            f"saturation throughput ratio {ratio:.2f}x is below the "
            f"{max_sat_regression:.1f}x no-regression floor"
        )
    ckpt = points["checkpoint"]
    ckpt_ratio = ckpt["checkpointed"] / ckpt["plain"]
    if ckpt_ratio < min_checkpoint_ratio:
        failures.append(
            f"checkpointed loaded throughput is {ckpt_ratio:.2f}x of plain, "
            f"below the {min_checkpoint_ratio:.1f}x floor "
            f"(more than {(1 - min_checkpoint_ratio):.0%} overhead)"
        )
    loaded = points["loaded"]
    batched = loaded["batched"]
    if batched < min_batched_loaded:
        failures.append(
            f"batched loaded throughput {batched:,.0f} cycles/s is below "
            f"the {min_batched_loaded:,.1f} absolute ratchet "
            "(5x the PR 5 activity-driven loaded record)"
        )
    batched_speedup = batched / loaded["activity_driven"]
    if batched_speedup < min_batched_speedup:
        failures.append(
            f"batched loaded speedup {batched_speedup:.2f}x over the "
            f"activity-driven loop is below the {min_batched_speedup:.1f}x "
            "floor"
        )
    return failures


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"trajectory file to append to (default {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument("--label", default="", help="free-form record label")
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per point, best-of (default 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the speedup/regression floors; exit 1 on violation",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="measure (and --check) without writing the trajectory file",
    )
    parser.add_argument("--min-idle-speedup", type=float, default=2.0)
    parser.add_argument("--max-sat-regression", type=float, default=0.8)
    parser.add_argument("--min-checkpoint-ratio", type=float, default=0.9)
    parser.add_argument(
        "--min-batched-loaded", type=float, default=5130.5,
        help="absolute cycles/s ratchet for the batched loaded point "
        "(5x the PR 5 activity-driven loaded record of 1026.1)",
    )
    parser.add_argument(
        "--min-batched-speedup", type=float, default=4.0,
        help="batched/activity-driven loaded ratio floor (machine-relative)",
    )
    args = parser.parse_args(argv)

    points = measure(args.rounds)
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "label": args.label,
        "git_rev": git_rev(),
        "cycles_per_second": points,
    }

    if not args.no_append:
        history = []
        if args.output.exists():
            history = json.loads(args.output.read_text())
        history.append(record)
        args.output.write_text(json.dumps(history, indent=2) + "\n")
        print(f"appended record {len(history)} to {args.output}", file=sys.stderr)

    if args.check:
        failures = check_floors(
            points,
            args.min_idle_speedup,
            args.max_sat_regression,
            args.min_checkpoint_ratio,
            args.min_batched_loaded,
            args.min_batched_speedup,
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("all performance floors hold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
