"""Cycle-exact test of the Figure 4 HBH retransmission flow.

A single deterministic multi-bit upset hits the header flit on its link
traversal.  The paper's Figure 4 narrative, checked point by point:

* the corrupted flit is dropped at the receiver and NACKed;
* in-flight successor flits are dropped and replayed *in order* from the
  barrel-shift retransmission buffer (no in-situ re-arrangement);
* the end-to-end "latency penalty of two clock cycles" (Section 3.1);
* the delivered packet is byte-identical to the clean run (headers not
  contaminated).

Timing note (also in EXPERIMENTS.md): our receiver checks ECC
combinationally in the arrival cycle, so the NACK turnaround is one cycle
tighter than the paper's 3-cycle budget and only one in-flight successor
needs dropping; the stated 2-cycle penalty and the 3-deep buffer bound are
unchanged.
"""

from repro.config import NoCConfig, SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Corruption


def run_trace(corrupt_nth_traversal=None):
    net = Network(SimulationConfig(noc=NoCConfig(width=2, height=1, num_vcs=1)))
    if corrupt_nth_traversal is not None:
        counter = {"n": 0}

        def link_upset(cycle, node, direction=None):
            counter["n"] += 1
            if counter["n"] == corrupt_nth_traversal:
                return Corruption.MULTI
            return None

        net.injector.link_upset = link_upset  # type: ignore[method-assign]
    net.interfaces[0].enqueue(Packet(0, src=0, dst=1, num_flits=4, injection_cycle=0))
    net.stats.start_measurement()
    for _ in range(200):
        net.step()
        if net.delivered == 1:
            break
    return net


class TestFigure4Trace:
    def test_clean_baseline(self):
        net = run_trace()
        assert net.delivered == 1
        assert net.stats.counter("retransmission_rounds") == 0

    def test_header_error_recovered_with_two_cycle_penalty(self):
        clean = run_trace()
        faulty = run_trace(corrupt_nth_traversal=1)
        assert faulty.delivered == 1
        assert faulty.stats.counter("retransmission_rounds") == 1
        assert faulty.stats.counter("link_errors_corrected") == 1
        # The corrupted header plus the one in-flight successor are dropped
        # and replayed in order.
        assert faulty.stats.counter("flits_dropped") == 2
        assert faulty.stats.counter("flits_retransmitted") == 2
        # Section 3.1: "a latency penalty of two clock cycles".
        assert faulty.stats.latency.mean - clean.stats.latency.mean == 2.0

    def test_body_flit_error_cheaper_than_header(self):
        # A body-flit replay overlaps the header's downstream pipeline
        # latency, so it costs just the one masked transmission slot —
        # within the paper's two-cycle worst case.
        clean = run_trace()
        faulty = run_trace(corrupt_nth_traversal=3)  # third flit (D3)
        assert faulty.delivered == 1
        assert faulty.stats.counter("retransmission_rounds") == 1
        assert faulty.stats.latency.mean - clean.stats.latency.mean == 1.0

    def test_tail_flit_error(self):
        clean = run_trace()
        faulty = run_trace(corrupt_nth_traversal=4)
        assert faulty.delivered == 1
        # Nothing in flight behind the tail: only the tail is replayed.
        assert faulty.stats.counter("flits_retransmitted") == 1
        assert faulty.stats.latency.mean - clean.stats.latency.mean == 1.0

    def test_delivered_packet_is_clean(self):
        faulty = run_trace(corrupt_nth_traversal=1)
        assert faulty.stats.counter("packets_delivered_corrupt") == 0
        assert faulty.lost == 0

    def test_back_to_back_errors_each_recovered(self):
        net = run_trace(corrupt_nth_traversal=None)
        # Corrupt the first transmission *and* its replay: the replay is
        # protected by the same machinery (the clean copy stays buffered).
        net2 = Network(SimulationConfig(noc=NoCConfig(width=2, height=1, num_vcs=1)))
        counter = {"n": 0}

        def link_upset(cycle, node, direction=None):
            counter["n"] += 1
            return Corruption.MULTI if counter["n"] in (1, 3) else None

        net2.injector.link_upset = link_upset  # type: ignore[method-assign]
        net2.interfaces[0].enqueue(Packet(0, 0, 1, 4, 0))
        net2.stats.start_measurement()
        for _ in range(200):
            net2.step()
            if net2.delivered == 1:
                break
        assert net2.delivered == 1
        assert net2.stats.counter("retransmission_rounds") == 2
        assert net2.stats.counter("packets_delivered_corrupt") == 0
