"""Delivery invariants under randomized fault schedules.

The protection suite's contract, stated as invariants and fuzzed over
seeds and fault mixes with hypothesis:

* **exactly-once**: every delivered packet is delivered exactly once;
* **completeness**: a delivered packet contains all its flits, in order;
* **integrity** (HBH): no delivered flit carries residual corruption;
* **conservation**: injected = delivered + lost + still-in-flight/queued.
"""

from typing import Dict, List

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Corruption, FaultSite


class RecordingNetwork(Network):
    """A network whose NIs record every completed delivery."""

    def __init__(self, config):
        super().__init__(config)
        self.deliveries: List[List] = []
        from repro.core.schemes import DeliveryAction, destination_policy

        for ni in self.interfaces:
            original = ni._handle_packet

            def spying_handler(cycle, flits, _orig=original, _node=ni.node):
                decision = destination_policy(
                    self.config.noc.link_protection, _node, flits
                )
                if decision.action in (
                    DeliveryAction.DELIVER,
                    DeliveryAction.DELIVER_CORRUPT,
                ):
                    self.deliveries.append(list(flits))
                return _orig(cycle, flits)

            ni._handle_packet = spying_handler  # type: ignore[method-assign]


def run_with_faults(seed: int, link_rate: float, rt_rate: float, sa_rate: float):
    config = SimulationConfig(
        noc=NoCConfig(width=4, height=4),
        faults=FaultConfig(
            rates={
                FaultSite.LINK: link_rate,
                FaultSite.ROUTING: rt_rate,
                FaultSite.SW_ALLOC: sa_rate,
            },
            link_multi_bit_fraction=0.6,
            seed=seed,
        ),
        workload=WorkloadConfig(injection_rate=0.2, num_messages=10**9),
    )
    net = RecordingNetwork(config)
    import random

    rng = random.Random(seed)
    injected: Dict[int, int] = {}
    pid = 0
    for cycle in range(260):
        if cycle < 160 and cycle % 2 == 0:
            src = rng.randrange(16)
            dst = rng.randrange(15)
            dst = dst if dst < src else dst + 1
            net.interfaces[src].enqueue(
                Packet(pid, src=src, dst=dst, num_flits=4, injection_cycle=cycle)
            )
            injected[pid] = dst
            pid += 1
        net.step()
    # Drain window.
    for _ in range(600):
        if net.delivered + net.lost >= pid:
            break
        net.step()
    return net, injected


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    link_rate=st.sampled_from([0.0, 0.01, 0.05]),
    rt_rate=st.sampled_from([0.0, 0.01]),
    sa_rate=st.sampled_from([0.0, 0.005]),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_delivery_invariants_under_fault_storms(seed, link_rate, rt_rate, sa_rate):
    net, injected = run_with_faults(seed, link_rate, rt_rate, sa_rate)

    delivered_ids = [flits[0].packet_id for flits in net.deliveries]
    # Exactly-once.
    assert len(delivered_ids) == len(set(delivered_ids)), "duplicate delivery"
    # Completeness + in-order + integrity.
    for flits in net.deliveries:
        assert [f.seq for f in flits] == [0, 1, 2, 3]
        assert len({f.packet_id for f in flits}) == 1
        assert all(
            f.corruption is Corruption.NONE for f in flits
        ), "HBH delivered residual corruption"
    # Every delivery went to the packet's destination (RT faults corrected).
    for flits in net.deliveries:
        head = flits[0]
        assert head.true_dst == injected[head.packet_id]
    # Conservation.
    assert net.delivered == len(net.deliveries)
    assert net.delivered + net.lost <= len(injected)


def test_zero_faults_delivers_everything():
    net, injected = run_with_faults(seed=1, link_rate=0.0, rt_rate=0.0, sa_rate=0.0)
    assert net.delivered == len(injected)
    assert net.lost == 0
