"""End-to-end fault-injection tests: every fault site, detection on, and
the AC-off / TMR-off ablations."""

import pytest

from repro.config import FaultConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import run_simulation
from repro.types import FaultSite, LinkProtection
from tests.conftest import quick_workload, small_noc


def run(noc=None, faults=None, **wl):
    config = SimulationConfig(
        noc=noc or small_noc(),
        faults=faults or FaultConfig.fault_free(),
        workload=quick_workload(**wl),
    )
    return run_simulation(config)


class TestLinkFaultsWithHBH:
    def test_all_packets_delivered_clean_under_storm(self):
        """5% uncorrectable flit error rate: HBH must deliver everything,
        uncorrupted, via retransmissions."""
        result = run(
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=1.0),
            num_messages=400,
        )
        assert result.packets_lost == 0
        assert result.counter("packets_delivered_corrupt") == 0
        assert result.counter("retransmission_rounds") > 0
        assert result.counter("flits_retransmitted") >= result.counter(
            "retransmission_rounds"
        )

    def test_single_bit_errors_corrected_in_place(self):
        result = run(
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=0.0),
            num_messages=300,
        )
        assert result.counter("fec_corrections") > 0
        assert result.counter("retransmission_rounds") == 0
        assert result.packets_lost == 0

    def test_latency_overhead_small(self):
        base = run(num_messages=400)
        storm = run(
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=1.0),
            num_messages=400,
        )
        # The paper's headline: latency "almost constant" under errors.
        assert storm.avg_latency < base.avg_latency * 1.3

    def test_unprotected_network_corrupts_packets(self):
        result = run(
            noc=small_noc(link_protection=LinkProtection.NONE),
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=1.0),
            num_messages=300,
        )
        assert result.counter("packets_delivered_corrupt") > 0


class TestRoutingFaults:
    def test_rt_faults_detected_and_all_delivered(self):
        result = run(
            faults=FaultConfig.single_site(FaultSite.ROUTING, 0.01),
            num_messages=400,
        )
        assert result.packets_lost == 0
        assert result.counter("rt_errors_corrected") > 0

    def test_route_nack_rollbacks_occur(self):
        result = run(
            faults=FaultConfig.single_site(FaultSite.ROUTING, 0.02),
            num_messages=400,
        )
        # Remote detections (wrong-but-functional direction) roll the
        # header back to the previous router.
        assert result.counter("route_nacks_sent") > 0
        assert result.counter("route_nack_rollbacks") > 0

    def test_rt_fault_latency_penalty_is_bounded(self):
        base = run(num_messages=400)
        faulty = run(
            faults=FaultConfig.single_site(FaultSite.ROUTING, 0.01),
            num_messages=400,
        )
        assert faulty.avg_latency < base.avg_latency * 1.4


class TestVAFaults:
    def test_ac_corrects_va_errors_no_loss(self):
        result = run(
            faults=FaultConfig.single_site(FaultSite.VC_ALLOC, 0.01),
            num_messages=400,
        )
        assert result.counter("va_errors_corrected") > 0
        assert result.packets_lost == 0

    def test_without_ac_va_faults_strand_packets(self):
        baseline = run(num_messages=400)
        result = run(
            noc=small_noc(ac_unit_enabled=False),
            faults=FaultConfig.single_site(FaultSite.VC_ALLOC, 0.05),
            num_messages=400,
            max_cycles=12_000,
        )
        # Invalid/duplicate allocations strand wormholes forever: either
        # the network clogs before the quota completes, or the gap between
        # injected and finished packets (stuck in dead VCs) blows up
        # relative to the fault-free baseline's in-flight tail.
        baseline_gap = baseline.packets_injected - baseline.packets_delivered
        gap = result.packets_injected - result.packets_delivered - result.packets_lost
        assert result.hit_cycle_limit or gap > 3 * max(1, baseline_gap)


class TestSAFaults:
    def test_ac_corrects_sa_errors_no_loss(self):
        result = run(
            faults=FaultConfig.single_site(FaultSite.SW_ALLOC, 0.005),
            num_messages=400,
        )
        assert result.counter("sa_errors_corrected") > 0
        assert result.packets_lost == 0
        assert result.counter("packets_delivered_corrupt") == 0

    def test_without_ac_sa_faults_lose_flits(self):
        result = run(
            noc=small_noc(ac_unit_enabled=False),
            faults=FaultConfig.single_site(FaultSite.SW_ALLOC, 0.01),
            num_messages=200,
            max_cycles=6000,
        )
        assert (
            result.counter("sa_misdirected_flits") > 0
            or result.counter("packets_delivered_corrupt") > 0
        )


class TestCrossbarFaults:
    def test_crossbar_upsets_corrected_by_ecc(self):
        # Section 4.4: single-bit upsets, handled by the per-hop check unit.
        result = run(
            faults=FaultConfig.single_site(FaultSite.CROSSBAR, 0.02),
            num_messages=400,
        )
        assert result.packets_lost == 0
        assert result.counter("packets_delivered_corrupt") == 0
        assert result.counter("fec_corrections") > 0


class TestRetxBufferFaults:
    def _cfg(self, duplicate):
        return small_noc(duplicate_retx_buffers=duplicate)

    def test_upsets_without_duplicate_buffers_eventually_give_up(self):
        result = run(
            noc=self._cfg(False),
            faults=FaultConfig(
                rates={FaultSite.LINK: 0.05, FaultSite.RETX_BUFFER: 0.3},
                link_multi_bit_fraction=1.0,
            ),
            num_messages=200,
        )
        # Corrupted stored copies replay corrupt -> the receiver's NACK
        # budget runs out -> corrupted delivery (Section 4.5's loop, broken
        # by the give-up escape).
        assert (
            result.counter("retransmission_giveups") > 0
            or result.counter("packets_delivered_corrupt") > 0
        )

    def test_duplicate_buffers_restore_clean_copies(self):
        result = run(
            noc=self._cfg(True),
            faults=FaultConfig(
                rates={FaultSite.LINK: 0.05, FaultSite.RETX_BUFFER: 0.3},
                link_multi_bit_fraction=1.0,
            ),
            num_messages=200,
        )
        assert result.counter("retx_buffer_restores") > 0
        assert result.counter("packets_delivered_corrupt") == 0
        assert result.packets_lost == 0


class TestHandshakeFaults:
    def test_tmr_masks_all_glitches(self):
        result = run(
            faults=FaultConfig.single_site(FaultSite.HANDSHAKE, 0.01),
            num_messages=300,
        )
        assert result.counter("handshake_glitches_masked") > 0
        assert result.counter("handshake_signals_lost") == 0
        assert result.packets_lost == 0

    def test_without_tmr_signals_are_lost(self):
        result = run(
            noc=small_noc(handshake_tmr=False),
            faults=FaultConfig.single_site(FaultSite.HANDSHAKE, 0.01),
            num_messages=200,
            max_cycles=8000,
        )
        assert result.counter("handshake_signals_lost") > 0


class TestCombinedStorm:
    def test_full_protection_survives_everything_at_once(self):
        """The paper's 'comprehensive plan of attack': all sites faulted
        simultaneously, full protection on — nothing lost, nothing corrupt."""
        faults = FaultConfig(
            rates={
                FaultSite.LINK: 0.01,
                FaultSite.ROUTING: 0.005,
                FaultSite.VC_ALLOC: 0.005,
                FaultSite.SW_ALLOC: 0.005,
                FaultSite.CROSSBAR: 0.005,
                FaultSite.HANDSHAKE: 0.002,
            },
            link_multi_bit_fraction=0.5,
        )
        result = run(
            noc=small_noc(duplicate_retx_buffers=True),
            faults=faults,
            num_messages=400,
        )
        assert result.packets_lost == 0
        assert result.counter("packets_delivered_corrupt") == 0
        assert result.packets_delivered >= 400
