"""Torus extension tests: wrap links, wrap-aware routing, recovery pairing."""

import pytest

from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.routing import TorusXYRouting
from repro.noc.simulator import run_simulation
from repro.noc.topology import TorusTopology
from repro.noc.flit import Flit
from repro.types import Direction, FlitType


def torus_config(**overrides):
    defaults = dict(
        width=4,
        height=4,
        topology="torus",
        deadlock_recovery_enabled=True,
        deadlock_threshold=24,
    )
    defaults.update(overrides)
    return NoCConfig(**defaults)


class TestConfigValidation:
    def test_rejects_small_torus(self):
        with pytest.raises(ValueError):
            NoCConfig(width=2, height=4, topology="torus")

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            NoCConfig(topology="hypercube")


class TestWiring:
    def test_every_port_wired(self):
        net = Network(SimulationConfig(noc=torus_config()))
        for router in net.routers:
            for port in range(4):
                assert router.out_links[port] is not None
                assert router.in_links[port] is not None

    def test_link_count(self):
        net = Network(SimulationConfig(noc=torus_config()))
        mesh_links = [l for l in net.links if not l.is_local]
        # 4x4 torus: 16 nodes x 4 outgoing inter-router links.
        assert len(mesh_links) == 64


class TestTorusXYRouting:
    def test_prefers_wrap_when_shorter(self):
        topo = TorusTopology(8, 8)
        routing = TorusXYRouting()
        flit = Flit(0, 0, FlitType.HEAD, src=0, dst=7)  # x: 0 -> 7
        assert routing.candidates(topo, 0, flit) == [Direction.WEST]

    def test_x_before_y(self):
        topo = TorusTopology(8, 8)
        routing = TorusXYRouting()
        dst = topo.node_at_coords = 7 + 8 * 7  # (7, 7)
        flit = Flit(0, 0, FlitType.HEAD, src=0, dst=dst)
        (d,) = routing.candidates(topo, 0, flit)
        assert d in (Direction.EAST, Direction.WEST)

    def test_ejects_at_destination(self):
        topo = TorusTopology(4, 4)
        routing = TorusXYRouting()
        flit = Flit(0, 0, FlitType.HEAD, src=0, dst=5)
        assert routing.candidates(topo, 5, flit) == [Direction.LOCAL]


class TestEndToEnd:
    def test_uniform_traffic_delivers(self):
        result = run_simulation(
            SimulationConfig(
                noc=torus_config(),
                workload=WorkloadConfig(
                    injection_rate=0.2,
                    num_messages=300,
                    warmup_messages=50,
                    max_cycles=40_000,
                ),
            )
        )
        assert result.packets_delivered >= 300
        assert result.packets_lost == 0

    def test_torus_shortens_paths_vs_mesh(self):
        workload = WorkloadConfig(
            injection_rate=0.15,
            num_messages=300,
            warmup_messages=50,
            max_cycles=40_000,
        )
        torus = run_simulation(
            SimulationConfig(noc=torus_config(), workload=workload)
        )
        mesh = run_simulation(
            SimulationConfig(noc=NoCConfig(width=4, height=4), workload=workload)
        )
        assert torus.avg_hops < mesh.avg_hops

    def test_hops_match_torus_minimal_distance(self):
        from tests.conftest import inject_packet, run_until_delivered

        net = Network(SimulationConfig(noc=torus_config()))
        net.stats.start_measurement()
        inject_packet(net, src=0, dst=15)  # (3,3): distance 2 on a 4x4 torus
        run_until_delivered(net, 1)
        assert net.stats.hops.mean == net.topology.distance(0, 15) == 2
