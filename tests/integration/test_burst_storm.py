"""Burst-storm stress: intermittent bursts + wear-out on top of transients.

The CI resilience job runs this module on every push.  It drives a short
saturation-level run with the whole soft→hard lifecycle active at once —
several intermittent sites bursting hard, a wear-out policy escalating the
most-stressed of them into permanent deaths mid-run, background transient
upsets — with ``invariant_checks=True`` so the per-cycle sanitizer audits
every cycle on both loops.  The storm must terminate cleanly, replay
bit-identically on the polling and activity-driven loops, and survive a
checkpoint taken mid-burst with a bit-for-bit identical resume.
"""

import dataclasses

import pytest

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    WearOutConfig,
)
from repro.noc.simulator import Simulator, run_simulation
from repro.serialization import result_to_dict
from repro.types import Direction, FaultSite, RoutingAlgorithm

BURST_SITES = IntermittentFaultSchedule.of(
    IntermittentFault(1, Direction.EAST, 0.7, 60.0, 30.0),
    IntermittentFault(5, Direction.NORTH, 0.5, 40.0, 40.0),
    IntermittentFault(10, Direction.WEST, 0.6, 50.0, 20.0, start=100),
    IntermittentFault(14, Direction.SOUTH, 0.4, 30.0, 60.0),
)


def storm_config(**overrides) -> SimulationConfig:
    faults = FaultConfig(
        rates={
            FaultSite.LINK: 1e-3,
            FaultSite.ROUTING: 1e-4,
            FaultSite.VC_ALLOC: 1e-4,
        },
        seed=8,
        intermittent=BURST_SITES,
        wear_out=WearOutConfig(threshold=60.0, strike_weight=1.0),
    )
    config = SimulationConfig(
        noc=NoCConfig(width=4, height=4, routing=RoutingAlgorithm.FT_TABLE),
        faults=faults,
        workload=WorkloadConfig(
            pattern="uniform",
            injection_rate=0.40,
            num_messages=1200,
            warmup_messages=200,
            max_cycles=60_000,
            seed=8,
        ),
        invariant_checks=True,
    )
    return config.replace(**overrides) if overrides else config


def _observables(result):
    out = result_to_dict(result)
    out.pop("config")
    return out


@pytest.mark.parametrize("activity_driven", [True, False])
def test_burst_storm_survives_with_invariants(activity_driven):
    """Bursts + escalations + transients at saturation: clean termination."""
    result = run_simulation(storm_config(activity_driven=activity_driven))
    assert not result.hit_cycle_limit
    assert result.packets_delivered + result.packets_lost >= 1200
    assert result.packets_delivered > result.packets_lost
    assert result.counter("intermittent_bursts_started") >= 4
    assert result.counter("intermittent_strikes") > 0
    # The storm is tuned so wear-out actually escalates: soft faults turn
    # into hard deaths with the full permanent-fault teardown behind them.
    escalations = result.counter("wear_out_escalations")
    assert escalations >= 1
    assert result.counter("permanent_faults_applied") == escalations
    assert result.counter("reroute_recomputations") >= escalations


def test_burst_storm_loops_bit_identical():
    """The storm replays identically on the fast and polling loops."""
    fast = run_simulation(storm_config(activity_driven=True))
    full = run_simulation(storm_config(activity_driven=False))
    assert _observables(fast) == _observables(full)


@pytest.mark.parametrize("activity_driven", [True, False])
def test_checkpoint_mid_burst_resumes_bit_for_bit(activity_driven, tmp_path):
    """Interrupting inside an open burst window loses nothing.

    The snapshot must carry every per-site stream, phase, next-toggle
    cycle and stress tally; the resumed run finishes identical to the
    uninterrupted one.
    """
    config = storm_config(activity_driven=activity_driven)
    golden = Simulator(config).run()
    assert not golden.hit_cycle_limit

    sim = Simulator(config)
    sim.run_to_cycle(300)
    # Mid-burst by construction: the sites are on ~60% of the time, so at
    # cycle 300 at least one window is open (seeded, hence stable).
    assert any(site.on for site in sim.network.lifecycle.sites)
    path = tmp_path / "burst.ckpt"
    save_checkpoint(sim, path)
    del sim

    resumed = load_checkpoint(path)
    assert resumed.resumed_from_cycle == 300
    assert _observables(resumed.run()) == _observables(golden)
