"""End-to-end behaviour of the E2E and FEC baselines (Section 3 / Figure 5)."""

import pytest

from repro.config import FaultConfig, SimulationConfig
from repro.noc.simulator import run_simulation
from repro.types import LinkProtection
from tests.conftest import quick_workload, small_noc


def run(scheme, rate, multi=0.2, messages=300, seed=4, **wl):
    config = SimulationConfig(
        noc=small_noc(link_protection=scheme),
        faults=FaultConfig.link_only(rate, multi_bit_fraction=multi, seed=seed),
        workload=quick_workload(num_messages=messages, seed=seed, **wl),
    )
    return run_simulation(config)


class TestE2EScheme:
    def test_clean_network_delivers(self):
        result = run(LinkProtection.E2E, 0.0)
        assert result.packets_lost == 0
        assert result.counter("e2e_retransmissions") == 0

    def test_errors_trigger_source_retransmission(self):
        result = run(LinkProtection.E2E, 0.02)
        assert result.counter("e2e_retransmissions") > 0
        # E2E never delivers corrupt data: it re-requests until clean.
        assert result.counter("packets_delivered_corrupt") == 0

    def test_latency_grows_much_faster_than_hbh(self):
        e2e = run(LinkProtection.E2E, 0.05, messages=250)
        hbh_config = SimulationConfig(
            noc=small_noc(link_protection=LinkProtection.HBH),
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=0.2, seed=4),
            workload=quick_workload(num_messages=250, seed=4),
        )
        hbh = run_simulation(hbh_config)
        # The Figure 5 separation: at 5% flit error rate the E2E penalty
        # must be a multiple of the (nearly flat) HBH latency.
        assert e2e.avg_latency > 1.5 * hbh.avg_latency

    def test_source_copies_released_after_delivery(self):
        result = run(LinkProtection.E2E, 0.01, messages=200)
        assert result.packets_lost == 0
        # Not a result field: inspect via a fresh short run's NIs.
        config = SimulationConfig(
            noc=small_noc(link_protection=LinkProtection.E2E),
            faults=FaultConfig.link_only(0.01, multi_bit_fraction=0.2, seed=4),
            workload=quick_workload(num_messages=150),
        )
        from repro.noc.simulator import Simulator

        sim = Simulator(config)
        sim.run()
        sim.network.run_cycles(200)  # drain ACK events
        leaked = sum(len(ni.e2e_copies) for ni in sim.network.interfaces)
        in_flight = sim.network.in_flight_flits
        # Copies may legitimately remain for packets still in flight when
        # the run stopped; a fully drained network must hold none for
        # delivered packets.
        assert leaked <= in_flight + sum(
            ni.queued_packets for ni in sim.network.interfaces
        ) + 5

    def test_e2e_source_buffering_is_nonzero(self):
        config = SimulationConfig(
            noc=small_noc(link_protection=LinkProtection.E2E),
            faults=FaultConfig.link_only(0.02, multi_bit_fraction=0.2, seed=4),
            workload=quick_workload(num_messages=200),
        )
        from repro.noc.simulator import Simulator

        sim = Simulator(config)
        sim.run()
        # The paper: "E2E schemes also require larger retransmission
        # buffers to account for worst case round-trip delay".
        high_water = max(ni.e2e_copy_high_water for ni in sim.network.interfaces)
        assert high_water >= 1


class TestFECScheme:
    def test_single_bit_errors_absorbed_at_low_rate(self):
        # At a low rate the chance of two single-bit hits composing into a
        # double error on one flit is negligible: FEC absorbs everything.
        result = run(LinkProtection.FEC, 0.002, multi=0.0)
        assert result.packets_lost == 0
        assert result.counter("packets_delivered_corrupt") == 0

    def test_accumulated_singles_defeat_destination_only_fec(self):
        # FEC checks only at the destination, so independent single-bit
        # upsets on different hops accumulate into real double errors —
        # the structural weakness of FEC-only protection.
        result = run(LinkProtection.FEC, 0.05, multi=0.0)
        assert result.counter("packets_delivered_corrupt") > 0

    def test_multi_bit_payload_errors_delivered_corrupt(self):
        result = run(LinkProtection.FEC, 0.05, multi=1.0)
        assert result.counter("packets_delivered_corrupt") > 0

    def test_misrouted_packets_reforwarded(self):
        # Header dst-field hits send packets to a wrong node; the paper's
        # FEC story: corrected there, then forwarded onward (extra traffic).
        result = run(LinkProtection.FEC, 0.08, multi=0.3, messages=500)
        assert result.counter("packets_misrouted") > 0
        assert result.counter("packets_reforwarded") == result.counter(
            "packets_misrouted"
        )

    def test_latency_stays_flat(self):
        lo = run(LinkProtection.FEC, 1e-5)
        hi = run(LinkProtection.FEC, 0.05)
        assert hi.avg_latency < 1.5 * lo.avg_latency


class TestSchemeComparisonShape:
    """The Figure 5 ordering, asserted as a property of the three schemes."""

    def test_figure5_ordering_at_high_error_rate(self):
        rate = 0.08
        hbh = run(LinkProtection.HBH, rate)
        e2e = run(LinkProtection.E2E, rate)
        fec = run(LinkProtection.FEC, rate)
        assert e2e.avg_latency > hbh.avg_latency
        assert e2e.avg_latency > fec.avg_latency
        # HBH is the only scheme that is simultaneously low-latency AND
        # loss/corruption free.
        assert hbh.packets_lost == 0
        assert hbh.counter("packets_delivered_corrupt") == 0
        assert (
            fec.packets_lost + fec.counter("packets_delivered_corrupt") > 0
        )
