"""Fault-storm stress: permanent + transient faults under saturation.

The CI job of the same name runs this module on every push.  It drives a
short saturation-level run with every fault layer enabled at once —
permanent link/router/VC deaths landing mid-run on top of aggressive
transient upset rates — with ``invariant_checks=True``, so the per-cycle
sanitizer (flit conservation, allocation bijectivity, VC state legality)
audits every cycle of the storm.  The run must terminate (no wedged
wormholes, no hung drain) and every injected packet must reach a final
outcome.
"""

import dataclasses

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.simulator import run_simulation
from repro.types import Direction, FaultSite, RoutingAlgorithm

STORM_SCHEDULE = PermanentFaultSchedule.of(
    PermanentFault("link", 5, Direction.EAST),  # dead on arrival
    PermanentFault("link", 9, Direction.NORTH, cycle=150),
    PermanentFault("vc", 6, Direction.SOUTH, vc=1, cycle=250),
    PermanentFault("router", 12, cycle=400),
)


def storm_config(**overrides) -> SimulationConfig:
    faults = FaultConfig(
        rates={
            FaultSite.LINK: 1e-3,
            FaultSite.ROUTING: 1e-4,
            FaultSite.VC_ALLOC: 1e-4,
            FaultSite.SW_ALLOC: 1e-4,
        },
        seed=5,
    )
    config = SimulationConfig(
        noc=NoCConfig(width=4, height=4, routing=RoutingAlgorithm.XY),
        faults=dataclasses.replace(faults, permanent=STORM_SCHEDULE),
        workload=WorkloadConfig(
            pattern="uniform",
            injection_rate=0.45,  # past the ~0.4 saturation knee
            num_messages=1400,  # long enough to reach the cycle-400 death
            warmup_messages=200,
            max_cycles=60_000,
            seed=5,
        ),
        invariant_checks=True,
    )
    return config.replace(**overrides) if overrides else config


@pytest.mark.parametrize("activity_driven", [True, False])
def test_fault_storm_survives_with_invariants(activity_driven):
    """Saturation + transients + permanent deaths: clean termination."""
    result = run_simulation(storm_config(activity_driven=activity_driven))
    assert not result.hit_cycle_limit
    assert result.packets_delivered + result.packets_lost >= 1400
    assert result.packets_delivered > result.packets_lost
    assert result.counter("permanent_faults_applied") == len(STORM_SCHEDULE)
    assert result.counter("reroute_recomputations") >= 1


def test_fault_storm_loops_bit_identical():
    """The storm replays identically on the fast and polling loops."""
    fast = run_simulation(storm_config(activity_driven=True))
    full = run_simulation(storm_config(activity_driven=False))
    assert fast.cycles == full.cycles
    assert fast.packets_delivered == full.packets_delivered
    assert fast.packets_lost == full.packets_lost
    assert fast.avg_latency == full.avg_latency
    assert fast.counters == full.counters
