"""Shared test fixtures and scenario builders."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Direction, RoutingAlgorithm


def small_noc(**overrides) -> NoCConfig:
    """A 4x4 mesh with the paper's router parameters (fast for tests)."""
    defaults = dict(width=4, height=4)
    defaults.update(overrides)
    return NoCConfig(**defaults)


def build_network(
    noc: Optional[NoCConfig] = None,
    faults: Optional[FaultConfig] = None,
    **sim_overrides,
) -> Network:
    config = SimulationConfig(
        noc=noc or small_noc(),
        faults=faults or FaultConfig.fault_free(),
        **sim_overrides,
    )
    return Network(config)


def inject_packet(
    net: Network,
    src: int,
    dst: int,
    packet_id: int = 0,
    num_flits: Optional[int] = None,
    source_route: Optional[List[Direction]] = None,
    payload: int = 0,
) -> Packet:
    packet = Packet(
        packet_id=packet_id,
        src=src,
        dst=dst,
        num_flits=num_flits or net.config.noc.flits_per_packet,
        injection_cycle=net.cycle,
        source_route=source_route,
        payload=payload,
    )
    net.interfaces[src].enqueue(packet)
    return packet


def run_until_delivered(
    net: Network, expected: int, max_cycles: int = 5000
) -> int:
    """Step the network until ``expected`` packets completed; returns the
    cycle count.  Fails the test on timeout."""
    for _ in range(max_cycles):
        if net.completed >= expected:
            return net.cycle
        net.step()
    raise AssertionError(
        f"only {net.completed}/{expected} packets completed in {max_cycles} cycles "
        f"(delivered={net.delivered}, lost={net.lost}, "
        f"in_flight={net.in_flight_flits})"
    )


def quick_workload(**overrides) -> WorkloadConfig:
    defaults = dict(
        injection_rate=0.2,
        num_messages=300,
        warmup_messages=50,
        max_cycles=30_000,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


@pytest.fixture
def net4() -> Network:
    return build_network()


@pytest.fixture
def net2_source() -> Network:
    """2x2 single-VC source-routed network for scripted scenarios."""
    return build_network(
        small_noc(
            width=2,
            height=2,
            num_vcs=1,
            routing=RoutingAlgorithm.SOURCE,
        )
    )
