"""Backwards compatibility of the ``shape=`` topology redesign.

Guards the redesign's acceptance criterion: existing 2D configs — including
ones still built through the deprecated ``width=``/``height=`` kwargs —
must produce *bit-for-bit* identical results, counters and telemetry
NDJSON bytes, and must serialize to the exact legacy dict form.  3D shapes
must round-trip through the generalized form and fall back from the
batched kernel with a named reason (docs/TOPOLOGY.md).
"""

import warnings

import pytest

from repro import api
from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.telemetry.config import TelemetryConfig
from repro.noc.kernel import kernel_supports
from repro.noc.simulator import run_simulation
from repro.serialization import (
    config_from_dict,
    config_to_dict,
    result_to_dict,
)
from repro.telemetry import write_ndjson


def _legacy_noc(**kw):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return NoCConfig(width=8, height=8, **kw)


def _workload():
    return WorkloadConfig(
        injection_rate=0.08, num_messages=150, warmup_messages=20
    )


class TestDeprecationWarnings:
    def test_nocconfig_width_height_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="shape"):
            noc = NoCConfig(width=6, height=4)
        assert noc.shape == (6, 4)

    def test_simulationconfig_width_height_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="shape"):
            config = SimulationConfig(width=6, height=4)
        assert config.noc.shape == (6, 4)

    def test_shape_kwarg_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            noc = NoCConfig(shape=(6, 4))
            config = SimulationConfig(shape=(4, 4, 4), topology="mesh3d")
        assert noc.shape == (6, 4)
        assert config.noc.topology == "mesh3d"

    def test_width_height_attributes_stay_readable(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            noc = NoCConfig(shape=(6, 4))
            assert (noc.width, noc.height) == (6, 4)

    def test_run_simulation_unknown_kwargs_warn(self):
        config = SimulationConfig(
            noc=NoCConfig(shape=(4, 4)),
            workload=WorkloadConfig(
                injection_rate=0.05, num_messages=20, warmup_messages=5
            ),
        )
        with pytest.warns(DeprecationWarning, match="no longer forwards"):
            run_simulation(config, width=4)


class TestLegacyShapeEquivalence:
    def test_telemetry_ndjson_is_byte_identical(self, tmp_path):
        """The acceptance criterion: a legacy width/height run and a
        shape run of the same workload must agree on every byte of the
        telemetry NDJSON export and every serialized observable."""
        exports, results = {}, {}
        for form, noc in (
            ("legacy", _legacy_noc()),
            ("shape", NoCConfig(shape=(8, 8))),
        ):
            config = SimulationConfig(
                noc=noc,
                workload=_workload(),
                telemetry=TelemetryConfig(enabled=True, metrics_interval=25),
            )
            result = run_simulation(config)
            path = tmp_path / f"{form}.ndjson"
            write_ndjson(result.telemetry, str(path), config=config_to_dict(config))
            exports[form] = path.read_bytes()
            results[form] = result_to_dict(result)
        assert exports["legacy"] == exports["shape"]
        assert results["legacy"] == results["shape"]

    def test_counters_match_without_telemetry(self):
        outs = []
        for noc in (_legacy_noc(), NoCConfig(shape=(8, 8))):
            config = SimulationConfig(noc=noc, workload=_workload())
            outs.append(result_to_dict(run_simulation(config)))
        assert outs[0] == outs[1]


class TestSerializationRoundTrip:
    def test_2d_emits_legacy_keys(self):
        data = config_to_dict(SimulationConfig(noc=NoCConfig(shape=(8, 8))))
        assert data["noc"]["width"] == 8 and data["noc"]["height"] == 8
        assert "shape" not in data["noc"]
        assert "link_latency" not in data["noc"]

    def test_3d_emits_shape_and_latency(self):
        config = SimulationConfig(
            noc=NoCConfig(
                shape=(3, 3, 3),
                topology="mesh3d",
                link_latency=(1, 1, 2),
                retx_buffer_depth=5,
            )
        )
        data = config_to_dict(config)
        assert data["noc"]["shape"] == [3, 3, 3]
        assert data["noc"]["link_latency"] == [1, 1, 2]
        assert "width" not in data["noc"] and "height" not in data["noc"]

    def test_both_forms_load_without_deprecation_warnings(self):
        legacy = config_to_dict(SimulationConfig(noc=NoCConfig(shape=(5, 5))))
        cubic = config_to_dict(
            SimulationConfig(
                noc=NoCConfig(
                    shape=(3, 3, 3),
                    topology="mesh3d",
                    link_latency=(1, 1, 2),
                    retx_buffer_depth=5,
                )
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert config_from_dict(legacy).noc.shape == (5, 5)
            loaded = config_from_dict(cubic)
        assert loaded.noc.shape == (3, 3, 3)
        assert loaded.noc.link_latency == (1, 1, 2)

    def test_shape_wins_when_both_forms_appear(self):
        data = config_to_dict(SimulationConfig(noc=NoCConfig(shape=(5, 5))))
        data["noc"]["shape"] = [6, 6]  # width/height 5x5 still present
        assert config_from_dict(data).noc.shape == (6, 6)

    def test_2d_roundtrip_is_stable(self):
        config = SimulationConfig(noc=NoCConfig(shape=(8, 8)))
        data = config_to_dict(config)
        assert config_to_dict(config_from_dict(data)) == data


class TestApiOverrides:
    def test_load_config_accepts_shape_and_latency_strings(self):
        config = api.load_config(
            shape="4x4x4", link_latency="1,1,2", retx_buffer_depth=5
        )
        assert config.noc.shape == (4, 4, 4)
        assert config.noc.topology == "mesh3d"
        assert config.noc.link_latency == (1, 1, 2)

    def test_load_config_legacy_width_height_still_work(self):
        config = api.load_config(width=6, height=4)
        assert config.noc.shape == (6, 4)


class TestBatchedKernel3DFallback:
    def test_3d_falls_back_with_a_named_reason(self):
        config = SimulationConfig(
            noc=NoCConfig(
                shape=(3, 3, 3),
                topology="mesh3d",
                link_latency=(1, 1, 2),
                retx_buffer_depth=5,
            )
        )
        reason = kernel_supports(config)
        assert reason == "the batched kernel models 2D meshes only"

    def test_multicycle_latency_falls_back_with_a_named_reason(self):
        config = SimulationConfig(
            noc=NoCConfig(shape=(4, 4), link_latency=2, retx_buffer_depth=5)
        )
        reason = kernel_supports(config)
        assert reason == "multi-cycle link latencies are outside the batched domain"

    def test_2d_unit_latency_is_still_batchable(self):
        config = SimulationConfig(noc=NoCConfig(shape=(4, 4)))
        assert kernel_supports(config) is None
