"""Unit tests for the shared value types."""

import pytest

from repro.types import (
    Coordinate,
    Corruption,
    Direction,
    FlitType,
    LinkProtection,
    RoutingAlgorithm,
    VCState,
)


class TestDirection:
    def test_port_indices_are_stable(self):
        # The whole simulator indexes arrays by these values.
        assert int(Direction.NORTH) == 0
        assert int(Direction.EAST) == 1
        assert int(Direction.SOUTH) == 2
        assert int(Direction.WEST) == 3
        assert int(Direction.LOCAL) == 4

    @pytest.mark.parametrize(
        "direction,opposite",
        [
            (Direction.NORTH, Direction.SOUTH),
            (Direction.SOUTH, Direction.NORTH),
            (Direction.EAST, Direction.WEST),
            (Direction.WEST, Direction.EAST),
            (Direction.LOCAL, Direction.LOCAL),
        ],
    )
    def test_opposites(self, direction, opposite):
        assert direction.opposite is opposite

    def test_opposite_is_involution(self):
        for d in Direction:
            assert d.opposite.opposite is d

    @pytest.mark.parametrize(
        "direction,delta",
        [
            (Direction.NORTH, (0, 1)),
            (Direction.SOUTH, (0, -1)),
            (Direction.EAST, (1, 0)),
            (Direction.WEST, (-1, 0)),
            (Direction.LOCAL, (0, 0)),
        ],
    )
    def test_deltas(self, direction, delta):
        assert tuple(direction.delta) == delta

    def test_delta_and_opposite_cancel(self):
        for d in (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST):
            moved = Coordinate(5, 5) + d.delta
            back = moved + d.opposite.delta
            assert back == Coordinate(5, 5)


class TestCoordinate:
    def test_addition(self):
        assert Coordinate(1, 2) + (3, 4) == Coordinate(4, 6)

    def test_manhattan_distance(self):
        assert Coordinate(0, 0).manhattan_distance(Coordinate(3, 4)) == 7
        assert Coordinate(2, 2).manhattan_distance(Coordinate(2, 2)) == 0

    def test_manhattan_distance_symmetric(self):
        a, b = Coordinate(1, 7), Coordinate(4, 2)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_is_tuple(self):
        x, y = Coordinate(3, 9)
        assert (x, y) == (3, 9)


class TestFlitType:
    def test_head_classification(self):
        assert FlitType.HEAD.is_head
        assert FlitType.HEAD_TAIL.is_head
        assert not FlitType.BODY.is_head
        assert not FlitType.TAIL.is_head

    def test_tail_classification(self):
        assert FlitType.TAIL.is_tail
        assert FlitType.HEAD_TAIL.is_tail
        assert not FlitType.HEAD.is_tail
        assert not FlitType.BODY.is_tail


class TestCorruption:
    def test_severity_ordering(self):
        # The flit corruption-accumulation logic relies on this ordering.
        assert Corruption.NONE.value < Corruption.SINGLE.value < Corruption.MULTI.value


class TestEnumsRoundTrip:
    def test_link_protection_values(self):
        assert LinkProtection("hbh") is LinkProtection.HBH
        assert LinkProtection("e2e") is LinkProtection.E2E
        assert LinkProtection("fec") is LinkProtection.FEC

    def test_routing_algorithm_values(self):
        assert RoutingAlgorithm("xy") is RoutingAlgorithm.XY
        assert RoutingAlgorithm("west_first") is RoutingAlgorithm.WEST_FIRST

    def test_vc_state_progression(self):
        assert (
            VCState.IDLE
            < VCState.ROUTING
            < VCState.WAITING_VA
            < VCState.ACTIVE
        )
