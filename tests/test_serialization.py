"""Tests for config/result (de)serialization."""

import json

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import run_simulation
from repro.serialization import (
    SCHEMA_VERSION,
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    envelope,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm


def fancy_config() -> SimulationConfig:
    return SimulationConfig(
        noc=NoCConfig(
            width=4,
            height=3,
            num_vcs=2,
            routing=RoutingAlgorithm.WEST_FIRST,
            link_protection=LinkProtection.E2E,
            deadlock_recovery_enabled=True,
            duplicate_retx_buffers=True,
        ),
        faults=FaultConfig(
            rates={FaultSite.LINK: 0.01, FaultSite.SW_ALLOC: 0.002},
            link_multi_bit_fraction=0.3,
            seed=9,
        ),
        workload=WorkloadConfig(
            pattern="tornado",
            injection_rate=0.15,
            num_messages=123,
            warmup_messages=45,
            seed=6,
        ),
        collect_utilization=True,
        payload_ecc_check=True,
    )


class TestConfigRoundTrip:
    def test_dict_roundtrip(self):
        config = fancy_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_json_roundtrip(self):
        config = fancy_config()
        assert config_from_json(config_to_json(config)) == config

    def test_default_config_roundtrip(self):
        config = SimulationConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_checkpoint_fields_roundtrip(self):
        config = fancy_config().replace(
            checkpoint_interval=300, checkpoint_path="run.ckpt"
        )
        again = config_from_dict(config_to_dict(config))
        assert again == config
        assert again.checkpoint_interval == 300

    def test_pre_checkpoint_dicts_still_load(self):
        # Archived configs from before the checkpoint fields existed must
        # deserialize with checkpointing off.
        data = config_to_dict(fancy_config())
        del data["checkpoint_interval"], data["checkpoint_path"]
        config = config_from_dict(data)
        assert config.checkpoint_interval is None
        assert config.checkpoint_path is None

    def test_json_is_valid_and_stable(self):
        text = config_to_json(fancy_config())
        data = json.loads(text)
        assert data["noc"]["routing"] == "west_first"
        assert data["faults"]["rates"]["link"] == 0.01
        assert text == config_to_json(config_from_json(text))

    def test_roundtripped_config_runs_identically(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            faults=FaultConfig.link_only(0.02, multi_bit_fraction=1.0),
            workload=WorkloadConfig(
                injection_rate=0.2, num_messages=120, warmup_messages=20
            ),
        )
        a = run_simulation(config)
        b = run_simulation(config_from_json(config_to_json(config)))
        assert a.avg_latency == b.avg_latency
        assert a.counters == b.counters


class TestResultSerialization:
    def test_result_to_json(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            workload=WorkloadConfig(
                injection_rate=0.2, num_messages=100, warmup_messages=20
            ),
        )
        result = run_simulation(config)
        data = result_to_dict(result)
        assert data["packets_delivered"] >= 100
        assert data["config"]["noc"]["width"] == 3
        parsed = json.loads(result_to_json(result))
        assert parsed["avg_latency"] == pytest.approx(result.avg_latency)


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation(
            SimulationConfig(
                noc=NoCConfig(width=3, height=3),
                faults=FaultConfig.link_only(0.02, seed=5),
                workload=WorkloadConfig(
                    injection_rate=0.2, num_messages=100, warmup_messages=20
                ),
            )
        )

    def _assert_same(self, a, b):
        assert b.config == a.config
        assert b.cycles == a.cycles
        assert b.packets_delivered == a.packets_delivered
        assert b.avg_latency == a.avg_latency
        assert b.counters == a.counters
        assert b.energy_events == a.energy_events
        assert (
            b.throughput_flits_per_node_cycle
            == a.throughput_flits_per_node_cycle
        )

    def test_dict_roundtrip(self, result):
        self._assert_same(result, result_from_dict(result_to_dict(result)))

    def test_json_roundtrip(self, result):
        self._assert_same(result, result_from_json(result_to_json(result)))

    def test_roundtrip_without_embedded_config(self, result):
        data = result_to_dict(result, include_config=False)
        assert "config" not in data
        self._assert_same(result, result_from_dict(data, config=result.config))

    def test_missing_config_rejected(self, result):
        data = result_to_dict(result, include_config=False)
        with pytest.raises(ValueError, match="no embedded config"):
            result_from_dict(data)

    def test_from_dict_classmethod(self, result):
        restored = type(result).from_dict(result_to_dict(result))
        self._assert_same(result, restored)


class TestEnvelope:
    def test_shape(self):
        env = envelope("run", {"cycles": 7}, config={"noc": {"width": 4}})
        assert env == {
            "schema": SCHEMA_VERSION,
            "command": "run",
            "config": {"noc": {"width": 4}},
            "result": {"cycles": 7},
        }
        assert env["schema"] == "repro/v1"

    def test_config_optional(self):
        env = envelope("lint", [])
        assert env["config"] is None
        assert env["result"] == []
