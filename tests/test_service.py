"""The campaign service layer: journal durability, content-addressed
cache, backoff policy, deadlines and in-process journal resume.

Process-level chaos (SIGKILLed workers and supervisors, stalled
watchdogs) lives in tools/chaos_campaign.py; these tests pin the unit
semantics the drill builds on — what each component guarantees when its
inputs are torn, duplicated, corrupted or late.
"""

import json
import time

import pytest

from repro.campaign import run_campaign
from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.serialization import config_to_dict
from repro.service import (
    JOURNAL_MAGIC,
    CampaignJournal,
    JournalError,
    ResultCache,
    RetryPolicy,
    cache_key,
    canonical_envelope,
    read_journal,
    result_core,
    resume_campaign,
)


def _small(**workload_kw):
    kw = dict(num_messages=120, warmup_messages=20, injection_rate=0.1, seed=3)
    kw.update(workload_kw)
    return SimulationConfig(
        noc=NoCConfig(shape=(3, 3)), workload=WorkloadConfig(**kw)
    )


def _endless():
    return SimulationConfig(
        noc=NoCConfig(shape=(8, 8)),
        workload=WorkloadConfig(
            num_messages=50_000_000,
            warmup_messages=100,
            injection_rate=0.45,
            max_cycles=500_000_000,
        ),
    )


_ROW = {
    "name": "v",
    "avg_latency": 10.0,
    "avg_hops": 2.0,
    "energy_per_packet_nj": 1.0,
    "throughput": 0.5,
    "packets_delivered": 100,
    "packets_lost": 0,
    "error": None,
    "counters": {"packets_sent": 100, "checkpoints_written": 3},
}


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path, {"processes": 2}) as journal:
            journal.append("queued", variant=0, name="v", config={"x": 1})
            journal.append("queued", variant=1, name="w", config={"x": 2})
            journal.append("leased", variant=0, attempt=1)
            journal.append("done", variant=0, row={"error": None})
        state = read_journal(path)
        assert state.meta["processes"] == 2
        assert not state.torn_tail
        assert [v["name"] for v in state.variants] == ["v", "w"]
        assert state.rows == {0: {"error": None}}
        assert state.attempts == {0: 1}
        assert [v["variant"] for v in state.unfinished] == [1]

    def test_refuses_to_clobber_existing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        CampaignJournal.create(path).close()
        with pytest.raises(JournalError, match="already exists"):
            CampaignJournal.create(path)

    def test_append_to_rejects_non_journal(self, tmp_path):
        path = tmp_path / "not_a_journal.txt"
        path.write_text("hello\n")
        with pytest.raises(JournalError, match="bad magic"):
            CampaignJournal.append_to(path)

    def test_torn_tail_is_tolerated_and_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path) as journal:
            journal.append("queued", variant=0, name="v", config={})
        with open(path, "a") as fh:  # what a SIGKILL mid-append leaves
            fh.write('{"type": "done", "vari')
        state = read_journal(path)
        assert state.torn_tail
        assert len(state.records) == 1  # the torn record never happened
        assert state.rows == {}

    def test_append_to_repairs_torn_tail(self, tmp_path):
        """Appending after a SIGKILL-torn tail must truncate the torn
        fragment first — otherwise the next record welds onto it and
        every later read rejects the file as corrupt mid-stream."""
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path) as journal:
            journal.append("queued", variant=0, name="v", config={})
        with open(path, "a") as fh:  # what a SIGKILL mid-append leaves
            fh.write('{"type": "done", "vari')
        with CampaignJournal.append_to(path) as journal:
            journal.append("resumed", finished=0, pending=1)
        state = read_journal(path)
        assert not state.torn_tail
        assert [r["type"] for r in state.records] == ["queued", "resumed"]

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path) as journal:
            journal.append("queued", variant=0, name="v", config={})
            journal.append("done", variant=0, row={"error": None})
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = "garbage that is not JSON\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="line 3"):
            read_journal(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(JOURNAL_MAGIC + '\n{"journal_version": 99}\n')
        with pytest.raises(JournalError, match="version 99"):
            read_journal(path)

    def test_missing_and_headerless_files_raise(self, tmp_path):
        with pytest.raises(JournalError, match="no such journal"):
            read_journal(tmp_path / "absent.jsonl")
        torn_header = tmp_path / "torn.jsonl"
        torn_header.write_text(JOURNAL_MAGIC + '\n{"journal_ver')
        with pytest.raises(JournalError, match="never committed"):
            read_journal(torn_header)

    def test_attempt_history_replays(self, tmp_path):
        """attempt/checkpoint_discarded records are rehydrated so a
        resumed supervisor carries the pre-crash history."""
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path) as journal:
            journal.append("queued", variant=0, name="v", config={})
            journal.append("attempt", variant=0, attempt=1, error="timeout")
            journal.append("attempt", variant=0, attempt=2, error="crash")
            journal.append("checkpoint_discarded", variant=0, error="torn")
        state = read_journal(path)
        assert state.attempt_errors == {0: ["timeout", "crash"]}
        assert state.discards == {0: "torn"}


class TestCache:
    def test_key_ignores_supervision_infrastructure(self):
        base = config_to_dict(_small())
        checkpointed = dict(
            base, checkpoint_interval=50, checkpoint_path="v.ckpt"
        )
        assert cache_key(checkpointed) == cache_key(base)

    def test_key_tracks_the_experiment(self):
        a = config_to_dict(_small())
        b = config_to_dict(_small(seed=4))
        assert cache_key(a) != cache_key(b)

    def test_result_core_strips_checkpoint_counter(self):
        core = result_core(_ROW)
        assert "checkpoints_written" not in core["counters"]
        assert core["counters"]["packets_sent"] == 100
        assert "name" not in core  # naming is not part of the result

    def test_envelope_is_checkpoint_schedule_invariant(self):
        """The stored bytes must be identical no matter how the run was
        supervised — that is what makes cross-campaign hits sound."""
        base = config_to_dict(_small())
        supervised = dict(
            base, checkpoint_interval=50, checkpoint_path="v.ckpt"
        )
        bare_row = dict(_ROW, counters={"packets_sent": 100})
        assert canonical_envelope(base, bare_row) == canonical_envelope(
            supervised, _ROW
        )

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = config_to_dict(_small())
        key = cache_key(config)
        assert cache.get(key) is None
        cache.put(key, canonical_envelope(config, _ROW))
        assert cache.get(key) == result_core(_ROW)
        assert cache.get_bytes(key) == canonical_envelope(config, _ROW)
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(config_to_dict(_small()))
        cache.path(key).write_text('{"torn": ')
        assert cache.get(key) is None
        cache.path(key).write_text('{"schema": "wrong/v9", "result": {}}')
        assert cache.get(key) is None


class TestRetryPolicy:
    def test_deterministic(self):
        a = RetryPolicy(seed=7).delay(3, 2)
        b = RetryPolicy(seed=7).delay(3, 2)
        assert a == b
        assert RetryPolicy(seed=8).delay(3, 2) != a

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base=0.1, factor=2.0, maximum=0.8, jitter=0.0)
        delays = [policy.delay(0, n) for n in range(1, 7)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base=1.0, factor=1.0, maximum=1.0, jitter=0.5)
        for variant in range(20):
            delay = policy.delay(variant, 1)
            assert 1.0 <= delay < 1.5

    def test_none_retries_immediately(self):
        policy = RetryPolicy.none()
        assert policy.delay(0, 1) == 0.0
        assert policy.delay(5, 9) == 0.0

    def test_dict_round_trip(self):
        policy = RetryPolicy(base=0.2, factor=3.0, maximum=5.0, seed=11)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValueError, match="base"):
            RetryPolicy(base=-1.0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="maximum"):
            RetryPolicy(base=2.0, maximum=1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)


class TestResultCacheCampaigns:
    def test_duplicate_variant_served_from_cache(self, tmp_path):
        config = _small()
        rows, stats = run_campaign(
            [("first", config), ("twin", config)],
            cache_dir=str(tmp_path / "cache"),
            return_stats=True,
        )
        first, twin = rows
        assert "cache_hit" not in first.metadata
        assert twin.metadata["cache_hit"] is True
        assert twin.metadata["attempts"] == 0
        assert twin.avg_latency == first.avg_latency
        assert twin.counters == first.counters
        assert stats["cache_hits"] == 1
        assert stats["cache_stores"] == 1

    def test_cross_campaign_hit(self, tmp_path):
        config = _small()
        cache_dir = str(tmp_path / "cache")
        [cold] = run_campaign([("v", config)], cache_dir=cache_dir)
        rows, stats = run_campaign(
            [("v", config)], cache_dir=cache_dir, return_stats=True
        )
        [warm] = rows
        assert warm.metadata["cache_hit"] is True
        assert warm.avg_latency == cold.avg_latency
        assert stats["cache_hits"] == 1
        assert stats["attempts"] == 0  # no worker ever spawned

    def test_cache_verify_rechecks_and_flags_mismatch(self, tmp_path):
        config = _small()
        cache_dir = tmp_path / "cache"
        run_campaign([("v", config)], cache_dir=str(cache_dir))
        rows, stats = run_campaign(
            [("v", config)],
            cache_dir=str(cache_dir),
            cache_verify=True,
            return_stats=True,
        )
        assert rows[0].metadata["cache_verified"] is True
        assert stats["cache_verified"] == 1
        assert stats["cache_hits"] == 0  # verify mode always re-runs
        # Tamper with the stored entry: verify must flag it and refresh.
        cache = ResultCache(cache_dir)
        key = cache_key(config_to_dict(config))
        entry = json.loads(cache.get_bytes(key))
        entry["result"]["avg_latency"] = -1.0
        cache.put(
            key,
            (json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
            .encode(),
        )
        rows, stats = run_campaign(
            [("v", config)],
            cache_dir=str(cache_dir),
            cache_verify=True,
            return_stats=True,
        )
        assert rows[0].metadata["cache_verified"] is False
        assert stats["cache_mismatches"] == 1
        assert cache.get(key)["avg_latency"] == rows[0].avg_latency


class TestCampaignDeadline:
    def test_deadline_degrades_gracefully(self):
        """When the whole-campaign deadline expires, unfinished variants
        come back as partial rows, finished ones keep their results, and
        the supervisor does not wait for stragglers to finish."""
        start = time.monotonic()
        rows, stats = run_campaign(
            [("ok", _small()), ("hang", _endless())],
            processes=2,
            deadline=3.0,
            deadline_grace=0.5,
            lint=False,
            return_stats=True,
        )
        elapsed = time.monotonic() - start
        by_name = {r.name: r for r in rows}
        assert not by_name["ok"].failed
        assert by_name["hang"].error == "campaign_deadline"
        assert stats["deadline_expired"] is True
        assert stats["deadline_failed"] == 1
        assert elapsed < 30.0

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            run_campaign([("v", _small())], deadline=0.0)


class TestJournalResume:
    def test_completed_campaign_resumes_without_rerunning(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        [original] = run_campaign(
            [("v", _small())], journal_path=journal_path
        )
        before = read_journal(journal_path)
        rows, stats = resume_campaign(journal_path)
        [row] = rows
        assert row.avg_latency == original.avg_latency
        assert stats["attempts"] == 1  # carried, not re-spent
        assert stats["completed"] == 1  # pre-crash rows count in stats
        after = read_journal(journal_path)
        # Resume appended bookkeeping (resumed + summary), never a lease.
        new = after.records[len(before.records):]
        assert [r["type"] for r in new] == ["resumed", "summary"]

    def test_resume_runs_only_unfinished_variants(self, tmp_path):
        """A journal with one finished and one merely-queued variant (what
        a supervisor SIGKILL leaves behind) re-runs only the latter."""
        journal_path = str(tmp_path / "journal.jsonl")
        run_campaign([("v", _small())], journal_path=journal_path)
        with CampaignJournal.append_to(journal_path) as journal:
            journal.append(
                "queued",
                variant=1,
                name="w",
                config=config_to_dict(_small(seed=9)),
            )
        rows, stats = resume_campaign(journal_path)
        assert [r.name for r in rows] == ["v", "w"]
        assert all(r.error is None for r in rows)
        assert stats["attempts"] == 2  # one carried + one fresh lease
        assert stats["completed"] == 2  # one carried + one fresh result
        leases = [
            r for r in read_journal(journal_path).records
            if r["type"] == "leased"
        ]
        assert [r["variant"] for r in leases] == [0, 1]  # v never re-leased

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no such journal"):
            resume_campaign(str(tmp_path / "absent.jsonl"))

    def test_torn_tail_then_resume_round_trip(self, tmp_path):
        """The review repro: a supervisor SIGKILL tears the journal tail,
        a resume appends over it, and a *second* resume (after another
        crash) must still read the journal cleanly."""
        journal_path = str(tmp_path / "journal.jsonl")
        run_campaign([("v", _small())], journal_path=journal_path)
        with CampaignJournal.append_to(journal_path) as journal:
            journal.append(
                "queued",
                variant=1,
                name="w",
                config=config_to_dict(_small(seed=9)),
            )
        with open(journal_path, "a") as fh:  # SIGKILL tears the tail
            fh.write('{"type": "leased", "vari')
        rows, _ = resume_campaign(journal_path)
        assert [r.name for r in rows] == ["v", "w"]
        assert all(r.error is None for r in rows)
        # Nothing welded onto the torn fragment: the journal reads back
        # cleanly and a second resume is a no-op replay.
        state = read_journal(journal_path)
        assert not state.torn_tail
        assert not state.unfinished
        rows, stats = resume_campaign(journal_path)
        assert all(r.error is None for r in rows)
        assert stats["completed"] == 2

    def test_resume_refuses_mid_enqueue_prefix(self, tmp_path):
        """A supervisor crash mid-enqueue journals only a prefix of the
        work list; resuming would silently drop the missing variants, so
        resume must refuse instead."""
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(path, {"variants": 3}) as journal:
            journal.append(
                "queued", variant=0, name="v", config=config_to_dict(_small())
            )
            journal.append(
                "queued",
                variant=1,
                name="w",
                config=config_to_dict(_small(seed=9)),
            )
        with pytest.raises(JournalError, match="2 of 3 queued variants"):
            resume_campaign(str(path))

    def test_resume_no_cache_overrides_recorded_cache_dir(self, tmp_path):
        """--no-cache on resume must beat the cache_dir recorded in the
        journal header, not silently fall back to it."""
        config = _small()
        cache_dir = str(tmp_path / "cache")
        run_campaign([("v", config)], cache_dir=cache_dir)  # warm the cache
        path = tmp_path / "journal.jsonl"
        with CampaignJournal.create(
            path, {"variants": 1, "cache_dir": cache_dir}
        ) as journal:
            journal.append(
                "queued", variant=0, name="v", config=config_to_dict(config)
            )
        pristine = tmp_path / "journal2.jsonl"
        pristine.write_bytes(path.read_bytes())
        rows, stats = resume_campaign(str(path), no_cache=True)
        assert rows[0].error is None
        assert "cache_hit" not in rows[0].metadata
        assert stats["cache_hits"] == 0
        # Sanity: without the override the recorded cache_dir serves it.
        rows, stats = resume_campaign(str(pristine))
        assert rows[0].metadata["cache_hit"] is True
        assert stats["cache_hits"] == 1

    def test_journal_records_full_lifecycle(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        rows = run_campaign(
            [("v", _small()), ("w", _small(seed=5))],
            journal_path=journal_path,
            journal_meta={"operator": "tests"},
        )
        assert all(r.error is None for r in rows)
        state = read_journal(journal_path)
        assert state.meta["operator"] == "tests"
        kinds = [r["type"] for r in state.records]
        assert kinds.count("queued") == 2
        assert kinds.count("leased") == 2
        assert kinds.count("done") == 2
        assert kinds[-1] == "summary"
        assert state.records[0]["config_sha256"] == cache_key(
            state.records[0]["config"]
        )
        assert not state.unfinished
